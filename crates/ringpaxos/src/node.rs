//! The Ring Paxos state machine.
//!
//! A [`RingNode`] bundles every role a process can play in one ring —
//! proposer, acceptor, learner, coordinator — exactly as in the paper's
//! deployments where "all of which are proposers, acceptors, and learners,
//! and one of the acceptors is the coordinator" (§8.3.1).
//!
//! ## Protocol walk-through (paper §4, Figure 2b)
//!
//! 1. A proposed [`Value`] circulates the ring until it reaches the
//!    coordinator ([`RingMsg::Proposal`]).
//! 2. The coordinator assigns the next consensus instance and emits a
//!    combined Phase 2A/2B message carrying its own vote.
//! 3. Each acceptor logs its vote to stable storage, *then* adds it and
//!    forwards; non-acceptors forward unchanged. The Phase 2 message
//!    keeps circulating the whole ring — it is the *only* time the value
//!    payload travels; everyone caches the value by id.
//! 4. The acceptor whose vote completes the majority additionally emits
//!    an **id-only** [`RingMsg::Decision`] `(instance, ballot, value id)`
//!    that circulates so the members upstream of the decision point (who
//!    saw the value but not the majority) learn the outcome; members
//!    downstream decide directly from the passing Phase 2 message, whose
//!    vote count already proves the majority.
//! 5. A member that observes an id-only decision for a value it never
//!    learned (dropped frame, late join, reconfiguration hole) pulls it
//!    point-to-point with [`RingMsg::ValueRequest`], retried on the
//!    liveness timer; delivery of the instance waits, later instances
//!    buffer as usual.
//! 6. Learners deliver decided values in instance order.
//!
//! Phase 1 is pre-executed for an open-ended window when a coordinator
//! (newly elected or initial) takes over: acceptors promise and report
//! *all* retained accepted entries; the coordinator re-proposes the
//! highest-ballot value per instance and fills gaps with no-ops (§5.1).
//!
//! Rate leveling (§4) runs on the coordinator: every Δ it compares the
//! number of proposals in the interval against λ·Δ and proposes a single
//! [`ValueKind::Skip`] token standing for the difference.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::time::Duration;

use common::error::{Error, Result};
use common::ids::{Ballot, InstanceId, NodeId, RingId};
use common::msg::{AcceptedEntry, RingMsg};
use common::obs::Counter;
use common::time::SimTime;
use common::value::{Value, ValueId, ValueKind};
use coord::Registry;
use coord::RingConfig;
use storage::AcceptorLog;

use crate::options::RingOptions;
use crate::timer::RingTimer;

/// Ceiling on the idle-skip stride: a fully idle coordinator settles at
/// one skip token (covering this many Δ intervals of credit) per this
/// many Δ intervals, instead of one per Δ. Bounds both the idle
/// consensus traffic (1/stride of naive) and the worst-case extra
/// latency a merge waits for an idle ring's credit (stride × Δ; the
/// host's starvation nudge usually collapses it to one pump cycle).
pub const MAX_IDLE_SKIP_STRIDE: u64 = 32;

/// Effects emitted by a [`RingNode`] handler; the host runtime drains it
/// after every call.
#[derive(Debug, Default)]
pub struct Output {
    /// Ring messages to transmit, in order.
    pub sends: Vec<(NodeId, RingMsg)>,
    /// Values decided and deliverable *by this node's learner*, in
    /// instance order (includes no-ops and skips so Multi-Ring Paxos can
    /// count instances; services filter with [`Value::is_deliverable`]).
    pub decided: Vec<(InstanceId, Value)>,
    /// Timers to schedule.
    pub timers: Vec<(Duration, RingTimer)>,
}

impl Output {
    /// A fresh, empty output buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no effects are pending.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.decided.is_empty() && self.timers.is_empty()
    }

    /// Clears all effects (after the host drained them).
    pub fn clear(&mut self) {
        self.sends.clear();
        self.decided.clear();
        self.timers.clear();
    }
}

/// What an acceptor does once a pending stable-storage write completes.
#[derive(Debug)]
enum PendingAction {
    /// Forward this message to the successor.
    Forward(RingMsg),
    /// Majority reached here: decide locally, keep the value circulating
    /// (Phase 2 with the completed vote count and `fwd_ttl` hops left) and,
    /// if `announce`, emit the id-only decision for the upstream members.
    Decide {
        inst: InstanceId,
        ballot: Ballot,
        value: Value,
        votes: u16,
        fwd_ttl: u16,
        announce: bool,
    },
}

/// An id-only decision observed before its value: the slow path pulls the
/// value from the acceptors, re-requesting on the liveness timer with
/// per-miss exponential backoff (at most one request is outstanding per
/// missed `(inst, id)` at any time — re-observing the decision or ticking
/// the timer inside the backoff window must not add another).
#[derive(Clone, Copy, Debug)]
struct PendingValue {
    id: ValueId,
    requested_at: SimTime,
    /// Pulls sent so far; drives the retry backoff.
    attempts: u32,
}

/// The per-ring protocol state machine. See the module docs.
pub struct RingNode {
    me: NodeId,
    ring: RingId,
    registry: Registry,
    cfg: RingConfig,
    opts: RingOptions,
    /// Whether this node's learner delivers values into [`Output::decided`].
    subscribed: bool,

    // ---- acceptor state ----
    log: AcceptorLog,
    pending: BTreeMap<InstanceId, PendingAction>,
    pending_phase1: Option<(u32, RingMsg)>,
    phase1_generation: u32,
    /// When the in-progress Phase 1 window was last sent; drives the
    /// liveness-timer retry for Phase 1 messages lost on the ring.
    phase1_sent_at: SimTime,

    // ---- coordinator state ----
    coordinating: bool,
    ballot: Ballot,
    /// Phase 1 finished for this ballot; proposals may flow.
    phase1_complete: bool,
    next_instance: InstanceId,
    prop_queue: VecDeque<Value>,
    proposals_since_delta: u64,
    /// Consecutive fully-idle Δ intervals since the last real proposal
    /// (adaptive skip cadence input).
    idle_deltas: u64,
    /// Current idle-skip stride: an idle coordinator proposes one skip
    /// covering `stride` Δ intervals every `stride` intervals, doubling
    /// up to [`MAX_IDLE_SKIP_STRIDE`] — so an idle subscribed ring costs
    /// ~1/stride of the naive one-skip-per-Δ consensus traffic while
    /// banking exactly the same merge credit.
    idle_stride: u64,
    seen_ids: HashSet<ValueId>,
    seen_order: VecDeque<ValueId>,

    // ---- learner state ----
    next_delivery: InstanceId,
    decision_buffer: BTreeMap<InstanceId, Value>,
    delivered_ids: HashSet<ValueId>,
    /// Delivered value ids with the instance each was first delivered at,
    /// in delivery order. The instance tag lets a checkpoint snapshot the
    /// dedup state *at a cut*: the ring learner runs ahead of the
    /// deterministic merge, and including ids delivered beyond the merge's
    /// cut would make a restored replica demote those values to no-ops
    /// when catch-up re-delivers them (a lost write).
    delivered_order: VecDeque<(InstanceId, ValueId)>,
    /// Values learned from circulating Phase 2 / proposals, keyed by id:
    /// what id-only decisions resolve against. Bounded FIFO; payloads are
    /// refcounted views of the incoming frames, not copies.
    learned: HashMap<ValueId, Value>,
    learned_order: VecDeque<ValueId>,
    /// Decisions whose value this node missed, awaiting a [`RingMsg::ValueResend`].
    pending_values: BTreeMap<InstanceId, PendingValue>,
    /// Rotates which acceptor serves value pulls.
    value_req_rr: u64,

    // ---- proposer state ----
    unacked: BTreeMap<ValueId, (Value, SimTime)>,
    value_seq: u64,

    // ---- liveness ----
    last_from_pred: SimTime,

    // ---- dissemination telemetry ----
    /// Id-only decisions whose value was already resident (learned cache
    /// or acceptor log) when the decision arrived.
    prefetch_hits: Counter,
    /// Id-only decisions that had to fall back to the `ValueRequest` pull.
    pull_misses: Counter,
    /// Eager `ValuePush` fan-outs sent by this proposer.
    value_pushes: Counter,

    // ---- batching ----
    batch: Vec<RingMsg>,
    batch_bytes: usize,
    batch_timer_armed: bool,
}

impl RingNode {
    /// Creates the state machine for `me`'s participation in `ring`,
    /// reading the membership from `registry`.
    ///
    /// # Errors
    ///
    /// Fails if the ring is unknown or `me` is not a member.
    pub fn new(me: NodeId, ring: RingId, registry: Registry, opts: RingOptions) -> Result<Self> {
        let cfg = registry.ring(ring)?;
        if !cfg.contains(me) {
            return Err(Error::Config(format!("{me} is not a member of {ring}")));
        }
        let coordinating = cfg.coordinator() == me;
        let prefetch_hits = opts.obs.counter("value_prefetch_hits");
        let pull_misses = opts.obs.counter("value_pull_misses");
        let value_pushes = opts.obs.counter("value_pushes_sent");
        Ok(RingNode {
            me,
            ring,
            registry,
            cfg,
            log: AcceptorLog::new(opts.storage),
            opts,
            subscribed: true,
            pending: BTreeMap::new(),
            pending_phase1: None,
            phase1_generation: 0,
            phase1_sent_at: SimTime::ZERO,
            coordinating,
            ballot: Ballot::ZERO,
            phase1_complete: false,
            next_instance: InstanceId::ZERO,
            prop_queue: VecDeque::new(),
            proposals_since_delta: 0,
            idle_deltas: 0,
            idle_stride: 1,
            seen_ids: HashSet::new(),
            seen_order: VecDeque::new(),
            next_delivery: InstanceId::ZERO,
            decision_buffer: BTreeMap::new(),
            delivered_ids: HashSet::new(),
            delivered_order: VecDeque::new(),
            learned: HashMap::new(),
            learned_order: VecDeque::new(),
            pending_values: BTreeMap::new(),
            value_req_rr: 0,
            unacked: BTreeMap::new(),
            value_seq: 0,
            last_from_pred: SimTime::ZERO,
            prefetch_hits,
            pull_misses,
            value_pushes,
            batch: Vec::new(),
            batch_bytes: 0,
            batch_timer_armed: false,
        })
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// The ring this node participates in.
    pub fn ring(&self) -> RingId {
        self.ring
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// True while this node believes it coordinates the ring.
    pub fn is_coordinator(&self) -> bool {
        self.coordinating
    }

    /// The current ring configuration (this node's view).
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// The next instance the learner will deliver.
    pub fn next_delivery(&self) -> InstanceId {
        self.next_delivery
    }

    /// Whether this node's learner emits deliveries.
    pub fn subscribed(&self) -> bool {
        self.subscribed
    }

    /// Enables or disables delivery from this ring (a Multi-Ring Paxos
    /// learner "chooses from which multicast groups it wishes to deliver
    /// messages", §2).
    pub fn set_subscribed(&mut self, subscribed: bool) {
        self.subscribed = subscribed;
    }

    /// Positions the learner to deliver starting at `inst` — used when
    /// installing a checkpoint during recovery. Value pulls outstanding
    /// for instances below the cursor die with the buffered decisions:
    /// the installed state covers them, and their values may no longer
    /// exist anywhere to resend — left in place they would burn the
    /// per-tick pull budget (lowest instances first) forever.
    pub fn set_next_delivery(&mut self, inst: InstanceId) {
        self.next_delivery = inst;
        self.decision_buffer = self.decision_buffer.split_off(&inst);
        self.pending_values = self.pending_values.split_off(&inst);
    }

    /// Read access to the acceptor's vote log (for retransmission
    /// service).
    pub fn log(&self) -> &AcceptorLog {
        &self.log
    }

    /// Injects a decision learned out-of-band (retransmitted by an
    /// acceptor during recovery). Idempotent; delivers through the normal
    /// in-order path.
    pub fn learn_decided(
        &mut self,
        inst: InstanceId,
        value: Value,
        now: SimTime,
        out: &mut Output,
    ) {
        self.handle_decide(inst, value, now, out);
    }

    /// If decisions are buffered beyond an undelivered gap, returns
    /// `(first needed, first buffered)` — the retransmission range a
    /// recovering learner should request.
    pub fn buffered_gap(&self) -> Option<(InstanceId, InstanceId)> {
        let (&first, _) = self.decision_buffer.iter().next()?;
        if first > self.next_delivery {
            Some((self.next_delivery, first))
        } else {
            None
        }
    }

    /// Snapshot of the learner's duplicate-suppression window *at a cut*,
    /// in delivery order — included in checkpoints so a recovered replica
    /// makes the same dedup decisions as its peers. Only ids first
    /// delivered strictly below `upto` are included: the checkpoint's
    /// delivery positions come from the merge, which may lag this ring
    /// learner, and a restored replica will legitimately re-deliver
    /// everything at or beyond the cut.
    pub fn dedup_snapshot(&self, upto: InstanceId) -> Vec<ValueId> {
        self.delivered_order
            .iter()
            .filter(|(inst, _)| *inst < upto)
            .map(|(_, id)| *id)
            .collect()
    }

    /// Restores the duplicate-suppression window from a checkpoint. The
    /// restored ids predate the checkpoint cut, so they are tagged with
    /// instance zero — below any future cut.
    pub fn restore_dedup(&mut self, ids: Vec<ValueId>) {
        self.delivered_order = ids.iter().map(|id| (InstanceId::ZERO, *id)).collect();
        self.delivered_ids = ids.into_iter().collect();
    }

    /// Trims the acceptor log up to `upto` (the coordinator's `Trim`
    /// order, paper §5.2).
    pub fn trim_log(&mut self, upto: InstanceId) {
        self.log.trim(upto);
    }

    /// Number of proposals forwarded to this coordinator in the current
    /// Δ interval (rate-leveling input; test/diagnostic hook).
    pub fn proposals_since_delta(&self) -> u64 {
        self.proposals_since_delta
    }

    fn is_acceptor(&self) -> bool {
        self.cfg.is_acceptor(self.me)
    }

    fn successor(&self) -> NodeId {
        self.cfg.successor(self.me)
    }

    // ------------------------------------------------------------------
    // lifecycle
    // ------------------------------------------------------------------

    /// Starts the node: kicks off Phase 1 if coordinating and arms the
    /// periodic timers.
    pub fn start(&mut self, now: SimTime, out: &mut Output) {
        self.last_from_pred = now;
        if self.coordinating {
            self.begin_phase1(now, out);
        }
        if let Some(rl) = self.opts.rate_leveling {
            out.timers.push((rl.delta, RingTimer::RateLevel));
        }
        if !self.opts.failure_timeout.is_zero() {
            out.timers
                .push((self.opts.heartbeat_interval, RingTimer::Liveness));
        }
        out.timers
            .push((self.opts.proposal_retry, RingTimer::ProposalRetry));
    }

    /// Drops volatile state on a crash at `now`; the stable log keeps its
    /// durable subset.
    pub fn on_crash(&mut self, now: SimTime) {
        self.log.crash(now);
        self.pending.clear();
        self.pending_phase1 = None;
        self.prop_queue.clear();
        self.seen_ids.clear();
        self.seen_order.clear();
        self.decision_buffer.clear();
        self.delivered_ids.clear();
        self.delivered_order.clear();
        self.learned.clear();
        self.learned_order.clear();
        self.pending_values.clear();
        self.unacked.clear();
        self.batch.clear();
        self.batch_bytes = 0;
        self.batch_timer_armed = false;
        self.coordinating = false;
        self.phase1_complete = false;
        self.ballot = Ballot::ZERO;
        self.next_delivery = InstanceId::ZERO;
        self.next_instance = InstanceId::ZERO;
    }

    /// Rejoins the ring after a restart: installs the current registry
    /// config and restarts timers. The host is responsible for calling
    /// [`coord::Registry::rejoin`] first and for recovering learner state
    /// via checkpoints.
    pub fn on_restart(&mut self, now: SimTime, out: &mut Output) -> Result<()> {
        self.cfg = self.registry.ring(self.ring)?;
        self.coordinating = self.cfg.coordinator() == self.me;
        self.start(now, out);
        Ok(())
    }

    // ------------------------------------------------------------------
    // proposing
    // ------------------------------------------------------------------

    /// Atomically broadcasts `value` on this ring. The value travels to
    /// the coordinator and is eventually decided in some instance, unless
    /// the ring reconfigures — proposals are retried until their decision
    /// is observed.
    pub fn propose(&mut self, value: Value, now: SimTime, out: &mut Output) {
        self.remember_learned(&value);
        if value.is_deliverable() {
            self.unacked.insert(value.id, (value.clone(), now));
        }
        if self.coordinating {
            self.enqueue_proposal(value, now, out);
        } else if self.should_push(&value) {
            // Eager dissemination: fan the payload out point-to-point to
            // every member concurrently instead of circulating it hop by
            // hop toward the coordinator. The push to the coordinator *is*
            // the proposal (it enqueues deliverable pushed values); the
            // pushes to everyone else pre-populate their learned caches so
            // the id-only decision finds the value resident. Lost pushes
            // are healed by the ordinary proposal-retry slow path.
            self.value_pushes.inc();
            let members: Vec<NodeId> = self
                .cfg
                .members()
                .iter()
                .copied()
                .filter(|m| *m != self.me)
                .collect();
            for member in members {
                out.sends.push((
                    member,
                    RingMsg::ValuePush {
                        value: value.clone(),
                    },
                ));
            }
        } else {
            let ttl = self.cfg.initial_ttl();
            self.send_ring(RingMsg::Proposal { value, ttl }, now, out);
        }
    }

    /// Whether `value` is large enough for eager point-to-point
    /// dissemination (and eligible: only deliverable app payloads).
    fn should_push(&self, value: &Value) -> bool {
        self.opts.value_push_bytes > 0
            && value.is_deliverable()
            && value
                .payload()
                .map(|b| b.len() >= self.opts.value_push_bytes)
                .unwrap_or(false)
    }

    /// Allocates a fresh value id owned by this node.
    pub fn next_value_id(&mut self) -> ValueId {
        self.value_seq += 1;
        ValueId::new(self.me, self.value_seq)
    }

    fn enqueue_proposal(&mut self, value: Value, now: SimTime, out: &mut Output) {
        if !self.remember_seen(value.id) {
            return; // duplicate (proposer retry raced a decision)
        }
        self.proposals_since_delta += 1;
        self.prop_queue.push_back(value);
        self.pump_proposals(now, out);
    }

    fn remember_seen(&mut self, id: ValueId) -> bool {
        if !self.seen_ids.insert(id) {
            return false;
        }
        self.seen_order.push_back(id);
        while self.seen_order.len() > self.opts.dedup_window {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen_ids.remove(&old);
            }
        }
        true
    }

    /// Caches a value observed in circulation so a later id-only decision
    /// resolves locally. Cheap: the payload is refcounted, not copied.
    fn remember_learned(&mut self, value: &Value) {
        if self.learned.contains_key(&value.id) {
            return;
        }
        self.learned.insert(value.id, value.clone());
        self.learned_order.push_back(value.id);
        while self.learned_order.len() > self.opts.value_cache_window {
            if let Some(old) = self.learned_order.pop_front() {
                self.learned.remove(&old);
            }
        }
    }

    /// Resolves a decided value id against the acceptor log (authoritative
    /// for instances we voted in) and the learned-value cache.
    fn resolve_value(&self, inst: InstanceId, id: ValueId) -> Option<Value> {
        if let Some((_, value)) = self.log.accepted(inst) {
            if value.id == id {
                return Some(value.clone());
            }
        }
        self.learned.get(&id).cloned()
    }

    /// How long after the `attempts`-th pull the next retry may go out:
    /// 2·heartbeat doubling per attempt, capped at 32·heartbeat. Slow
    /// answers (large frames draining a backlog) stop triggering
    /// redundant pulls after a couple of rounds.
    fn pull_retry_after(&self, attempts: u32) -> std::time::Duration {
        self.opts.heartbeat_interval * (2u32 << attempts.saturating_sub(1).min(4))
    }

    /// Asks an acceptor (rotating — one may itself have missed the value)
    /// to resend the value behind an id-only decision. Point-to-point and
    /// un-batched: the learner's delivery cursor is blocked on it.
    fn send_value_request(&mut self, inst: InstanceId, id: ValueId, out: &mut Output) {
        let others: Vec<NodeId> = self
            .cfg
            .acceptors()
            .iter()
            .copied()
            .filter(|a| *a != self.me)
            .collect();
        if others.is_empty() {
            return;
        }
        self.value_req_rr += 1;
        let target = others[(self.value_req_rr as usize) % others.len()];
        out.sends.push((target, RingMsg::ValueRequest { inst, id }));
    }

    fn on_value_request(&mut self, from: NodeId, inst: InstanceId, id: ValueId, out: &mut Output) {
        let Some(value) = self.resolve_value(inst, id) else {
            return; // we miss it too; the requester's rotation moves on
        };
        let ballot = self
            .log
            .accepted(inst)
            .map(|(b, _)| b)
            .unwrap_or(Ballot::ZERO);
        out.sends.push((
            from,
            RingMsg::ValueResend {
                inst,
                ballot,
                value,
            },
        ));
    }

    fn on_value_resend(&mut self, inst: InstanceId, value: Value, now: SimTime, out: &mut Output) {
        let Some(pending) = self.pending_values.get(&inst) else {
            // Unsolicited (a retry raced the answer): keep the value for
            // future resolution, nothing to decide.
            self.remember_learned(&value);
            return;
        };
        if pending.id != value.id {
            return; // stale or mismatched resend
        }
        self.handle_decide(inst, value, now, out);
    }

    fn pump_proposals(&mut self, now: SimTime, out: &mut Output) {
        if !self.coordinating || !self.phase1_complete {
            return;
        }
        while let Some(value) = self.prop_queue.pop_front() {
            let inst = self.next_instance;
            self.next_instance = inst.plus(value.instance_span());
            if value.is_deliverable() && std::env::var_os("MRP_DEBUG").is_some() {
                eprintln!(
                    "[{now} {} r{}] coord assigns {inst} to {}",
                    self.me,
                    self.ring.raw(),
                    value.id
                );
            }
            self.phase2_self_vote(inst, value, now, out);
        }
    }

    /// The coordinator's own accept + vote for `inst`; forwarded (or
    /// decided, in a single-acceptor ring) once the vote hits the disk.
    fn phase2_self_vote(&mut self, inst: InstanceId, value: Value, now: SimTime, out: &mut Output) {
        debug_assert!(self.is_acceptor(), "coordinator must be an acceptor");
        self.remember_learned(&value);
        let receipt = self.log.accept(inst, self.ballot, value.clone(), now);
        let action = if 1 >= self.cfg.majority() {
            // Sole acceptor: decided here. The Phase 2 message (already
            // carrying a majority of votes) still circulates so the other
            // members learn the value; no separate decision is needed —
            // everyone is downstream of the origin.
            PendingAction::Decide {
                inst,
                ballot: self.ballot,
                value,
                votes: 1,
                fwd_ttl: self.cfg.initial_ttl(),
                announce: false,
            }
        } else {
            PendingAction::Forward(RingMsg::Phase2 {
                inst,
                ballot: self.ballot,
                value,
                votes: 1,
                ttl: self.cfg.initial_ttl(),
            })
        };
        self.complete_or_defer(inst, action, receipt.ack_at, now, out);
    }

    fn complete_or_defer(
        &mut self,
        inst: InstanceId,
        action: PendingAction,
        ready_at: SimTime,
        now: SimTime,
        out: &mut Output,
    ) {
        if ready_at <= now {
            self.run_pending(action, now, out);
        } else {
            self.pending.insert(inst, action);
            out.timers
                .push((ready_at.since(now), RingTimer::WriteDone(inst)));
        }
    }

    fn run_pending(&mut self, action: PendingAction, now: SimTime, out: &mut Output) {
        match action {
            PendingAction::Forward(msg) => self.send_ring(msg, now, out),
            PendingAction::Decide {
                inst,
                ballot,
                value,
                votes,
                fwd_ttl,
                announce,
            } => {
                let id = value.id;
                let is_skip = matches!(value.kind, ValueKind::Skip(_));
                // Value first (Phase 2 keeps circulating so downstream
                // members learn it), then the id-only decision for the
                // upstream members — FIFO per link preserves that order.
                if fwd_ttl > 0 {
                    self.send_ring(
                        RingMsg::Phase2 {
                            inst,
                            ballot,
                            value: value.clone(),
                            votes,
                            ttl: fwd_ttl,
                        },
                        now,
                        out,
                    );
                }
                self.handle_decide(inst, value, now, out);
                if announce {
                    let ttl = self.cfg.initial_ttl();
                    if ttl > 0 {
                        self.send_ring_with(
                            RingMsg::Decision {
                                inst,
                                ballot,
                                id,
                                ttl,
                            },
                            is_skip,
                            now,
                            out,
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // phase 1
    // ------------------------------------------------------------------

    /// Starts pre-executed Phase 1 for all instances at a ballot derived
    /// from the registry epoch (strictly increasing across coordinator
    /// changes).
    fn begin_phase1(&mut self, now: SimTime, out: &mut Output) {
        let round = u32::try_from(self.cfg.epoch().raw()).unwrap_or(u32::MAX);
        self.ballot = Ballot::new(round.max(1), self.me);
        self.phase1_complete = false;
        self.phase1_generation += 1;
        self.phase1_sent_at = now;

        let receipt = self.log.promise(self.ballot, now);
        let msg = RingMsg::Phase1 {
            ballot: self.ballot,
            from: self.log.trim_floor(),
            to: InstanceId::new(u64::MAX),
            promises: 1,
            accepted: self
                .log
                .entries_in_range(self.log.trim_floor(), InstanceId::new(u64::MAX)),
            // One full loop: the message returns to the coordinator, which
            // is how it collects every member's promises.
            ttl: self.cfg.initial_ttl() + 1,
        };
        if self.cfg.members().len() == 1 {
            // Sole member: Phase 1 trivially succeeds.
            let accepted = match &msg {
                RingMsg::Phase1 { accepted, .. } => accepted.clone(),
                _ => unreachable!(),
            };
            self.finish_phase1(accepted, now, out);
            return;
        }
        let generation = self.phase1_generation;
        if receipt.ack_at <= now {
            self.send_ring(msg, now, out);
        } else {
            self.pending_phase1 = Some((generation, msg));
            out.timers.push((
                receipt.ack_at.since(now),
                RingTimer::PromiseDone(generation),
            ));
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Phase1 message fields
    fn on_phase1(
        &mut self,
        ballot: Ballot,
        from: InstanceId,
        to: InstanceId,
        promises: u16,
        accepted: Vec<AcceptedEntry>,
        ttl: u16,
        now: SimTime,
        out: &mut Output,
    ) {
        if self.coordinating && ballot == self.ballot {
            // Our Phase 1 came back around the ring.
            if promises >= self.cfg.majority() {
                self.finish_phase1(accepted, now, out);
            }
            return;
        }
        if ballot < self.ballot && self.coordinating {
            return; // stale rival coordinator
        }
        if !self.is_acceptor() {
            if ttl > 0 {
                self.send_ring(
                    RingMsg::Phase1 {
                        ballot,
                        from,
                        to,
                        promises,
                        accepted,
                        ttl: ttl - 1,
                    },
                    now,
                    out,
                );
            }
            return;
        }
        if ballot < self.log.promised() {
            return; // promised someone newer; starve the stale coordinator
        }
        // A higher ballot means a newer coordinator exists; follow it.
        if self.coordinating && ballot > self.ballot {
            self.coordinating = false;
            self.phase1_complete = false;
        }
        let receipt = self.log.promise(ballot, now);
        let mut merged = accepted;
        merged.extend(
            self.log
                .entries_in_range(from.max(self.log.trim_floor()), to),
        );
        let msg = RingMsg::Phase1 {
            ballot,
            from,
            to,
            promises: promises + 1,
            accepted: merged,
            ttl: ttl.saturating_sub(1),
        };
        if ttl == 0 {
            return; // malformed; the loop should have ended at the coordinator
        }
        let generation = self.phase1_generation.wrapping_add(1);
        self.phase1_generation = generation;
        if receipt.ack_at <= now {
            self.send_ring(msg, now, out);
        } else {
            self.pending_phase1 = Some((generation, msg));
            out.timers.push((
                receipt.ack_at.since(now),
                RingTimer::PromiseDone(generation),
            ));
        }
    }

    /// Installs Phase 1 results: adopts the highest-ballot value per
    /// reported instance, fills gaps with no-ops, re-proposes everything,
    /// then opens the proposal pump.
    fn finish_phase1(&mut self, accepted: Vec<AcceptedEntry>, now: SimTime, out: &mut Output) {
        self.phase1_complete = true;
        let mut chosen: BTreeMap<InstanceId, (Ballot, Value)> = BTreeMap::new();
        for e in accepted {
            match chosen.get(&e.inst) {
                Some((b, _)) if *b >= e.vballot => {}
                _ => {
                    chosen.insert(e.inst, (e.vballot, e.value));
                }
            }
        }
        // Fill from the delivery cursor, not from this node's proposal
        // counter: an incumbent coordinator re-running Phase 1 after a
        // reconfiguration has a high `next_instance` but may be stuck on
        // older instances whose votes died with the removed member —
        // everything at or above `next_delivery` that no acceptor
        // reported gets a no-op. (For a freshly elected coordinator the
        // two bases coincide: its proposal counter is still low.)
        let base = self.next_delivery.max(self.log.trim_floor());
        if let Some((last, (_, last_val))) = chosen.iter().next_back() {
            let mut inst = base;
            let end = last.plus(last_val.instance_span());
            while inst < end {
                let (value, span) = match chosen.get(&inst) {
                    Some((_, v)) => (v.clone(), v.instance_span()),
                    None => {
                        let id = self.next_value_id();
                        (
                            Value {
                                id,
                                kind: ValueKind::Noop,
                            },
                            1,
                        )
                    }
                };
                self.remember_seen(value.id);
                self.phase2_self_vote(inst, value, now, out);
                inst = inst.plus(span);
            }
            self.next_instance = self.next_instance.max(end);
        } else {
            self.next_instance = self.next_instance.max(base);
        }
        self.pump_proposals(now, out);
    }

    // ------------------------------------------------------------------
    // message handling
    // ------------------------------------------------------------------

    /// Handles one incoming ring message. `from` is the direct sender
    /// (the ring predecessor for circulating messages).
    pub fn on_msg(&mut self, from: NodeId, msg: RingMsg, now: SimTime, out: &mut Output) {
        if !self.cfg.contains(self.me) {
            // Removed from the ring (e.g. cut out while partitioned away):
            // stale peers may still forward circulating frames here, but a
            // non-member has no predecessor/successor and must not take
            // part — drop the frame and wait for the host to rejoin us.
            self.refresh_config(now, out);
            return;
        }
        // Only traffic from the ring predecessor counts as its liveness
        // signal; client proposals and recovery traffic come from
        // arbitrary nodes and must not mask a dead predecessor.
        if from == self.predecessor() {
            self.last_from_pred = now;
        }
        match msg {
            RingMsg::Batch(msgs) => {
                for m in msgs {
                    self.on_msg_inner(from, m, now, out);
                }
            }
            m => self.on_msg_inner(from, m, now, out),
        }
    }

    fn on_msg_inner(&mut self, sender: NodeId, msg: RingMsg, now: SimTime, out: &mut Output) {
        match msg {
            RingMsg::Proposal { value, ttl } => {
                self.remember_learned(&value);
                if self.coordinating {
                    self.enqueue_proposal(value, now, out);
                } else if ttl > 0 {
                    self.send_ring(
                        RingMsg::Proposal {
                            value,
                            ttl: ttl - 1,
                        },
                        now,
                        out,
                    );
                }
                // ttl exhausted without finding a coordinator: the
                // proposer's retry timer will re-send after failover.
            }
            RingMsg::Phase1 {
                ballot,
                from,
                to,
                promises,
                accepted,
                ttl,
            } => self.on_phase1(ballot, from, to, promises, accepted, ttl, now, out),
            RingMsg::Phase2 {
                inst,
                ballot,
                value,
                votes,
                ttl,
            } => self.on_phase2(inst, ballot, value, votes, ttl, now, out),
            RingMsg::Decision {
                inst,
                ballot,
                id,
                ttl,
            } => self.on_decision(inst, ballot, id, ttl, now, out),
            RingMsg::ValueRequest { inst, id } => self.on_value_request(sender, inst, id, out),
            RingMsg::ValueResend { inst, value, .. } => self.on_value_resend(inst, value, now, out),
            RingMsg::Heartbeat { epoch } => {
                if epoch > self.cfg.epoch().raw() {
                    self.refresh_config(now, out);
                }
            }
            RingMsg::Batch(msgs) => {
                for m in msgs {
                    self.on_msg_inner(sender, m, now, out);
                }
            }
            RingMsg::ValuePush { value } => self.on_value_push(value, now, out),
        }
    }

    /// An eagerly disseminated value from a proposer: cache it so the
    /// id-only decision resolves locally, resolve any decision already
    /// waiting on it, and — if this node coordinates — treat it as the
    /// proposal it replaces.
    fn on_value_push(&mut self, value: Value, now: SimTime, out: &mut Output) {
        self.remember_learned(&value);
        // A decision may have raced ahead of the push (it travels the
        // batched ring path): resolve any instance blocked on this id.
        let ready: Vec<InstanceId> = self
            .pending_values
            .iter()
            .filter(|(_, p)| p.id == value.id)
            .map(|(inst, _)| *inst)
            .collect();
        for inst in ready {
            self.handle_decide(inst, value.clone(), now, out);
        }
        if self.coordinating && value.is_deliverable() {
            self.enqueue_proposal(value, now, out);
        }
    }

    /// An id-only decision from the ring: resolve the value locally, or
    /// pull it; forward the (tiny) decision either way — downstream
    /// members may be able to resolve it even when we cannot.
    fn on_decision(
        &mut self,
        inst: InstanceId,
        ballot: Ballot,
        id: ValueId,
        ttl: u16,
        now: SimTime,
        out: &mut Output,
    ) {
        let resolved = self.resolve_value(inst, id);
        let is_skip = resolved
            .as_ref()
            .map(|v| matches!(v.kind, ValueKind::Skip(_)))
            .unwrap_or(false);
        match resolved {
            Some(value) => {
                if value.is_deliverable() {
                    self.prefetch_hits.inc();
                }
                self.handle_decide(inst, value, now, out)
            }
            None => {
                let unknown = inst >= self.next_delivery
                    && !self.decision_buffer.contains_key(&inst)
                    && !self.pending_values.contains_key(&inst);
                if unknown {
                    self.pull_misses.inc();
                    self.pending_values.insert(
                        inst,
                        PendingValue {
                            id,
                            requested_at: now,
                            attempts: 1,
                        },
                    );
                    self.send_value_request(inst, id, out);
                }
            }
        }
        if ttl > 0 {
            self.send_ring_with(
                RingMsg::Decision {
                    inst,
                    ballot,
                    id,
                    ttl: ttl - 1,
                },
                is_skip,
                now,
                out,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_phase2(
        &mut self,
        inst: InstanceId,
        ballot: Ballot,
        value: Value,
        votes: u16,
        ttl: u16,
        now: SimTime,
        out: &mut Output,
    ) {
        self.remember_learned(&value);
        // A Phase 2 already carrying a majority is a decision travelling
        // with its value: learn it (no disk write — durability of the
        // *votes* is what safety needed, and those are on a majority's
        // disks) and keep the value circulating for the members behind us.
        if votes >= self.cfg.majority() {
            self.handle_decide(inst, value.clone(), now, out);
            if ttl > 0 {
                self.forward_phase2(inst, ballot, value, votes, ttl - 1, now, out);
            }
            return;
        }
        if !self.is_acceptor() {
            if ttl > 0 {
                self.forward_phase2(inst, ballot, value, votes, ttl - 1, now, out);
            }
            return;
        }
        if ballot < self.log.promised() {
            return; // stale coordinator's proposal dies here
        }
        if self.log.is_decided(inst) {
            // Already decided (re-proposal after failover, or we learned
            // via an id-only decision): no vote, but keep it moving so the
            // value still reaches everyone.
            if ttl > 0 {
                self.forward_phase2(inst, ballot, value, votes, ttl - 1, now, out);
            }
            return;
        }
        let receipt = self.log.accept(inst, ballot, value.clone(), now);
        let votes = votes + 1;
        let action = if votes >= self.cfg.majority() {
            // Our vote completes the majority: this is the decision
            // point. The value continues its single circulation inside
            // Phase 2; the id-only decision covers the members upstream.
            PendingAction::Decide {
                inst,
                ballot,
                value,
                votes,
                fwd_ttl: ttl.saturating_sub(1),
                announce: true,
            }
        } else if ttl > 0 {
            PendingAction::Forward(RingMsg::Phase2 {
                inst,
                ballot,
                value,
                votes,
                ttl: ttl - 1,
            })
        } else {
            return; // ring exhausted below majority: lost acceptors; retry via failover
        };
        self.complete_or_defer(inst, action, receipt.ack_at, now, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_phase2(
        &mut self,
        inst: InstanceId,
        ballot: Ballot,
        value: Value,
        votes: u16,
        ttl: u16,
        now: SimTime,
        out: &mut Output,
    ) {
        self.send_ring(
            RingMsg::Phase2 {
                inst,
                ballot,
                value,
                votes,
                ttl,
            },
            now,
            out,
        );
    }

    fn handle_decide(&mut self, inst: InstanceId, value: Value, now: SimTime, out: &mut Output) {
        self.unacked.remove(&value.id);
        // The value arrived by some path (Phase 2, resend, recovery):
        // any outstanding pull for this instance is satisfied, and the
        // value joins the cache so we can serve pulls from peers.
        self.pending_values.remove(&inst);
        self.remember_learned(&value);
        if self.is_acceptor() {
            self.log.mark_decided(inst, value.clone(), now);
        }
        if self.coordinating {
            self.remember_seen(value.id);
            if inst >= self.next_instance {
                self.next_instance = inst.plus(value.instance_span());
            }
        }
        if inst < self.next_delivery || self.decision_buffer.contains_key(&inst) {
            return;
        }
        self.decision_buffer.insert(inst, value);
        self.drain_deliveries(out);
    }

    fn drain_deliveries(&mut self, out: &mut Output) {
        while let Some(value) = self.decision_buffer.remove(&self.next_delivery) {
            let inst = self.next_delivery;
            self.next_delivery = inst.plus(value.instance_span());
            let value = self.dedup_delivery(inst, value);
            if value.is_deliverable() && std::env::var_os("MRP_DEBUG").is_some() {
                eprintln!(
                    "[{} r{}] learner delivers {inst} {}",
                    self.me,
                    self.ring.raw(),
                    value.id
                );
            }
            if self.subscribed {
                out.decided.push((inst, value));
            }
        }
    }

    /// Demotes a duplicate application value (same `ValueId` decided in
    /// two instances, possible across coordinator changes) to a no-op.
    /// Deterministic across learners because it depends only on the
    /// delivered prefix.
    fn dedup_delivery(&mut self, inst: InstanceId, value: Value) -> Value {
        if !value.is_deliverable() {
            return value;
        }
        if !self.delivered_ids.insert(value.id) {
            if std::env::var_os("MRP_DEBUG").is_some() {
                eprintln!("[{} {}] dedup DEMOTES {}", self.me, self.ring, value.id);
            }
            return Value {
                id: value.id,
                kind: ValueKind::Noop,
            };
        }
        self.delivered_order.push_back((inst, value.id));
        while self.delivered_order.len() > self.opts.dedup_window {
            if let Some((_, old)) = self.delivered_order.pop_front() {
                self.delivered_ids.remove(&old);
            }
        }
        value
    }

    // ------------------------------------------------------------------
    // timers
    // ------------------------------------------------------------------

    /// Handles a previously scheduled [`RingTimer`].
    pub fn on_timer(&mut self, timer: RingTimer, now: SimTime, out: &mut Output) {
        match timer {
            RingTimer::WriteDone(inst) => {
                if let Some(action) = self.pending.remove(&inst) {
                    self.run_pending(action, now, out);
                }
            }
            RingTimer::PromiseDone(generation) => {
                if let Some((expected, msg)) = self.pending_phase1.take() {
                    if expected == generation {
                        self.send_ring(msg, now, out);
                    } else {
                        self.pending_phase1 = Some((expected, msg));
                    }
                }
            }
            RingTimer::BatchFlush => {
                self.batch_timer_armed = false;
                self.flush_batch(out);
            }
            RingTimer::RateLevel => self.on_rate_level(now, out),
            RingTimer::Liveness => self.on_liveness(now, out),
            RingTimer::ProposalRetry => self.on_proposal_retry(now, out),
        }
    }

    /// Rate leveling (§4): propose one skip token covering the shortfall
    /// between the proposals seen this Δ and the expected λ·Δ.
    ///
    /// The cadence is adaptive: a Δ with real proposals resets the
    /// backoff and skips only the shortfall, while consecutive fully
    /// idle Δs double a stride (capped at [`MAX_IDLE_SKIP_STRIDE`]) and
    /// propose one skip covering `stride` intervals every `stride`
    /// intervals. Merge credit banked per unit time is unchanged; the
    /// consensus traffic an idle ring generates drops by the stride.
    /// The host collapses the added idle-transition latency with
    /// [`RingNode::rate_level_now`] when its merge is starved on this
    /// ring.
    fn on_rate_level(&mut self, now: SimTime, out: &mut Output) {
        let Some(rl) = self.opts.rate_leveling else {
            return;
        };
        out.timers.push((rl.delta, RingTimer::RateLevel));
        if !self.coordinating || !self.phase1_complete {
            self.proposals_since_delta = 0;
            return;
        }
        let expected = rl.expected_per_delta();
        let got = self.proposals_since_delta;
        self.proposals_since_delta = 0;
        if got > 0 {
            self.idle_deltas = 0;
            self.idle_stride = 1;
            if got < expected {
                self.propose_skip((expected - got) as u32, now, out);
            }
            return;
        }
        self.idle_deltas += 1;
        if self.idle_deltas < self.idle_stride {
            return; // within the stride: stay silent, owe the credit
        }
        let owed = self.idle_deltas;
        self.idle_deltas = 0;
        self.idle_stride = (self.idle_stride * 2).min(MAX_IDLE_SKIP_STRIDE);
        self.propose_skip((expected * owed) as u32, now, out);
    }

    /// Immediately proposes the skip credit of one Δ interval, outside
    /// the timer cadence. The host calls this when its deterministic
    /// merge is parked waiting on this ring (an idle ring deep in stride
    /// backoff would otherwise make a newly active neighbour ring wait
    /// out the stride); it also resets the backoff so the cadence stays
    /// tight while someone is actually waiting.
    pub fn rate_level_now(&mut self, now: SimTime, out: &mut Output) {
        let Some(rl) = self.opts.rate_leveling else {
            return;
        };
        if !self.coordinating || !self.phase1_complete || self.proposals_since_delta > 0 {
            return;
        }
        self.idle_deltas = 0;
        self.idle_stride = 1;
        self.propose_skip(rl.expected_per_delta().max(1) as u32, now, out);
    }

    fn propose_skip(&mut self, n: u32, now: SimTime, out: &mut Output) {
        let id = self.next_value_id();
        let skip = Value {
            id,
            kind: ValueKind::Skip(n),
        };
        self.remember_seen(id);
        self.prop_queue.push_back(skip);
        self.pump_proposals(now, out);
    }

    fn on_liveness(&mut self, now: SimTime, out: &mut Output) {
        out.timers
            .push((self.opts.heartbeat_interval, RingTimer::Liveness));
        if !self.cfg.contains(self.me) {
            // Removed from the ring (e.g. while partitioned away): stay
            // quiet until the host rejoins us; predecessor/successor are
            // undefined here.
            self.refresh_config(now, out);
            return;
        }
        // Heartbeats bypass batching: they are the liveness signal itself.
        out.sends.push((
            self.successor(),
            RingMsg::Heartbeat {
                epoch: self.cfg.epoch().raw(),
            },
        ));
        // Phase 1 has no acknowledgement of its own: the window message
        // circulates once and, if a hop drops it (a member with a stale
        // config forwarding to a just-removed node), the coordinator
        // would wait forever. Re-send while incomplete.
        if self.coordinating
            && !self.phase1_complete
            && self.pending_phase1.is_none()
            && now.since(self.phase1_sent_at) > self.opts.heartbeat_interval * 4
        {
            self.begin_phase1(now, out);
        }
        // Id-only decisions whose value pull went unanswered: re-request
        // from the next acceptor in the rotation (the previous target may
        // itself have missed the value). Two brakes keep this from
        // becoming a storm under large slow frames: per-miss exponential
        // backoff (a pull whose answer is merely queued behind a fat
        // resend is not re-sent every tick) and a per-tick budget over
        // the *lowest* missing instances (the only ones delivery is
        // actually blocked on — BTreeMap order gives them first).
        let mut stale_pulls: Vec<(InstanceId, ValueId)> = Vec::new();
        for (inst, p) in &self.pending_values {
            if stale_pulls.len() >= self.opts.value_pull_budget {
                break;
            }
            if now.since(p.requested_at) > self.pull_retry_after(p.attempts) {
                stale_pulls.push((*inst, p.id));
            }
        }
        for (inst, id) in stale_pulls {
            if let Some(p) = self.pending_values.get_mut(&inst) {
                p.requested_at = now;
                p.attempts = p.attempts.saturating_add(1);
            }
            self.send_value_request(inst, id, out);
        }
        if now.since(self.last_from_pred) > self.opts.failure_timeout {
            let pred = self.predecessor();
            // An `Err` here includes "the coordination service is on the
            // other side of a partition" — the report simply retries on
            // the next liveness tick, and a replica that cannot reach
            // the service cannot evict anyone (the arbitration that
            // keeps mutual accusations from wedging the ring).
            if let Ok(cfg) = self
                .registry
                .report_failure(self.ring, pred, self.cfg.epoch())
            {
                self.install_config(cfg, now, out);
                self.last_from_pred = now;
            }
        } else {
            // Opportunistically pick up config changes made by others.
            self.refresh_config(now, out);
        }
    }

    /// How long a proposer waits before re-sending `value`: the base
    /// retry, scaled up with payload size. A multi-KiB value legitimately
    /// takes longer to batch, circulate and fsync than a small one; a
    /// fixed deadline re-injects the largest payloads exactly when the
    /// ring is busiest, turning a slow decision into a retry storm.
    fn retry_deadline(&self, value: &Value) -> Duration {
        const SIZE_UNIT: usize = 32 * 1024;
        let payload = value.payload().map(|b| b.len()).unwrap_or(0);
        let scale = (1 + payload / SIZE_UNIT).min(8) as u32;
        self.opts.proposal_retry * scale
    }

    fn on_proposal_retry(&mut self, now: SimTime, out: &mut Output) {
        out.timers
            .push((self.opts.proposal_retry, RingTimer::ProposalRetry));
        let stale: Vec<Value> = self
            .unacked
            .iter()
            .filter(|(_, (v, sent))| now.since(*sent) >= self.retry_deadline(v))
            .map(|(_, (v, _))| v.clone())
            .collect();
        for value in stale {
            if let Some(entry) = self.unacked.get_mut(&value.id) {
                entry.1 = now;
            }
            if self.coordinating {
                // Re-propose directly; the seen-set dedups if it was
                // already handled.
                if self.remember_seen(value.id) {
                    self.prop_queue.push_back(value);
                }
            } else {
                let ttl = self.cfg.initial_ttl();
                self.send_ring(RingMsg::Proposal { value, ttl }, now, out);
            }
        }
        self.pump_proposals(now, out);
    }

    fn predecessor(&self) -> NodeId {
        let members = self.cfg.members();
        let pos = members
            .iter()
            .position(|m| *m == self.me)
            .expect("member of own ring");
        members[(pos + members.len() - 1) % members.len()]
    }

    fn refresh_config(&mut self, now: SimTime, out: &mut Output) {
        if let Ok(cfg) = self.registry.ring(self.ring) {
            if cfg.epoch() > self.cfg.epoch() {
                self.install_config(cfg, now, out);
            }
        }
    }

    fn install_config(&mut self, cfg: RingConfig, now: SimTime, out: &mut Output) {
        // The successor may change: flush buffered messages to the old one
        // first so nothing is silently retargeted.
        self.flush_batch(out);
        self.cfg = cfg;
        self.coordinating = self.cfg.coordinator() == self.me && self.cfg.contains(self.me);
        self.last_from_pred = now;
        if self.coordinating {
            // Re-run Phase 1 even when this node was already the
            // coordinator: a membership change means messages circulating
            // through the removed member were lost, and Phase 2 votes that
            // died on their first hop leave instances undecided *nowhere*
            // — retransmission cannot heal those. Phase 1 at the new
            // (higher, epoch-derived) ballot re-collects what acceptors
            // hold and fills the true holes with no-ops (§5.1).
            self.begin_phase1(now, out);
        } else {
            self.phase1_complete = false;
        }
    }

    // ------------------------------------------------------------------
    // batching
    // ------------------------------------------------------------------

    /// Sends (or batches) a ring message to the successor, deriving
    /// batch-bypass criticality from the message itself (only possible
    /// for value-carrying messages; id-only decisions use
    /// [`RingNode::send_ring_with`] with the resolved value's kind).
    fn send_ring(&mut self, msg: RingMsg, now: SimTime, out: &mut Output) {
        let critical = match &msg {
            RingMsg::Phase2 { value, .. } => matches!(value.kind, ValueKind::Skip(_)),
            _ => false,
        };
        self.send_ring_with(msg, critical, now, out);
    }

    /// Sends (or batches) a ring message to the successor.
    ///
    /// Skip tokens bypass the batch-delay timer (`critical`): they are the
    /// merge's clock (rate leveling exists so idle rings do not stall
    /// learners), and parking them for `max_delay` on every hop would
    /// re-introduce exactly the delivery lag they eliminate. The pending
    /// batch is flushed first so per-link FIFO is preserved.
    fn send_ring_with(&mut self, msg: RingMsg, critical: bool, _now: SimTime, out: &mut Output) {
        if !self.cfg.contains(self.me) {
            // Removed from the ring while effects were in flight (e.g.
            // failure detection during shutdown): there is no successor to
            // send to; drop instead of panicking.
            return;
        }
        let Some(policy) = self.opts.batching else {
            out.sends.push((self.successor(), msg));
            return;
        };
        if critical {
            self.flush_batch(out);
            out.sends.push((self.successor(), msg));
            return;
        }
        self.batch_bytes += msg.wire_size();
        self.batch.push(msg);
        if self.batch_bytes >= policy.max_bytes {
            self.flush_batch(out);
        } else if !self.batch_timer_armed {
            self.batch_timer_armed = true;
            out.timers.push((policy.max_delay, RingTimer::BatchFlush));
        }
    }

    fn flush_batch(&mut self, out: &mut Output) {
        if self.batch.is_empty() {
            return;
        }
        self.batch_bytes = 0;
        let msgs = std::mem::take(&mut self.batch);
        if !self.cfg.contains(self.me) {
            return; // removed mid-flight; nowhere to flush to
        }
        let msg = if msgs.len() == 1 {
            msgs.into_iter().next().expect("len checked")
        } else {
            RingMsg::Batch(msgs)
        };
        out.sends.push((self.successor(), msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    use storage::StorageMode;

    /// Drives a set of RingNodes to quiescence by synchronously relaying
    /// their sends; timers with zero-ish delays are fired in order.
    /// Timing is collapsed (everything happens "now") — these tests check
    /// protocol logic, not timing; timing is covered by simnet tests.
    struct Harness {
        nodes: Vec<RingNode>,
        now: SimTime,
        delivered: Vec<Vec<(InstanceId, Value)>>,
        /// Tally of every message relayed between nodes, as a live
        /// transport would account it.
        wire: common::msg::WireStats,
    }

    impl Harness {
        fn new(n: usize, opts: RingOptions) -> (Self, Registry) {
            let registry = Registry::new();
            let members: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
            let cfg = RingConfig::new(RingId::new(0), members.clone(), members.clone()).unwrap();
            registry.register_ring(cfg).unwrap();
            let nodes = members
                .iter()
                .map(|m| RingNode::new(*m, RingId::new(0), registry.clone(), opts.clone()).unwrap())
                .collect();
            (
                Harness {
                    nodes,
                    now: SimTime::ZERO,
                    delivered: vec![Vec::new(); n],
                    wire: common::msg::WireStats::default(),
                },
                registry,
            )
        }

        fn start(&mut self) {
            let mut out = Output::new();
            for i in 0..self.nodes.len() {
                self.nodes[i].start(self.now, &mut out);
                self.relay(i, &mut out);
            }
        }

        fn propose(&mut self, node: usize, value: Value) {
            let mut out = Output::new();
            self.nodes[node].propose(value, self.now, &mut out);
            self.relay(node, &mut out);
        }

        /// Synchronously relays sends (and fires timers immediately) until
        /// quiescent.
        fn relay(&mut self, origin: usize, out: &mut Output) {
            let mut queue: VecDeque<(usize, NodeId, RingMsg)> = VecDeque::new();
            let mut timers: VecDeque<(usize, RingTimer)> = VecDeque::new();
            let me = self.nodes[origin].me();
            self.drain(origin, me, out, &mut queue, &mut timers);
            let mut steps = 0;
            while !queue.is_empty() || !timers.is_empty() {
                steps += 1;
                assert!(steps < 100_000, "relay did not quiesce");
                let mut o = Output::new();
                if let Some((target, from, msg)) = queue.pop_front() {
                    self.nodes[target].on_msg(from, msg, self.now, &mut o);
                    let from2 = self.nodes[target].me();
                    self.drain(target, from2, &mut o, &mut queue, &mut timers);
                } else if let Some((target, timer)) = timers.pop_front() {
                    // Only fire write/batch timers synchronously; periodic
                    // timers would loop forever.
                    match timer {
                        RingTimer::WriteDone(_)
                        | RingTimer::PromiseDone(_)
                        | RingTimer::BatchFlush => {
                            self.nodes[target].on_timer(timer, self.now, &mut o);
                            let from2 = self.nodes[target].me();
                            self.drain(target, from2, &mut o, &mut queue, &mut timers);
                        }
                        _ => {}
                    }
                }
            }
        }

        fn drain(
            &mut self,
            origin: usize,
            from: NodeId,
            out: &mut Output,
            queue: &mut VecDeque<(usize, NodeId, RingMsg)>,
            timers: &mut VecDeque<(usize, RingTimer)>,
        ) {
            for (to, msg) in out.sends.drain(..) {
                self.wire.tally(&msg);
                queue.push_back((to.raw() as usize, from, msg));
            }
            for (inst, value) in out.decided.drain(..) {
                self.delivered[origin].push((inst, value));
            }
            for (_, t) in out.timers.drain(..) {
                timers.push_back((origin, t));
            }
        }

        fn app_value(&mut self, node: usize, payload: &'static [u8]) -> Value {
            let id = self.nodes[node].next_value_id();
            Value {
                id,
                kind: ValueKind::App(Bytes::from_static(payload)),
            }
        }
    }

    fn opts() -> RingOptions {
        RingOptions {
            storage: StorageMode::InMemory,
            ..RingOptions::crash_free()
        }
    }

    #[test]
    fn three_node_ring_delivers_everywhere_in_order() {
        let (mut h, _) = Harness::new(3, opts());
        h.start();
        for i in 0..5 {
            let v = h.app_value(i % 3, b"x");
            h.propose(i % 3, v);
        }
        for n in 0..3 {
            assert_eq!(h.delivered[n].len(), 5, "node {n} deliveries");
        }
        // Identical streams on every node.
        assert_eq!(h.delivered[0], h.delivered[1]);
        assert_eq!(h.delivered[1], h.delivered[2]);
        // Instance order strictly ascending.
        let insts: Vec<u64> = h.delivered[0].iter().map(|(i, _)| i.raw()).collect();
        let mut sorted = insts.clone();
        sorted.sort_unstable();
        assert_eq!(insts, sorted);
    }

    #[test]
    fn single_node_ring_works() {
        let (mut h, _) = Harness::new(1, opts());
        h.start();
        let v = h.app_value(0, b"solo");
        h.propose(0, v.clone());
        assert_eq!(h.delivered[0].len(), 1);
        assert_eq!(h.delivered[0][0].1, v);
    }

    #[test]
    fn non_coordinator_proposals_reach_coordinator() {
        let (mut h, _) = Harness::new(4, opts());
        h.start();
        // Node 3 is the furthest from coordinator (node 0).
        let v = h.app_value(3, b"far");
        h.propose(3, v.clone());
        for n in 0..4 {
            assert_eq!(h.delivered[n].len(), 1, "node {n}");
            assert_eq!(h.delivered[n][0].1, v);
        }
    }

    #[test]
    fn large_values_disseminate_via_push() {
        let mut o = opts();
        o.value_push_bytes = 16;
        let obs = o.obs.clone();
        let (mut h, _) = Harness::new(4, o);
        h.start();
        let v = h.app_value(3, b"a payload large enough to cross the push threshold");
        h.propose(3, v.clone());
        for n in 0..4 {
            assert_eq!(h.delivered[n].len(), 1, "node {n}");
            assert_eq!(h.delivered[n][0].1, v);
        }
        // The payload fanned out point-to-point to the 3 other members
        // instead of circulating inside a Proposal.
        assert_eq!(h.wire.value_push_msgs, 3);
        assert_eq!(obs.counter("value_pushes_sent").get(), 1);
        // Every id-only decision found the value already resident.
        assert_eq!(h.wire.value_requests, 0);
        assert!(obs.counter("value_prefetch_hits").get() >= 1);
        assert_eq!(obs.counter("value_pull_misses").get(), 0);
    }

    #[test]
    fn small_values_skip_the_push_path() {
        let mut o = opts();
        o.value_push_bytes = 1024;
        let (mut h, _) = Harness::new(4, o);
        h.start();
        let v = h.app_value(3, b"small");
        h.propose(3, v.clone());
        for n in 0..4 {
            assert_eq!(h.delivered[n].len(), 1, "node {n}");
        }
        assert_eq!(h.wire.value_push_msgs, 0);
    }

    #[test]
    fn push_resolves_a_decision_that_raced_ahead() {
        let mut o = opts();
        o.value_push_bytes = 8;
        let (mut h, _) = Harness::new(3, o);
        h.start();
        let v = h.app_value(0, b"raced-payload");
        // Node 2 sees the id-only decision before it ever learned the
        // value: the pull path arms.
        let mut out = Output::new();
        h.nodes[2].on_msg(
            NodeId::new(1),
            RingMsg::Decision {
                inst: InstanceId::ZERO,
                ballot: Ballot::new(1, NodeId::new(0)),
                id: v.id,
                ttl: 0,
            },
            h.now,
            &mut out,
        );
        assert!(out.decided.is_empty());
        assert!(out
            .sends
            .iter()
            .any(|(_, m)| matches!(m, RingMsg::ValueRequest { .. })));
        // The proposer's eager push lands: the blocked instance delivers
        // without waiting for the resend.
        let mut out = Output::new();
        h.nodes[2].on_msg(
            NodeId::new(0),
            RingMsg::ValuePush { value: v.clone() },
            h.now,
            &mut out,
        );
        assert_eq!(out.decided.len(), 1);
        assert_eq!(out.decided[0].1, v);
    }

    #[test]
    fn duplicate_proposals_are_suppressed_by_coordinator() {
        let (mut h, _) = Harness::new(3, opts());
        h.start();
        let v = h.app_value(1, b"dup");
        h.propose(1, v.clone());
        h.propose(1, v.clone()); // identical ValueId
        assert_eq!(h.delivered[0].len(), 1);
    }

    #[test]
    fn skip_values_advance_multiple_instances() {
        let (mut h, _) = Harness::new(3, opts());
        h.start();
        let id = h.nodes[0].next_value_id();
        h.propose(
            0,
            Value {
                id,
                kind: ValueKind::Skip(10),
            },
        );
        let v = h.app_value(0, b"after-skip");
        h.propose(0, v);
        let d = &h.delivered[0];
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, InstanceId::new(0));
        assert_eq!(
            d[1].0,
            InstanceId::new(10),
            "skip(10) consumed 10 instances"
        );
    }

    #[test]
    fn batching_groups_messages() {
        let mut o = opts();
        o.batching = Some(crate::options::BatchPolicy {
            max_bytes: 10_000,
            max_delay: Duration::from_millis(5),
        });
        let (mut h, _) = Harness::new(3, o);
        h.start();
        for _ in 0..10 {
            let v = h.app_value(0, b"payloadpayload");
            h.propose(0, v);
        }
        // All values still delivered exactly once, in identical order.
        assert_eq!(h.delivered[0].len(), 10);
        assert_eq!(h.delivered[0], h.delivered[2]);
    }

    #[test]
    fn coordinator_failover_re_proposes_accepted_values() {
        let (mut h, registry) = Harness::new(3, opts());
        h.start();
        let v0 = h.app_value(0, b"before");
        h.propose(0, v0.clone());

        // Coordinator (node 0) "fails": registry removes it; node 1 takes
        // over and re-runs Phase 1.
        let epoch = registry.ring(RingId::new(0)).unwrap().epoch();
        let cfg = registry
            .report_failure(RingId::new(0), NodeId::new(0), epoch)
            .unwrap();
        assert_eq!(cfg.coordinator(), NodeId::new(1));

        let mut out = Output::new();
        h.nodes[1].install_config(cfg.clone(), h.now, &mut out);
        h.relay(1, &mut out);
        let mut out = Output::new();
        h.nodes[2].install_config(cfg, h.now, &mut out);
        h.relay(2, &mut out);

        assert!(h.nodes[1].is_coordinator());

        // New proposals flow through the new coordinator.
        let v1 = h.app_value(2, b"after");
        h.propose(2, v1.clone());
        let d1: Vec<_> = h.delivered[1].iter().map(|(_, v)| v.clone()).collect();
        let d2: Vec<_> = h.delivered[2].iter().map(|(_, v)| v.clone()).collect();
        assert!(d1.contains(&v1));
        assert_eq!(d1, d2, "learners agree after failover");
    }

    #[test]
    fn failover_preserves_decided_prefix() {
        let (mut h, registry) = Harness::new(3, opts());
        h.start();
        for i in 0..3 {
            let v = h.app_value(0, if i % 2 == 0 { b"a" } else { b"b" });
            h.propose(0, v);
        }
        let before: Vec<_> = h.delivered[1].clone();
        assert_eq!(before.len(), 3);

        let epoch = registry.ring(RingId::new(0)).unwrap().epoch();
        let cfg = registry
            .report_failure(RingId::new(0), NodeId::new(0), epoch)
            .unwrap();
        for n in [1, 2] {
            let mut out = Output::new();
            h.nodes[n].install_config(cfg.clone(), h.now, &mut out);
            h.relay(n, &mut out);
        }
        // Deliveries did not change or duplicate.
        assert_eq!(&h.delivered[1][..3], &before[..]);
        let v = h.app_value(1, b"post");
        h.propose(1, v.clone());
        assert_eq!(h.delivered[1].len(), h.delivered[2].len());
        assert!(h.delivered[1].iter().any(|(_, x)| *x == v));
    }

    #[test]
    fn rate_leveling_emits_skips_on_idle() {
        let mut o = opts();
        o.rate_leveling = Some(crate::options::RateLeveling {
            delta: Duration::from_millis(5),
            lambda: 1000,
        });
        let (mut h, _) = Harness::new(3, o);
        h.start();
        // Fire the coordinator's RateLevel timer manually (harness skips
        // periodic timers).
        let mut out = Output::new();
        h.nodes[0].on_timer(RingTimer::RateLevel, h.now, &mut out);
        h.relay(0, &mut out);
        assert_eq!(h.delivered[0].len(), 1);
        let (_, v) = &h.delivered[0][0];
        assert!(
            matches!(v.kind, ValueKind::Skip(5)),
            "1000/s × 5 ms = 5: {v:?}"
        );
        // Skips deliver on every learner and advance the instance counter.
        assert_eq!(h.delivered[1], h.delivered[0]);
    }

    #[test]
    fn unsubscribed_learner_does_not_deliver() {
        let (mut h, _) = Harness::new(3, opts());
        h.nodes[2].set_subscribed(false);
        h.start();
        let v = h.app_value(0, b"x");
        h.propose(0, v);
        assert_eq!(h.delivered[0].len(), 1);
        assert_eq!(h.delivered[2].len(), 0);
    }

    /// The tentpole slow path: a node misses the Phase 2 value (dropped
    /// frame), observes the id-only decision, pulls the value with
    /// `ValueRequest`, and delivery proceeds — including later instances
    /// that buffered behind the hole.
    #[test]
    fn missed_phase2_value_recovers_via_pull() {
        let (mut h, _) = Harness::new(3, opts());
        h.start();

        // v0 proposed at the coordinator; drive messages by hand.
        let v0 = h.app_value(0, b"missed");
        let mut out = Output::new();
        h.nodes[0].propose(v0.clone(), h.now, &mut out);
        let p2_01 = out
            .sends
            .iter()
            .find_map(|(to, m)| match m {
                RingMsg::Phase2 { .. } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("coordinator emits Phase 2");
        assert_eq!(p2_01.0, NodeId::new(1));

        // Node 1's vote completes the majority: it must keep the value
        // circulating (Phase 2) AND announce the id-only decision.
        let mut out1 = Output::new();
        h.nodes[1].on_msg(NodeId::new(0), p2_01.1, h.now, &mut out1);
        let p2_12 = out1
            .sends
            .iter()
            .find_map(|(to, m)| match m {
                RingMsg::Phase2 { votes, .. } => {
                    assert!(*votes >= 2, "forwarded Phase 2 proves the majority");
                    Some((*to, m.clone()))
                }
                _ => None,
            })
            .expect("value keeps circulating");
        assert_eq!(p2_12.0, NodeId::new(2));
        let decision = out1
            .sends
            .iter()
            .find_map(|(_, m)| match m {
                RingMsg::Decision { id, .. } => {
                    assert_eq!(*id, v0.id, "decision names the value by id only");
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("majority point announces an id-only decision");

        // DROP the Phase 2 to node 2 — it never learns the value — and
        // deliver only the id-only decision.
        let mut out2 = Output::new();
        h.nodes[2].on_msg(NodeId::new(1), decision, h.now, &mut out2);
        assert!(
            h.delivered[2].is_empty(),
            "value unknown: nothing deliverable yet"
        );
        let (pull_target, pull) = out2
            .sends
            .iter()
            .find_map(|(to, m)| match m {
                RingMsg::ValueRequest { inst, id } => {
                    assert_eq!(*inst, InstanceId::new(0));
                    assert_eq!(*id, v0.id);
                    Some((*to, m.clone()))
                }
                _ => None,
            })
            .expect("miss triggers a value pull");
        assert_ne!(pull_target, NodeId::new(2), "pull goes to a peer acceptor");

        // Meanwhile a later instance decides and reaches node 2 with its
        // value: it must buffer, not stall the pull.
        let v1 = h.app_value(0, b"later");
        let mut out = Output::new();
        h.nodes[0].propose(v1.clone(), h.now, &mut out);
        let p2b = out
            .sends
            .iter()
            .find_map(|(_, m)| match m {
                RingMsg::Phase2 { .. } => Some(m.clone()),
                _ => None,
            })
            .expect("phase 2 for v1");
        let mut out1b = Output::new();
        h.nodes[1].on_msg(NodeId::new(0), p2b, h.now, &mut out1b);
        let p2b_fwd = out1b
            .sends
            .iter()
            .find_map(|(_, m)| match m {
                RingMsg::Phase2 { .. } => Some(m.clone()),
                _ => None,
            })
            .expect("v1 value circulates");
        let mut out2b = Output::new();
        h.nodes[2].on_msg(NodeId::new(1), p2b_fwd, h.now, &mut out2b);
        assert!(
            h.delivered[2].is_empty() && out2b.decided.is_empty(),
            "instance 1 buffers behind the missing instance 0"
        );

        // The pulled acceptor answers; node 2 resolves and drains both.
        let mut out_acc = Output::new();
        let target_idx = pull_target.raw() as usize;
        h.nodes[target_idx].on_msg(NodeId::new(2), pull, h.now, &mut out_acc);
        let resend = out_acc
            .sends
            .iter()
            .find_map(|(to, m)| match m {
                RingMsg::ValueResend { value, .. } => {
                    assert_eq!(*to, NodeId::new(2));
                    assert_eq!(value, &v0);
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("acceptor resends the full value");
        let mut out2c = Output::new();
        h.nodes[2].on_msg(pull_target, resend, h.now, &mut out2c);
        let got: Vec<(InstanceId, Value)> = out2b
            .decided
            .iter()
            .chain(out2c.decided.iter())
            .cloned()
            .collect();
        assert_eq!(
            got,
            vec![(InstanceId::new(0), v0), (InstanceId::new(1), v1),],
            "both instances deliver, in order, after the pull resolves"
        );
    }

    /// A checkpoint's dedup snapshot must reflect only deliveries below
    /// the cut: the ring learner runs ahead of the deterministic merge,
    /// and leaking a future delivery's id into the snapshot would make a
    /// restored replica demote that value to a no-op on replay (a lost
    /// write).
    #[test]
    fn dedup_snapshot_respects_the_cut() {
        let (mut h, _) = Harness::new(3, opts());
        h.start();
        let va = h.app_value(0, b"below-cut");
        let vb = h.app_value(0, b"beyond-cut");
        h.propose(0, va.clone());
        h.propose(0, vb.clone());
        assert_eq!(h.delivered[1].len(), 2);

        // A checkpoint cut between the two deliveries (the merge had only
        // consumed instance 0) must include va's id but NOT vb's.
        let snap = h.nodes[1].dedup_snapshot(InstanceId::new(1));
        assert!(snap.contains(&va.id));
        assert!(!snap.contains(&vb.id), "future delivery leaked into cut");

        // Restore on a fresh node positioned at the cut, then replay the
        // beyond-cut value: it must deliver, not demote.
        let (mut h2, _) = Harness::new(3, opts());
        h2.start();
        h2.nodes[1].restore_dedup(snap);
        h2.nodes[1].set_next_delivery(InstanceId::new(1));
        let mut out = Output::new();
        h2.nodes[1].learn_decided(InstanceId::new(1), vb.clone(), h2.now, &mut out);
        assert_eq!(
            out.decided,
            vec![(InstanceId::new(1), vb)],
            "replayed value beyond the cut delivers intact"
        );
    }

    /// A decision on the wire must never carry payload bytes.
    #[test]
    fn decisions_are_metadata_only() {
        let (mut h, _) = Harness::new(3, opts());
        h.start();
        let before = h.wire;
        for i in 0..5 {
            let v = h.app_value(i % 3, b"some payload bytes some payload bytes");
            h.propose(i % 3, v);
        }
        // Every message relayed for those proposals, as a transport
        // would tally it: decisions circulated, but zero payload bytes
        // rode inside any of them.
        assert!(
            h.wire.decision_msgs > before.decision_msgs,
            "proposals circulated decisions"
        );
        assert_eq!(h.wire.decision_payload_bytes, 0);
        assert!(
            h.wire.phase2_payload_bytes > 0,
            "payload travels in Phase 2"
        );

        // And structurally: an id-only decision encodes tiny.
        use common::wire::Wire;
        let d = RingMsg::Decision {
            inst: InstanceId::new(3),
            ballot: Ballot::new(1, NodeId::new(0)),
            id: ValueId::new(NodeId::new(1), 9),
            ttl: 2,
        };
        assert!(d.to_bytes().len() < 16, "id-only decision stays tiny");
    }

    /// The recovery-storm brake: for every missed `(inst, id)` at most
    /// one `ValueRequest` is outstanding per liveness tick — duplicate
    /// decision observations add none, ticks inside the backoff window
    /// add none, and a tick that does retry is bounded by the pull
    /// budget over the lowest (delivery-blocking) instances.
    #[test]
    fn value_pull_retries_are_deduped_and_budgeted() {
        let opts = RingOptions {
            storage: StorageMode::InMemory,
            // Keep failure detection armed but far away: this test fires
            // the liveness timer by hand and must not trigger a
            // predecessor-failure report.
            failure_timeout: Duration::from_secs(3600),
            ..RingOptions::default()
        };
        let budget = opts.value_pull_budget;
        let heartbeat = opts.heartbeat_interval;
        let (mut h, _) = Harness::new(3, opts);
        h.start();

        let misses = 3 * budget as u64;
        let pulls_of = |out: &Output| -> Vec<(InstanceId, ValueId)> {
            out.sends
                .iter()
                .filter_map(|(_, m)| match m {
                    RingMsg::ValueRequest { inst, id } => Some((*inst, *id)),
                    _ => None,
                })
                .collect()
        };
        let decision = |i: u64| RingMsg::Decision {
            inst: InstanceId::new(i),
            ballot: Ballot::new(1, NodeId::new(0)),
            id: ValueId::new(NodeId::new(0), 1000 + i),
            ttl: 0,
        };

        // First observation of each id-only decision: exactly one pull
        // per missed (inst, id).
        let mut out = Output::new();
        for i in 0..misses {
            h.nodes[2].on_msg(NodeId::new(1), decision(i), h.now, &mut out);
        }
        let first = pulls_of(&out);
        assert_eq!(first.len(), misses as usize, "one pull per fresh miss");
        let unique: HashSet<_> = first.iter().collect();
        assert_eq!(unique.len(), first.len(), "no duplicate pulls");

        // Re-observing the same decisions (circulation echoes, retries):
        // zero additional pulls.
        let mut out = Output::new();
        for i in 0..misses {
            h.nodes[2].on_msg(NodeId::new(1), decision(i), h.now, &mut out);
        }
        assert!(pulls_of(&out).is_empty(), "duplicate decisions re-pulled");

        // A liveness tick inside the backoff window: zero pulls.
        let mut out = Output::new();
        h.nodes[2].on_timer(RingTimer::Liveness, h.now + heartbeat, &mut out);
        assert!(pulls_of(&out).is_empty(), "tick inside backoff re-pulled");

        // A tick past the first backoff (2·heartbeat): retries flow, but
        // at most `budget` of them, each (inst, id) at most once, and
        // they cover the lowest instances (delivery is blocked there).
        let late = h.now + heartbeat * 3;
        let mut out = Output::new();
        h.nodes[2].on_timer(RingTimer::Liveness, late, &mut out);
        let retried = pulls_of(&out);
        assert_eq!(retried.len(), budget, "per-tick budget not enforced");
        let unique: HashSet<_> = retried.iter().collect();
        assert_eq!(unique.len(), retried.len(), "a miss was pulled twice");
        for (inst, _) in &retried {
            assert!(
                inst.raw() < budget as u64,
                "budget must go to the lowest blocked instances"
            );
        }

        // Immediately ticking again at the same instant: the retried
        // misses just restarted their (now doubled) backoff — only the
        // *next* budget-worth of stale misses may go out, never the same
        // (inst, id) twice in a tick window.
        let mut out = Output::new();
        h.nodes[2].on_timer(RingTimer::Liveness, late, &mut out);
        let second = pulls_of(&out);
        let second_unique: HashSet<_> = second.iter().collect();
        assert_eq!(second.len(), second_unique.len());
        for pull in &second {
            assert!(
                !retried.contains(pull),
                "{pull:?} re-pulled in back-to-back ticks"
            );
        }
    }

    #[test]
    fn epoch_in_heartbeat_triggers_config_refresh() {
        let (mut h, registry) = Harness::new(3, opts());
        h.start();
        // Externally bump the config (as if others reconfigured).
        let epoch = registry.ring(RingId::new(0)).unwrap().epoch();
        registry
            .report_failure(RingId::new(0), NodeId::new(0), epoch)
            .unwrap();
        let new_epoch = registry.ring(RingId::new(0)).unwrap().epoch();

        let mut out = Output::new();
        h.nodes[1].on_msg(
            NodeId::new(0),
            RingMsg::Heartbeat {
                epoch: new_epoch.raw(),
            },
            h.now,
            &mut out,
        );
        h.relay(1, &mut out);
        assert!(h.nodes[1].is_coordinator());
        assert_eq!(h.nodes[1].config().epoch(), new_epoch);
    }
}
