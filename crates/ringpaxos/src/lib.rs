//! Ring Paxos: atomic broadcast over a unidirectional ring overlay.
//!
//! This crate implements the unicast variant of Ring Paxos described in §4
//! of the paper (no IP multicast): proposers, acceptors and learners are
//! arranged in one logical ring; an elected acceptor *coordinates*. Values
//! circulate to the coordinator, which runs an optimized Paxos with
//! pre-executed Phase 1 over windows of instances; combined Phase 2A/2B
//! messages accumulate votes hop by hop, turn into decisions at the
//! acceptor where a majority is reached, and decisions circulate until
//! every member has seen them.
//!
//! The core type is [`RingNode`]: a runtime-agnostic state machine holding
//! all roles a process plays in one ring. It is driven through
//! [`RingNode::on_msg`], [`RingNode::on_timer`] and [`RingNode::propose`],
//! and emits effects into an [`Output`] scratch buffer. Two adapters drive
//! it:
//!
//! * [`process::RingProcess`] — a [`simnet::Process`] for simulations;
//! * [`live`] — a thread-per-node runtime over crossbeam channels or TCP
//!   sockets for real deployments.
//!
//! Failure handling: members heartbeat their ring successor; silence
//! triggers a compare-and-swap reconfiguration in the [`coord::Registry`]
//! (the Zookeeper stand-in), removing the dead member and electing a new
//! coordinator, which re-runs Phase 1 at a higher ballot and re-proposes
//! in-doubt values (§5.1).

pub mod live;
pub mod node;
pub mod options;
pub mod process;
pub mod timer;

pub use node::{Output, RingNode};
pub use options::{BatchPolicy, RateLeveling, RingOptions};
pub use process::RingProcess;
pub use timer::RingTimer;
