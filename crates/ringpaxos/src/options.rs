//! Tunables for a ring deployment.

use std::time::Duration;

use common::obs::Obs;
use storage::StorageMode;

/// Packet batching of ring messages (paper §4: message types for several
/// consensus instances are grouped into bigger packets).
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Flush the batch once it holds this many payload bytes (the paper
    /// uses 32 KB packets).
    pub max_bytes: usize,
    /// Flush a non-empty batch after this long regardless of size.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_bytes: 32 * 1024,
            max_delay: Duration::from_millis(5),
        }
    }
}

/// Multi-Ring Paxos rate leveling (paper §4): every `delta`, the
/// coordinator compares the number of proposals in the interval with
/// `lambda × delta` and proposes one skip token making up the difference.
#[derive(Clone, Copy, Debug)]
pub struct RateLeveling {
    /// The comparison interval Δ.
    pub delta: Duration,
    /// Maximum expected rate λ, in messages per second.
    pub lambda: u64,
}

impl RateLeveling {
    /// The paper's intra-datacenter configuration: Δ = 5 ms, λ = 9000.
    pub fn datacenter() -> Self {
        RateLeveling {
            delta: Duration::from_millis(5),
            lambda: 9000,
        }
    }

    /// The paper's cross-datacenter configuration: Δ = 20 ms, λ = 2000.
    pub fn wan() -> Self {
        RateLeveling {
            delta: Duration::from_millis(20),
            lambda: 2000,
        }
    }

    /// Expected number of instances per Δ interval.
    pub fn expected_per_delta(&self) -> u64 {
        ((self.lambda as f64) * self.delta.as_secs_f64())
            .round()
            .max(1.0) as u64
    }
}

/// Per-node options for one ring.
#[derive(Clone, Debug)]
pub struct RingOptions {
    /// Acceptor stable-storage mode.
    pub storage: StorageMode,
    /// Outgoing packet batching; `None` disables batching (as in the
    /// paper's Figure 3 baseline).
    pub batching: Option<BatchPolicy>,
    /// Rate leveling; `None` for plain atomic broadcast.
    pub rate_leveling: Option<RateLeveling>,
    /// Number of instances reserved per pre-executed Phase 1 window.
    pub phase1_window: u64,
    /// Interval between heartbeats to the ring successor.
    pub heartbeat_interval: Duration,
    /// Predecessor silence after which a member reports it failed; 0
    /// disables failure detection (protocol tests).
    pub failure_timeout: Duration,
    /// How long a proposer waits for a decision before re-sending a value.
    pub proposal_retry: Duration,
    /// Approximate number of recently decided value ids remembered for
    /// duplicate suppression.
    pub dedup_window: usize,
    /// Number of recently learned values (id → value) kept for resolving
    /// id-only decisions. Needs to cover the instances in flight between a
    /// value's Phase 2 pass and its decision — roughly one ring round
    /// trip; misses fall back to the `ValueRequest` pull path.
    pub value_cache_window: usize,
    /// Maximum `ValueRequest` pulls (re-)issued per liveness tick. Large
    /// frames decide slowly; without a cap, every tick re-pulled *every*
    /// outstanding miss from a rotating acceptor while the previous
    /// resends were still in flight, multiplying the very backlog that
    /// made the pulls slow (the 8 KiB recovery-storm tail). Delivery is
    /// blocked on the lowest missing instance, so pulling the first few
    /// is all that helps anyway.
    pub value_pull_budget: usize,
    /// Payload size (bytes) at or above which a non-coordinating proposer
    /// disseminates the value to every other ring member with
    /// [`common::msg::RingMsg::ValuePush`] *instead of* circulating a
    /// payload-carrying `Proposal` toward the coordinator. The pushes fan
    /// out point-to-point concurrently with ordering, so by decision time
    /// the value is already resident everywhere and the `ValueRequest`
    /// pull stays the slow path. `0` disables eager dissemination.
    pub value_push_bytes: usize,
    /// The node's observability registry. Rings and the hosts built on
    /// them record into it; the default is a fresh private registry, so
    /// nothing is shared until a deployment installs the per-node one.
    pub obs: Obs,
}

impl Default for RingOptions {
    fn default() -> Self {
        RingOptions {
            storage: StorageMode::InMemory,
            batching: None,
            rate_leveling: None,
            phase1_window: 32 * 1024,
            heartbeat_interval: Duration::from_millis(50),
            failure_timeout: Duration::from_millis(500),
            proposal_retry: Duration::from_millis(1000),
            dedup_window: 64 * 1024,
            value_cache_window: 8 * 1024,
            value_pull_budget: 8,
            value_push_bytes: 16 * 1024,
            obs: Obs::default(),
        }
    }
}

impl RingOptions {
    /// Options without failure detection or retries — for deterministic
    /// protocol tests.
    pub fn crash_free() -> Self {
        RingOptions {
            failure_timeout: Duration::ZERO,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_leveling_expected_counts() {
        let dc = RateLeveling::datacenter();
        assert_eq!(dc.expected_per_delta(), 45); // 9000/s × 5 ms
        let wan = RateLeveling::wan();
        assert_eq!(wan.expected_per_delta(), 40); // 2000/s × 20 ms
        let tiny = RateLeveling {
            delta: Duration::from_micros(10),
            lambda: 1,
        };
        assert_eq!(tiny.expected_per_delta(), 1, "clamped to at least one");
    }

    #[test]
    fn defaults_match_paper() {
        let b = BatchPolicy::default();
        assert_eq!(b.max_bytes, 32 * 1024);
        let o = RingOptions::default();
        assert!(o.batching.is_none());
        assert_eq!(o.phase1_window, 32 * 1024);
        assert!(RingOptions::crash_free().failure_timeout.is_zero());
    }
}
