//! Ring-level timers and their packing into [`simnet::Timer`] payload
//! words, so hosts multiplexing many rings can dispatch without
//! allocating.

use common::ids::InstanceId;

/// Timers a [`crate::RingNode`] schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingTimer {
    /// An acceptor's stable-storage write for `inst` completed; forward
    /// the pending vote/decision.
    WriteDone(InstanceId),
    /// The coordinator's Phase 1 promise write completed (`generation`
    /// guards against stale fires after a ballot change).
    PromiseDone(u32),
    /// Flush the outgoing packet batch.
    BatchFlush,
    /// Rate-leveling interval Δ elapsed: compare proposal count with λΔ
    /// and propose a skip.
    RateLevel,
    /// Send a heartbeat to the successor and check the predecessor.
    Liveness,
    /// Re-send proposals that have not been decided in time.
    ProposalRetry,
}

const TAG_WRITE_DONE: u64 = 1;
const TAG_PROMISE_DONE: u64 = 2;
const TAG_BATCH_FLUSH: u64 = 3;
const TAG_RATE_LEVEL: u64 = 4;
const TAG_LIVENESS: u64 = 5;
const TAG_PROPOSAL_RETRY: u64 = 6;

impl RingTimer {
    /// Packs into `(tag, payload)` words for embedding in a host timer.
    pub fn to_words(self) -> (u64, u64) {
        match self {
            RingTimer::WriteDone(inst) => (TAG_WRITE_DONE, inst.raw()),
            RingTimer::PromiseDone(generation) => (TAG_PROMISE_DONE, u64::from(generation)),
            RingTimer::BatchFlush => (TAG_BATCH_FLUSH, 0),
            RingTimer::RateLevel => (TAG_RATE_LEVEL, 0),
            RingTimer::Liveness => (TAG_LIVENESS, 0),
            RingTimer::ProposalRetry => (TAG_PROPOSAL_RETRY, 0),
        }
    }

    /// Reverses [`RingTimer::to_words`]. Returns `None` for unknown tags.
    pub fn from_words(tag: u64, payload: u64) -> Option<Self> {
        match tag {
            TAG_WRITE_DONE => Some(RingTimer::WriteDone(InstanceId::new(payload))),
            TAG_PROMISE_DONE => Some(RingTimer::PromiseDone(payload as u32)),
            TAG_BATCH_FLUSH => Some(RingTimer::BatchFlush),
            TAG_RATE_LEVEL => Some(RingTimer::RateLevel),
            TAG_LIVENESS => Some(RingTimer::Liveness),
            TAG_PROPOSAL_RETRY => Some(RingTimer::ProposalRetry),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip() {
        for t in [
            RingTimer::WriteDone(InstanceId::new(12345)),
            RingTimer::PromiseDone(7),
            RingTimer::BatchFlush,
            RingTimer::RateLevel,
            RingTimer::Liveness,
            RingTimer::ProposalRetry,
        ] {
            let (tag, payload) = t.to_words();
            assert_eq!(RingTimer::from_words(tag, payload), Some(t));
        }
        assert_eq!(RingTimer::from_words(99, 0), None);
    }
}
