//! [`simnet::Process`] adapter for a single-ring deployment.
//!
//! Hosts exactly one [`RingNode`] per simulated node and bridges messages,
//! timers and deliveries. Multi-ring hosts (services, Multi-Ring Paxos
//! learners) live in the `multiring` crate; this adapter serves the
//! atomic-broadcast-only experiments (Figure 3) and protocol tests.

use std::cell::RefCell;
use std::rc::Rc;

use common::ids::{InstanceId, NodeId, RingId};
use common::msg::Msg;
use common::time::SimTime;
use common::value::Value;
use coord::Registry;
use simnet::{Ctx, Process, Timer};

use crate::node::{Output, RingNode};
use crate::options::RingOptions;
use crate::timer::RingTimer;

/// Deliveries observed by one node's learner, shared with the harness.
pub type DeliveryLog = Rc<RefCell<Vec<(InstanceId, Value, SimTime)>>>;

/// A simulated process participating in one ring.
pub struct RingProcess {
    node: RingNode,
    deliveries: DeliveryLog,
    out: Output,
}

impl RingProcess {
    /// Builds the process for `me` in `ring`.
    ///
    /// # Panics
    ///
    /// Panics if the ring is not registered or `me` is not a member —
    /// a harness bug, not a runtime condition.
    pub fn new(me: NodeId, ring: RingId, registry: Registry, opts: RingOptions) -> Self {
        RingProcess {
            node: RingNode::new(me, ring, registry, opts).expect("valid ring config"),
            deliveries: Rc::new(RefCell::new(Vec::new())),
            out: Output::new(),
        }
    }

    /// Handle to the delivery log (clone before adding to the sim).
    pub fn deliveries(&self) -> DeliveryLog {
        self.deliveries.clone()
    }

    /// Mutable access to the protocol state machine (test hooks).
    pub fn node_mut(&mut self) -> &mut RingNode {
        &mut self.node
    }

    /// Shared access to the protocol state machine.
    pub fn node(&self) -> &RingNode {
        &self.node
    }

    /// Proposes `value` from inside the next handler turn. Intended for
    /// harness processes driving load; client processes should send
    /// [`common::msg::ClientMsg::Request`] messages instead.
    pub fn propose(&mut self, value: Value, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.node.propose(value, now, &mut self.out);
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        let ring = self.node.ring();
        for (to, msg) in self.out.sends.drain(..) {
            ctx.send(to, Msg::Ring(ring, msg));
        }
        let now = ctx.now();
        if !self.out.decided.is_empty() {
            let mut log = self.deliveries.borrow_mut();
            for (inst, value) in self.out.decided.drain(..) {
                log.push((inst, value, now));
            }
        }
        for (after, t) in self.out.timers.drain(..) {
            let (a, b) = t.to_words();
            ctx.schedule(after, Timer::with2(TIMER_RING, a, b));
        }
    }
}

/// Timer kind used by [`RingProcess`] (hosts multiplexing several
/// components must use distinct kinds).
pub const TIMER_RING: u32 = 1;

impl Process for RingProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.node.start(now, &mut self.out);
        self.drain(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_>) {
        if let Msg::Ring(ring, m) = msg {
            if ring == self.node.ring() {
                let now = ctx.now();
                self.node.on_msg(from, m, now, &mut self.out);
                self.drain(ctx);
            }
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Ctx<'_>) {
        if timer.kind != TIMER_RING {
            return;
        }
        if let Some(t) = RingTimer::from_words(timer.a, timer.b) {
            let now = ctx.now();
            self.node.on_timer(t, now, &mut self.out);
            self.drain(ctx);
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        self.node.on_crash(now);
        self.deliveries.borrow_mut().clear();
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let _ = self.node.on_restart(now, &mut self.out);
        self.drain(ctx);
    }
}
