//! `amcastd` — run one node of an atomic multicast deployment.
//!
//! ```text
//! # Generate a localhost deployment file (2 partitions × 2 replicas):
//! amcastd generate --partitions 2 --replicas 2 --base-port 7400 > amcast.toml
//!
//! # Run each node in its own process:
//! amcastd run --config amcast.toml --node 0
//! amcastd run --config amcast.toml --node 1
//! ...
//!
//! # Or run every node of the file in one process (demos, smoke tests):
//! amcastd run --config amcast.toml --all
//! ```
//!
//! Each process loads the same deployment document and serves peers and
//! clients on the addresses configured for its node. `--restart` brings a
//! node back through the recovery path (checkpoint fetch from partition
//! peers plus acceptor catch-up, §5.2).
//!
//! With a `coord = "addr,addr,..."` key in `[deployment]`, every process
//! bootstraps from the named `amcoordd` ensemble — the paper's Zookeeper
//! role (§7.1): nodes seed the configuration idempotently, register
//! ephemeral liveness entries on TTL sessions, and learn ring
//! reconfigurations through pushed watch events, so membership changes
//! propagate *across processes*. Without the key each process holds a
//! private in-process registry and reconfiguration only works in `--all`
//! mode (every node in one address space).

use std::process::ExitCode;

use common::ids::NodeId;
use common::transport::WallClock;
use liverun::deployment::{connect_registry, start_node};
use liverun::{Deployment, DeploymentConfig};

fn usage() -> &'static str {
    "usage:
  amcastd generate [--partitions N] [--replicas N] [--base-port P] [--wal-dir DIR]
  amcastd run --config FILE (--node ID [--restart] | --all)"
}

struct Args {
    flags: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut raw = raw.peekable();
        while let Some(arg) = raw.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match raw.peek() {
                    Some(v) if !v.starts_with("--") => Some(raw.next().expect("peeked")),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Args { flags, positional }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    match args.positional.first().map(String::as_str) {
        Some("generate") => {
            let doc = liverun::config::generate_localhost_mrpstore(
                args.num("partitions", 2) as u16,
                args.num("replicas", 2) as u16,
                args.num("base-port", 7400) as u16,
                args.get("wal-dir"),
            );
            print!("{doc}");
            ExitCode::SUCCESS
        }
        Some("run") => run(&args),
        _ => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> ExitCode {
    let Some(path) = args.get("config") else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("amcastd: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match DeploymentConfig::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("amcastd: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.has("all") {
        match Deployment::launch(config) {
            Ok(deployment) => {
                for (node, addr) in deployment.client_addrs() {
                    eprintln!("amcastd: node {node} serving clients on {addr}");
                }
                eprintln!("amcastd: all nodes up; ctrl-c to stop");
                park_forever()
            }
            Err(e) => {
                eprintln!("amcastd: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let Some(node) = args.get("node").and_then(|v| v.parse::<u32>().ok()) else {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        };
        let node = NodeId::new(node);
        let registry = match connect_registry(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("amcastd: {e}");
                return ExitCode::FAILURE;
            }
        };
        match start_node(
            &config,
            registry,
            WallClock::start(),
            node,
            args.has("restart"),
        ) {
            Ok(_handle) => {
                let spec = config.node(node).expect("validated");
                eprintln!(
                    "amcastd: node {node} up — peers {} / clients {}",
                    spec.peer_addr, spec.client_addr
                );
                park_forever()
            }
            Err(e) => {
                eprintln!("amcastd: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

fn park_forever() -> ExitCode {
    loop {
        std::thread::park();
    }
}
