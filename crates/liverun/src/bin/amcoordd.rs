//! `amcoordd` — one replica of the amcoord coordination service.
//!
//! ```text
//! # A 3-replica localhost ensemble (run each line in its own process):
//! amcoordd --id 0 --ring 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 \
//!          --serve 127.0.0.1:7710,127.0.0.1:7711,127.0.0.1:7712
//! amcoordd --id 1 --ring ...same... --serve ...same...
//! amcoordd --id 2 --ring ...same... --serve ...same...
//! ```
//!
//! Every replica is launched with the *same* static address lists (like a
//! Zookeeper server list) and the index of the slot it occupies. `--ring`
//! addresses carry the ensemble's own Ring Paxos traffic; `--serve`
//! addresses accept coordination clients (`amcastd` nodes, tools).
//! `--wal-dir` persists the replica's decided log; `--session-check-ms`
//! tunes the expiry sweep.

use std::process::ExitCode;
use std::time::Duration;

use common::ids::NodeId;
use liverun::coordsvc::{start_coord_server, CoordServerConfig};

fn usage() -> &'static str {
    "usage:
  amcoordd --id N --ring ADDR,ADDR,... --serve ADDR,ADDR,...
           [--wal-dir DIR] [--session-check-ms MS] [--checkpoint-every N]"
}

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn addr_list(raw: &str) -> Option<Vec<std::net::SocketAddr>> {
    raw.split(',')
        .map(|a| a.trim().parse().ok())
        .collect::<Option<Vec<_>>>()
        .filter(|v| !v.is_empty())
}

fn main() -> ExitCode {
    let (Some(id), Some(ring), Some(serve)) = (
        arg("--id").and_then(|v| v.parse::<u32>().ok()),
        arg("--ring").and_then(|v| addr_list(&v)),
        arg("--serve").and_then(|v| addr_list(&v)),
    ) else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let config = CoordServerConfig {
        id: NodeId::new(id),
        ring_addrs: ring,
        client_addrs: serve,
        wal_dir: arg("--wal-dir").map(std::path::PathBuf::from),
        session_check: Duration::from_millis(
            arg("--session-check-ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(500),
        ),
        checkpoint_every: arg("--checkpoint-every")
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
    };
    match start_coord_server(config) {
        Ok(handle) => {
            eprintln!(
                "amcoordd: replica {id} up — serving coordination clients on {}",
                handle.client_addr()
            );
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("amcoordd: {e}");
            ExitCode::FAILURE
        }
    }
}
