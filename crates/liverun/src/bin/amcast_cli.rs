//! `amcast-cli` — command-line client for a live deployment.
//!
//! ```text
//! amcast-cli --config amcast.toml put user:1 alice
//! amcast-cli --config amcast.toml get user:1
//! amcast-cli --config amcast.toml scan user: user;      # range [from, to)
//! amcast-cli --config amcast.toml del user:1
//! amcast-cli --config amcast.toml append 0 "log entry"  # dlog deployments
//! amcast-cli --config amcast.toml read 0 7
//! amcast-cli --config amcast.toml multi-append 0,1 "both logs"
//! ```
//!
//! The client loads the same deployment document the daemons use, routes
//! single-key commands to the owning partition's ring per the published
//! hash scheme, and multicasts scans / multi-appends on the global ring,
//! merging one answer per partition (paper §6.1, §7.2).

use std::process::ExitCode;
use std::time::Duration;

use bytes::Bytes;
use common::ids::ClientId;
use liverun::{ClientOptions, DeploymentConfig, LogClient, StoreClient};

fn usage() -> &'static str {
    "usage: amcast-cli --config FILE [--client ID] COMMAND
commands (mrpstore):
  put KEY VALUE | update KEY VALUE | get KEY | del KEY | scan FROM [TO]
  add KEY [DELTA]   # exactly-once counter increment (protocol v2 sessions)
commands (dlog):
  append LOG VALUE | multi-append LOG,LOG,... VALUE | read LOG POS"
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("amcast-cli: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<String, String> {
    let mut config_path = None;
    // Default to a per-process id so concurrent/successive CLI
    // invocations get distinct reply-routing identities.
    let mut client_id = std::process::id();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => config_path = it.next(),
            "--client" => {
                client_id = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage().to_string())?;
            }
            _ => rest.push(arg),
        }
    }
    let config_path = config_path.ok_or_else(|| usage().to_string())?;
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let config = DeploymentConfig::parse(&text).map_err(|e| e.to_string())?;
    // Aggressive retries are safe under protocol v2: the replicated
    // session table deduplicates re-sent commands.
    let opts = ClientOptions {
        timeout: Duration::from_secs(10),
        retry_every: Duration::from_secs(2),
        ..ClientOptions::default()
    };
    let id = ClientId::new(client_id);

    let cmd = rest.first().cloned().ok_or_else(|| usage().to_string())?;
    let arg = |i: usize| -> Result<&str, String> {
        rest.get(i)
            .map(String::as_str)
            .ok_or_else(|| usage().to_string())
    };
    match cmd.as_str() {
        "put" | "update" | "get" | "del" | "scan" | "add" => {
            let mut store = StoreClient::connect(&config, id, opts).map_err(|e| e.to_string())?;
            match cmd.as_str() {
                "put" => {
                    let r = store
                        .insert(arg(1)?, Bytes::from(arg(2)?.as_bytes().to_vec()))
                        .map_err(|e| e.to_string())?;
                    Ok(format!("{r:?}"))
                }
                "update" => {
                    let r = store
                        .update(arg(1)?, Bytes::from(arg(2)?.as_bytes().to_vec()))
                        .map_err(|e| e.to_string())?;
                    Ok(format!("{r:?}"))
                }
                "get" => match store.read(arg(1)?).map_err(|e| e.to_string())? {
                    Some(v) => Ok(String::from_utf8_lossy(&v).into_owned()),
                    None => Ok("(nil)".to_string()),
                },
                "del" => {
                    let r = store.delete(arg(1)?).map_err(|e| e.to_string())?;
                    Ok(format!("{r:?}"))
                }
                "add" => {
                    // Non-idempotent on purpose: the session layer's
                    // exactly-once dedup is what makes it safe to retry.
                    let delta: u64 = match rest.get(2) {
                        Some(v) => v.parse().map_err(|_| usage().to_string())?,
                        None => 1,
                    };
                    let v = store.add(arg(1)?, delta).map_err(|e| e.to_string())?;
                    Ok(v.to_string())
                }
                _ => {
                    let to = rest.get(2).map(String::as_str).unwrap_or("");
                    let entries = store.scan(arg(1)?, to).map_err(|e| e.to_string())?;
                    let mut out = String::new();
                    for (k, v) in &entries {
                        out.push_str(&format!("{k} = {}\n", String::from_utf8_lossy(v)));
                    }
                    out.push_str(&format!("({} entries)", entries.len()));
                    Ok(out)
                }
            }
        }
        "append" | "multi-append" | "read" => {
            let mut log = LogClient::connect(&config, id, opts).map_err(|e| e.to_string())?;
            match cmd.as_str() {
                "append" => {
                    let l: u16 = arg(1)?.parse().map_err(|_| usage().to_string())?;
                    let pos = log
                        .append(l, Bytes::from(arg(2)?.as_bytes().to_vec()))
                        .map_err(|e| e.to_string())?;
                    Ok(format!("appended at position {pos}"))
                }
                "multi-append" => {
                    let logs: Vec<u16> = arg(1)?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|_| usage().to_string()))
                        .collect::<Result<_, _>>()?;
                    let positions = log
                        .multi_append(logs, Bytes::from(arg(2)?.as_bytes().to_vec()))
                        .map_err(|e| e.to_string())?;
                    Ok(positions
                        .iter()
                        .map(|(l, p)| format!("log {l} @ {p}"))
                        .collect::<Vec<_>>()
                        .join(", "))
                }
                _ => {
                    let l: u16 = arg(1)?.parse().map_err(|_| usage().to_string())?;
                    let pos: u64 = arg(2)?.parse().map_err(|_| usage().to_string())?;
                    match log.read(l, pos).map_err(|e| e.to_string())? {
                        Some(v) => Ok(String::from_utf8_lossy(&v).into_owned()),
                        None => Ok("(nil)".to_string()),
                    }
                }
            }
        }
        _ => Err(usage().to_string()),
    }
}
