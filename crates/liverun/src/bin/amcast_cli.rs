//! `amcast-cli` — command-line client for a live deployment.
//!
//! ```text
//! amcast-cli --config amcast.toml put user:1 alice
//! amcast-cli --config amcast.toml get user:1
//! amcast-cli --config amcast.toml scan user: user;      # range [from, to)
//! amcast-cli --config amcast.toml del user:1
//! amcast-cli --config amcast.toml append 0 "log entry"  # dlog deployments
//! amcast-cli --config amcast.toml read 0 7
//! amcast-cli --config amcast.toml multi-append 0,1 "both logs"
//! ```
//!
//! The client loads the same deployment document the daemons use, routes
//! single-key commands to the owning partition's ring per the published
//! hash scheme, and multicasts scans / multi-appends on the global ring,
//! merging one answer per partition (paper §6.1, §7.2).

use std::process::ExitCode;
use std::time::Duration;

use bytes::Bytes;
use common::ids::ClientId;
use common::obs::ObsSnapshot;
use liverun::{ClientOptions, DeploymentConfig, LogClient, StoreClient};

fn usage() -> &'static str {
    "usage: amcast-cli --config FILE [--client ID] COMMAND
commands (mrpstore):
  put KEY VALUE | update KEY VALUE | get KEY | del KEY | scan FROM [TO]
  add KEY [DELTA]   # exactly-once counter increment (protocol v2 sessions)
commands (dlog):
  append LOG VALUE | multi-append LOG,LOG,... VALUE | read LOG POS
commands (any deployment):
  stats [--watch] [--json | --prometheus]   # per-node metrics snapshot"
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("amcast-cli: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<String, String> {
    let mut config_path = None;
    // Default to a per-process id so concurrent/successive CLI
    // invocations get distinct reply-routing identities.
    let mut client_id = std::process::id();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => config_path = it.next(),
            "--client" => {
                client_id = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage().to_string())?;
            }
            _ => rest.push(arg),
        }
    }
    let config_path = config_path.ok_or_else(|| usage().to_string())?;
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let config = DeploymentConfig::parse(&text).map_err(|e| e.to_string())?;
    // Aggressive retries are safe under protocol v2: the replicated
    // session table deduplicates re-sent commands.
    let opts = ClientOptions {
        timeout: Duration::from_secs(10),
        retry_every: Duration::from_secs(2),
        ..ClientOptions::default()
    };
    let id = ClientId::new(client_id);

    let cmd = rest.first().cloned().ok_or_else(|| usage().to_string())?;
    let arg = |i: usize| -> Result<&str, String> {
        rest.get(i)
            .map(String::as_str)
            .ok_or_else(|| usage().to_string())
    };
    match cmd.as_str() {
        "put" | "update" | "get" | "del" | "scan" | "add" => {
            let mut store = StoreClient::connect(&config, id, opts).map_err(|e| e.to_string())?;
            match cmd.as_str() {
                "put" => {
                    let r = store
                        .insert(arg(1)?, Bytes::from(arg(2)?.as_bytes().to_vec()))
                        .map_err(|e| e.to_string())?;
                    Ok(format!("{r:?}"))
                }
                "update" => {
                    let r = store
                        .update(arg(1)?, Bytes::from(arg(2)?.as_bytes().to_vec()))
                        .map_err(|e| e.to_string())?;
                    Ok(format!("{r:?}"))
                }
                "get" => match store.read(arg(1)?).map_err(|e| e.to_string())? {
                    Some(v) => Ok(String::from_utf8_lossy(&v).into_owned()),
                    None => Ok("(nil)".to_string()),
                },
                "del" => {
                    let r = store.delete(arg(1)?).map_err(|e| e.to_string())?;
                    Ok(format!("{r:?}"))
                }
                "add" => {
                    // Non-idempotent on purpose: the session layer's
                    // exactly-once dedup is what makes it safe to retry.
                    let delta: u64 = match rest.get(2) {
                        Some(v) => v.parse().map_err(|_| usage().to_string())?,
                        None => 1,
                    };
                    let v = store.add(arg(1)?, delta).map_err(|e| e.to_string())?;
                    Ok(v.to_string())
                }
                _ => {
                    let to = rest.get(2).map(String::as_str).unwrap_or("");
                    let entries = store.scan(arg(1)?, to).map_err(|e| e.to_string())?;
                    let mut out = String::new();
                    for (k, v) in &entries {
                        out.push_str(&format!("{k} = {}\n", String::from_utf8_lossy(v)));
                    }
                    out.push_str(&format!("({} entries)", entries.len()));
                    Ok(out)
                }
            }
        }
        "append" | "multi-append" | "read" => {
            let mut log = LogClient::connect(&config, id, opts).map_err(|e| e.to_string())?;
            match cmd.as_str() {
                "append" => {
                    let l: u16 = arg(1)?.parse().map_err(|_| usage().to_string())?;
                    let pos = log
                        .append(l, Bytes::from(arg(2)?.as_bytes().to_vec()))
                        .map_err(|e| e.to_string())?;
                    Ok(format!("appended at position {pos}"))
                }
                "multi-append" => {
                    let logs: Vec<u16> = arg(1)?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|_| usage().to_string()))
                        .collect::<Result<_, _>>()?;
                    let positions = log
                        .multi_append(logs, Bytes::from(arg(2)?.as_bytes().to_vec()))
                        .map_err(|e| e.to_string())?;
                    Ok(positions
                        .iter()
                        .map(|(l, p)| format!("log {l} @ {p}"))
                        .collect::<Vec<_>>()
                        .join(", "))
                }
                _ => {
                    let l: u16 = arg(1)?.parse().map_err(|_| usage().to_string())?;
                    let pos: u64 = arg(2)?.parse().map_err(|_| usage().to_string())?;
                    match log.read(l, pos).map_err(|e| e.to_string())? {
                        Some(v) => Ok(String::from_utf8_lossy(&v).into_owned()),
                        None => Ok("(nil)".to_string()),
                    }
                }
            }
        }
        "stats" => {
            let json = rest.iter().any(|a| a == "--json");
            let prom = rest.iter().any(|a| a == "--prometheus");
            let watch = rest.iter().any(|a| a == "--watch");
            loop {
                let mut out = String::new();
                for (i, node) in config.nodes.iter().enumerate() {
                    match liverun::fetch_stats(node.client_addr, Duration::from_secs(5)) {
                        Ok(snap) if json => {
                            format_stats_json(&mut out, &snap, i + 1 == config.nodes.len())
                        }
                        Ok(snap) if prom => snap.to_prometheus(&mut out),
                        Ok(snap) => format_stats_text(&mut out, &snap),
                        Err(e) => out.push_str(&format!(
                            "node {} ({}): unreachable: {e}\n",
                            node.id, node.client_addr
                        )),
                    }
                }
                if !watch {
                    return Ok(out.trim_end().to_string());
                }
                println!("--- {}\n{out}", config_path);
                std::thread::sleep(Duration::from_secs(2));
            }
        }
        _ => Err(usage().to_string()),
    }
}

/// The pipeline stages in hot-path order. Each histogram records
/// *cumulative* nanoseconds since the command's origin stamp, so the
/// difference between adjacent rows reads as that stage's cost.
const STAGES: &[&str] = &[
    "seal", "propose", "p2send", "decide", "deliver", "execute", "reply",
];

/// Splits a `ring{N}_`-prefixed metric name into `(ring, rest)`.
fn ring_metric(name: &str) -> Option<(u16, &str)> {
    let rest = name.strip_prefix("ring")?;
    let (id, rest) = rest.split_once('_')?;
    Some((id.parse().ok()?, rest))
}

fn format_stats_text(out: &mut String, snap: &ObsSnapshot) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "node {}", snap.node);
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        for (name, v) in &snap.counters {
            if ring_metric(name).is_none() {
                let _ = writeln!(out, "    {name:<28} {v}");
            }
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "  gauges:");
        for (name, v) in &snap.gauges {
            if ring_metric(name).is_none() {
                let _ = writeln!(out, "    {name:<28} {v}");
            }
        }
    }
    // The per-ring breakdown: merge cost and wire traffic attributed to
    // each ring this node touched. A genuinely-routed deployment shows
    // zeros on rings the node's partition is not addressed by.
    let mut rings: std::collections::BTreeMap<u16, std::collections::BTreeMap<&str, i64>> =
        std::collections::BTreeMap::new();
    for (name, v) in &snap.counters {
        if let Some((ring, rest)) = ring_metric(name) {
            rings.entry(ring).or_default().insert(rest, *v as i64);
        }
    }
    for (name, v) in &snap.gauges {
        if let Some((ring, rest)) = ring_metric(name) {
            rings.entry(ring).or_default().insert(rest, *v);
        }
    }
    if !rings.is_empty() {
        let _ = writeln!(
            out,
            "  per-ring:\n    {:<6} {:>12} {:>10} {:>10} {:>14} {:>16}",
            "ring", "delivered", "skips", "lag", "decision_msgs", "decision_payload"
        );
        for (ring, m) in &rings {
            let g = |k: &str| m.get(k).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "    {ring:<6} {:>12} {:>10} {:>10} {:>14} {:>16}",
                g("delivered_cmds"),
                g("merge_skips"),
                g("merge_lag"),
                g("decision_msgs"),
                g("decision_payload_bytes"),
            );
        }
    }
    let staged: Vec<_> = STAGES
        .iter()
        .filter_map(|s| snap.hist(&format!("stage_{s}_nanos")).map(|h| (*s, h)))
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !staged.is_empty() {
        let _ = writeln!(
            out,
            "  stages (cumulative µs since submit):\n    {:<10} {:>8} {:>10} {:>10} {:>10}",
            "stage", "count", "p50", "p95", "p99"
        );
        for (stage, h) in staged {
            let _ = writeln!(
                out,
                "    {stage:<10} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                h.count,
                h.p50 as f64 / 1e3,
                h.p95 as f64 / 1e3,
                h.p99 as f64 / 1e3,
            );
        }
    }
    let other: Vec<_> = snap
        .hists
        .iter()
        .filter(|(name, h)| !name.starts_with("stage_") && h.count > 0)
        .collect();
    if !other.is_empty() {
        let _ = writeln!(
            out,
            "  histograms (µs):\n    {:<28} {:>8} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p95", "p99"
        );
        for (name, h) in other {
            let _ = writeln!(
                out,
                "    {name:<28} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                h.count,
                h.p50 as f64 / 1e3,
                h.p95 as f64 / 1e3,
                h.p99 as f64 / 1e3,
            );
        }
    }
}

fn format_stats_json(out: &mut String, snap: &ObsSnapshot, last: bool) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"node\": {}, \"counters\": {{", snap.node);
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        let sep = if i + 1 < snap.counters.len() {
            ", "
        } else {
            ""
        };
        let _ = write!(out, "\"{name}\": {v}{sep}");
    }
    let _ = write!(out, "}}, \"gauges\": {{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        let sep = if i + 1 < snap.gauges.len() { ", " } else { "" };
        let _ = write!(out, "\"{name}\": {v}{sep}");
    }
    let _ = write!(out, "}}, \"histograms\": {{");
    for (i, (name, h)) in snap.hists.iter().enumerate() {
        let sep = if i + 1 < snap.hists.len() { ", " } else { "" };
        let _ = write!(
            out,
            "\"{name}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{sep}",
            h.count, h.min, h.max, h.p50, h.p95, h.p99
        );
    }
    let _ = writeln!(out, "}}}}{}", if last { "" } else { "," });
}
