//! Whole-deployment orchestration.
//!
//! [`Deployment::launch`] brings up every node of a
//! [`DeploymentConfig`] in this process — each with its own event-loop
//! thread, peer listener and client listener, all talking real TCP — and
//! supports killing and restarting individual nodes. Tests, examples and
//! the loopback benchmark use it; `amcastd` uses [`start_node`] to run a
//! single node of the same configuration in its own process.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::error::{Error, Result};
use common::ids::NodeId;
use common::transport::WallClock;
use coord::{CoordClientOptions, Registry};
use multiring::{HostOptions, ServiceApp, SessionLimits, ShardPlan};
use storage::wal::{SegmentedWal, SyncPolicy};

use crate::batch::BatchOptions;
use crate::config::{DeploymentConfig, ServiceKind};
use crate::durable::DurableApp;
use crate::netem::{Netem, NetemControl};
use crate::node::{spawn_node, AppStack, NodeHandle, NodeSetup};

/// The segment directory holding executor shard `shard`'s
/// delivered-command WAL for `node`: `<wal_dir>/node-<id>/shard-<k>/`.
/// Shard 0 is the whole stream when `executor_shards = 1`.
pub fn shard_wal_dir(wal_dir: &Path, node: NodeId, shard: usize) -> PathBuf {
    wal_dir
        .join(format!("node-{}", node.raw()))
        .join(format!("shard-{shard}"))
}

/// Wraps one (sub-)shard's state in its own rotated, group-committed
/// WAL when the deployment is durable.
fn durable(
    config: &DeploymentConfig,
    node: NodeId,
    shard: usize,
    inner: Box<dyn ServiceApp>,
) -> Result<Box<dyn ServiceApp>> {
    let Some(dir) = &config.wal_dir else {
        return Ok(inner);
    };
    let seg_dir = shard_wal_dir(dir, node, shard);
    // Resume the position counter past everything ever written, so
    // pruning cutoffs and segment names stay monotone across a
    // restart-in-place.
    let start = SegmentedWal::end_pos(&seg_dir)?;
    // Group commit (one fdatasync per delivered batch) makes the
    // paper's synchronous mode affordable on the delivery path;
    // rotation plus checkpoint-cadence pruning bounds the directory.
    let wal = SegmentedWal::open(&seg_dir, SyncPolicy::EveryWrite, config.wal_roll_every)?;
    Ok(Box::new(DurableApp::with_log(inner, Box::new(wal), start)))
}

/// Builds the service stack for one node of `config`: per-sub-shard
/// service states plus the plan routing commands between them, each
/// sub-shard under its own WAL. With `executor_shards = 1` this
/// collapses to the classic inline decorator chain.
fn build_stack(config: &DeploymentConfig, node: NodeId) -> Result<AppStack> {
    let spec = config
        .node(node)
        .ok_or_else(|| Error::Config(format!("node {node} not in configuration")))?;
    let shards = config.resolved_executor_shards() as usize;
    // The reply-cache cap tracks the credit window so a full window
    // always fits.
    let limits = SessionLimits {
        max_cached: (config.client_window as usize * 2).max(256),
        ..SessionLimits::default()
    };
    let (mut inners, plan): (Vec<Box<dyn ServiceApp>>, Arc<dyn ShardPlan>) = match &config.service {
        ServiceKind::MrpStore { .. } => {
            let partition = spec
                .partition
                .ok_or_else(|| Error::Config(format!("mrpstore node {node} needs a partition")))?;
            let scheme = config.initial_scheme().expect("mrpstore deployment");
            // Every sub-shard owns the partition's whole key *predicate*
            // but only ever sees the keys the plan routes to it, so the
            // sub-states stay disjoint. Each knows its own hash class:
            // migration installs fan to every shard and each inserts
            // only the shipped entries it owns.
            let inners = (0..shards)
                .map(|k| {
                    Box::new(mrpstore::KvApp::new(partition, scheme.clone()).with_shard(k, shards))
                        as Box<dyn ServiceApp>
                })
                .collect();
            (inners, Arc::new(mrpstore::KvShardPlan::new(shards)))
        }
        ServiceKind::Dlog { logs } => {
            let all: Vec<u16> = (0..*logs).collect();
            let plan = dlog::DlogShardPlan::new(shards, &all);
            let inners = (0..shards)
                .map(|k| {
                    Box::new(dlog::DlogApp::new(&plan.logs_of_shard(k))) as Box<dyn ServiceApp>
                })
                .collect();
            (inners, Arc::new(plan))
        }
        ServiceKind::Echo => (
            (0..shards)
                .map(|_| Box::new(multiring::EchoApp::new()) as Box<dyn ServiceApp>)
                .collect(),
            Arc::new(multiring::EchoShardPlan::new(shards)),
        ),
    };
    if shards == 1 {
        // Inline: the session table decorates the service on the node
        // loop (protocol v2; v1 traffic passes through untouched), the
        // WAL logs the full delivered stream outside it.
        let inner = inners.pop().expect("one sub-state");
        let sessions = Box::new(multiring::SessionApp::with_limits(inner, limits));
        Ok(AppStack::Inline(durable(config, node, 0, sessions)?))
    } else {
        // Sharded: the session table lives in the executor (admission on
        // the merge thread); each shard stages and fsyncs its own WAL.
        let shards = inners
            .into_iter()
            .enumerate()
            .map(|(k, inner)| durable(config, node, k, inner))
            .collect::<Result<Vec<_>>>()?;
        Ok(AppStack::Sharded {
            shards,
            plan,
            limits,
        })
    }
}

/// Host tuning for live deployments: failure detection on (a dead ring
/// member must be cut out for circulation to resume), rate leveling on
/// (the deterministic merge needs idle rings to emit skips, §4),
/// checkpoints per the config, recovery retries snappy enough for tests.
fn host_options(config: &DeploymentConfig) -> HostOptions {
    use std::time::Duration;
    let mut opts = HostOptions {
        ring: ringpaxos::options::RingOptions {
            heartbeat_interval: Duration::from_millis(25),
            failure_timeout: Duration::from_millis(400),
            proposal_retry: Duration::from_millis(500),
            // Tighter than the paper's 5 ms datacenter Δ: on loopback the
            // merge cadence is the latency floor, and skips are cheap.
            rate_leveling: Some(ringpaxos::options::RateLeveling {
                delta: Duration::from_millis(1),
                lambda: 9000,
            }),
            value_push_bytes: config.value_push_bytes,
            ..ringpaxos::options::RingOptions::default()
        },
        checkpoint_interval: config.checkpoint_interval,
        recovery_retry: Duration::from_millis(100),
        ..HostOptions::default()
    };
    if let Some(geo) = &config.geo {
        // On a shaped WAN the loopback-tuned retries would re-propose
        // and re-fetch while the first attempt is still in flight:
        // give every retry timer room for a few shaped round trips.
        let one_way = geo.max_one_way();
        opts.ring.proposal_retry = opts
            .ring
            .proposal_retry
            .max(one_way * 4 + Duration::from_millis(200));
        opts.ring.failure_timeout = opts
            .ring
            .failure_timeout
            .max(one_way * 2 + Duration::from_millis(300));
        opts.recovery_retry = opts
            .recovery_retry
            .max(one_way * 2 + Duration::from_millis(100));
    }
    opts
}

/// Builds the registry a node of `config` should consult: a connection
/// to the configured `amcoordd` ensemble (seeding it idempotently), or a
/// freshly built in-process registry when the deployment names no
/// coordination service.
///
/// # Errors
///
/// Fails if no `amcoordd` replica is reachable or seeding is rejected.
pub fn connect_registry(config: &DeploymentConfig) -> Result<Registry> {
    if config.coord_addrs.is_empty() {
        return config.build_registry();
    }
    let registry = Registry::connect(
        &config.coord_addrs,
        CoordClientOptions {
            session_ttl: config.session_ttl,
            ..CoordClientOptions::default()
        },
    )?;
    config.seed_registry(&registry)?;
    Ok(registry)
}

/// Starts one node of `config` against `registry` (cold start or
/// recovery restart). `amcastd` calls this once per process; the
/// in-process [`Deployment`] calls it per node with a shared registry.
///
/// # Errors
///
/// Fails if the node is unknown, an address cannot bind, or the WAL
/// cannot open.
pub fn start_node(
    config: &DeploymentConfig,
    registry: Registry,
    clock: WallClock,
    node: NodeId,
    restart: bool,
) -> Result<NodeHandle> {
    start_node_shaped(config, registry, clock, node, restart, None)
}

/// [`start_node`], optionally routing every peer link through a
/// [`Netem`] shaping fabric — the in-process geo-deployment path.
/// (`amcastd` processes always take the unshaped path: netem relays
/// live in the deployment's address space.)
fn start_node_shaped(
    config: &DeploymentConfig,
    registry: Registry,
    clock: WallClock,
    node: NodeId,
    restart: bool,
    netem: Option<&Netem>,
) -> Result<NodeHandle> {
    let spec = config
        .node(node)
        .ok_or_else(|| Error::Config(format!("node {node} not in configuration")))?;
    let batch_opts = BatchOptions {
        max_envelopes: config.batch_max.max(1),
        max_bytes: config.batch_max_bytes.max(1),
        max_delay: config.batch_delay,
    };
    // Under netem a node dials its peers through the per-link relays;
    // pairs the fabric does not shape (and the self entry) stay direct.
    let peer_addrs: HashMap<NodeId, SocketAddr> = config
        .nodes
        .iter()
        .map(|n| {
            let addr = netem
                .and_then(|nt| nt.peer_addr(node, n.id))
                .unwrap_or(n.peer_addr);
            (n.id, addr)
        })
        .collect();
    // Coordination rides the same WAN: a node partitioned from the
    // coordination service's region must lose failure reporting and
    // config reads along with its peer links, or a minority replica
    // could keep evicting healthy members through an out-of-band
    // registry (see `netem::ShapedCoord`).
    let registry = match netem {
        Some(nt) => nt.shaped_registry(node, &registry),
        None => registry,
    };
    let acceptor_of = config
        .rings
        .iter()
        .filter(|r| r.acceptors.contains(&node))
        .map(|r| r.id)
        .collect();
    let member_of = config.member_of(node);
    // One registry per node, shared by every layer of its stack: the
    // same instance rides `host_opts.ring.obs` into the host and rings.
    let obs = common::obs::Obs::for_node(node.raw());
    obs.set_trace_every(config.trace_sample);
    if let Some(nt) = netem {
        // The node's relayed links count their shaping into this
        // registry (visible via `amcast-cli stats`). Attached before the
        // node loop spawns, so the first relayed chunk already counts.
        nt.attach_obs(node, obs.clone());
    }
    // Surface the resolved executor layout: with `executor_shards = 0`
    // the split is sized to the machine, so record what was picked.
    let shards = config.resolved_executor_shards();
    obs.gauge("executor_shards").set(i64::from(shards));
    eprintln!(
        "node {}: executor_shards = {shards}{}",
        node.raw(),
        if config.executor_shards == 0 {
            " (auto: one per core)"
        } else {
            ""
        }
    );
    let mut host_opts = host_options(config);
    host_opts.ring.obs = obs.clone();
    let setup = NodeSetup {
        me: node,
        member_of,
        acceptor_of,
        subscribe_to: config.subscribe_to(node),
        partition: spec.partition,
        registry,
        host_opts,
        batch_opts,
        peer_addrs,
        peer_addr: spec.peer_addr,
        client_addr: spec.client_addr,
        clock,
        client_window: config.client_window,
        credit_min_window: config.credit_min_window,
        credit_backlog_high: config.credit_backlog_high,
        obs,
    };
    spawn_node(setup, build_stack(config, node)?, restart)
}

/// A whole deployment running in this process over localhost TCP.
pub struct Deployment {
    config: DeploymentConfig,
    registry: Registry,
    clock: WallClock,
    nodes: Vec<Option<NodeHandle>>,
    /// The shaping fabric, when the configuration carries a geography.
    netem: Option<Netem>,
}

impl Deployment {
    /// Starts every node of `config`.
    ///
    /// Without a `coord` section every node shares one in-process
    /// registry. With one, each node gets its *own* connection (and TTL
    /// session) to the `amcoordd` ensemble — in-process only in the sense
    /// that the nodes share a pid; their coordination traffic, sessions
    /// and failover flows are exactly the one-process-per-node paths.
    ///
    /// # Errors
    ///
    /// Fails if the configuration is inconsistent or an address cannot
    /// bind.
    pub fn launch(config: DeploymentConfig) -> Result<Self> {
        let registry = connect_registry(&config)?;
        let clock = WallClock::start();
        let netem = match &config.geo {
            Some(_) => Some(Netem::start(&config)?),
            None => None,
        };
        let mut nodes = Vec::new();
        for spec in &config.nodes {
            let node_registry = if config.coord_addrs.is_empty() {
                registry.clone()
            } else {
                connect_registry(&config)?
            };
            nodes.push(Some(start_node_shaped(
                &config,
                node_registry,
                clock,
                spec.id,
                false,
                netem.as_ref(),
            )?));
        }
        Ok(Deployment {
            config,
            registry,
            clock,
            nodes,
            netem,
        })
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// The shared registry (the deployment's "Zookeeper").
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// `(node, client address)` pairs clients connect to.
    pub fn client_addrs(&self) -> Vec<(NodeId, SocketAddr)> {
        self.config
            .nodes
            .iter()
            .map(|n| (n.id, n.client_addr))
            .collect()
    }

    fn index_of(&self, node: NodeId) -> Result<usize> {
        self.config
            .nodes
            .iter()
            .position(|n| n.id == node)
            .ok_or_else(|| Error::Config(format!("node {node} not in configuration")))
    }

    /// Kills `node`: its threads stop, its sockets close, its volatile
    /// state is gone. Peers detect the silence and reconfigure the rings
    /// around it (paper §5.1).
    ///
    /// Every shard WAL lock of the node is verified released before
    /// returning, so a restart-in-place never races the dying node (or
    /// its executor shard threads) for the log directories.
    ///
    /// # Errors
    ///
    /// Fails if the node is unknown, already dead, or a WAL lock
    /// outlives the shutdown (a bug this method exists to surface).
    pub fn kill(&mut self, node: NodeId) -> Result<()> {
        let i = self.index_of(node)?;
        let handle = self.nodes[i]
            .take()
            .ok_or_else(|| Error::Config(format!("node {node} is not running")))?;
        handle.shutdown();
        if let Some(dir) = &self.config.wal_dir {
            let node_dir = dir.join(format!("node-{}", node.raw()));
            let locks: Vec<PathBuf> = std::fs::read_dir(&node_dir)
                .into_iter()
                .flatten()
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().starts_with("shard-"))
                .map(|e| SegmentedWal::dir_lock_path(e.path()))
                .collect();
            let deadline = Instant::now() + Duration::from_secs(2);
            for lock in locks {
                while lock.exists() {
                    if Instant::now() >= deadline {
                        return Err(Error::Storage(format!(
                            "node {node} wal lock {} survived shutdown",
                            lock.display()
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        Ok(())
    }

    /// Restarts a killed `node` through the recovery path: it rejoins its
    /// rings, installs the freshest reachable checkpoint and catches up
    /// from the acceptors (paper §5.2). Against an `amcoordd` ensemble
    /// the node comes back with a fresh connection and session (the old
    /// one died with the node, exactly like a restarted process).
    ///
    /// # Errors
    ///
    /// Fails if the node is unknown or still running.
    pub fn restart(&mut self, node: NodeId) -> Result<()> {
        let i = self.index_of(node)?;
        if self.nodes[i].is_some() {
            return Err(Error::Config(format!("node {node} is still running")));
        }
        let registry = if self.config.coord_addrs.is_empty() {
            self.registry.clone()
        } else {
            connect_registry(&self.config)?
        };
        self.nodes[i] = Some(start_node_shaped(
            &self.config,
            registry,
            self.clock,
            node,
            true,
            self.netem.as_ref(),
        )?);
        Ok(())
    }

    /// Runtime control over the deployment's link shaping, when it has a
    /// geography: scenarios partition, degrade and heal regions mid-run
    /// through this handle.
    pub fn netem(&self) -> Option<NetemControl> {
        self.netem.as_ref().map(Netem::control)
    }

    /// The address a client *in* `region` should use to reach `node` —
    /// a shaped relay when the deployment has a geography, the direct
    /// client address otherwise.
    ///
    /// # Errors
    ///
    /// Fails for unknown nodes or when the relay cannot bind.
    pub fn client_addr_from(&self, region: &str, node: NodeId) -> Result<SocketAddr> {
        let spec = self
            .config
            .node(node)
            .ok_or_else(|| Error::Config(format!("node {node} not in configuration")))?;
        match &self.netem {
            Some(nt) => nt.client_addr(region, node),
            None => Ok(spec.client_addr),
        }
    }

    /// A copy of the configuration as seen by a client *in* `region`:
    /// every client address rewritten to a shaped relay. Hand it to
    /// [`crate::LiveClient::connect`] (or the service facades) to put
    /// the client behind the region's WAN links.
    ///
    /// # Errors
    ///
    /// Fails when a relay cannot bind.
    pub fn config_from(&self, region: &str) -> Result<DeploymentConfig> {
        let mut config = self.config.clone();
        for spec in &mut config.nodes {
            spec.client_addr = match &self.netem {
                Some(nt) => nt.client_addr(region, spec.id)?,
                None => spec.client_addr,
            };
        }
        Ok(config)
    }

    /// True when `node` is currently running.
    pub fn is_running(&self, node: NodeId) -> bool {
        self.index_of(node)
            .map(|i| self.nodes[i].is_some())
            .unwrap_or(false)
    }

    /// Stops every running node (and the shaping fabric, if any).
    pub fn shutdown(mut self) {
        for handle in self.nodes.iter_mut().filter_map(Option::take) {
            handle.shutdown();
        }
        if let Some(netem) = self.netem.take() {
            netem.stop();
        }
    }
}
