//! Whole-deployment orchestration.
//!
//! [`Deployment::launch`] brings up every node of a
//! [`DeploymentConfig`] in this process — each with its own event-loop
//! thread, peer listener and client listener, all talking real TCP — and
//! supports killing and restarting individual nodes. Tests, examples and
//! the loopback benchmark use it; `amcastd` uses [`start_node`] to run a
//! single node of the same configuration in its own process.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use common::error::{Error, Result};
use common::ids::NodeId;
use common::transport::WallClock;
use coord::{CoordClientOptions, Registry};
use multiring::{HostOptions, ServiceApp};
use storage::wal::{lock_path, SyncPolicy, Wal};

use crate::batch::BatchOptions;
use crate::config::{DeploymentConfig, ServiceKind};
use crate::durable::DurableApp;
use crate::node::{spawn_node, NodeHandle, NodeSetup};

/// Builds the service state machine for one node of `config`.
fn build_app(config: &DeploymentConfig, node: NodeId) -> Result<Box<dyn ServiceApp>> {
    let spec = config
        .node(node)
        .ok_or_else(|| Error::Config(format!("node {node} not in configuration")))?;
    let inner: Box<dyn ServiceApp> = match &config.service {
        ServiceKind::MrpStore { partitions } => {
            let partition = spec
                .partition
                .ok_or_else(|| Error::Config(format!("mrpstore node {node} needs a partition")))?;
            Box::new(mrpstore::KvApp::new(
                partition,
                mrpstore::Partitioning::Hash {
                    partitions: *partitions,
                },
            ))
        }
        ServiceKind::Dlog { logs } => {
            let all: Vec<u16> = (0..*logs).collect();
            Box::new(dlog::DlogApp::new(&all))
        }
        ServiceKind::Echo => Box::new(multiring::EchoApp::new()),
    };
    // Every service runs under the exactly-once session table (protocol
    // v2); v1 traffic passes through it untouched. The reply-cache cap
    // tracks the credit window so a full window always fits.
    let sessions = Box::new(multiring::SessionApp::with_limits(
        inner,
        multiring::SessionLimits {
            max_cached: (config.client_window as usize * 2).max(256),
            ..multiring::SessionLimits::default()
        },
    ));
    match &config.wal_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            // Group commit (one fdatasync per delivered batch) makes the
            // paper's synchronous mode affordable on the delivery path.
            let wal = Wal::open(
                dir.join(format!("node-{}.wal", node.raw())),
                SyncPolicy::EveryWrite,
            )?;
            Ok(Box::new(DurableApp::new(sessions, wal)))
        }
        None => Ok(sessions),
    }
}

/// Host tuning for live deployments: failure detection on (a dead ring
/// member must be cut out for circulation to resume), rate leveling on
/// (the deterministic merge needs idle rings to emit skips, §4),
/// checkpoints per the config, recovery retries snappy enough for tests.
fn host_options(config: &DeploymentConfig) -> HostOptions {
    use std::time::Duration;
    HostOptions {
        ring: ringpaxos::options::RingOptions {
            heartbeat_interval: Duration::from_millis(25),
            failure_timeout: Duration::from_millis(400),
            proposal_retry: Duration::from_millis(500),
            // Tighter than the paper's 5 ms datacenter Δ: on loopback the
            // merge cadence is the latency floor, and skips are cheap.
            rate_leveling: Some(ringpaxos::options::RateLeveling {
                delta: Duration::from_millis(1),
                lambda: 9000,
            }),
            ..ringpaxos::options::RingOptions::default()
        },
        checkpoint_interval: config.checkpoint_interval,
        recovery_retry: Duration::from_millis(100),
        ..HostOptions::default()
    }
}

/// Builds the registry a node of `config` should consult: a connection
/// to the configured `amcoordd` ensemble (seeding it idempotently), or a
/// freshly built in-process registry when the deployment names no
/// coordination service.
///
/// # Errors
///
/// Fails if no `amcoordd` replica is reachable or seeding is rejected.
pub fn connect_registry(config: &DeploymentConfig) -> Result<Registry> {
    if config.coord_addrs.is_empty() {
        return config.build_registry();
    }
    let registry = Registry::connect(
        &config.coord_addrs,
        CoordClientOptions {
            session_ttl: config.session_ttl,
            ..CoordClientOptions::default()
        },
    )?;
    config.seed_registry(&registry)?;
    Ok(registry)
}

/// Starts one node of `config` against `registry` (cold start or
/// recovery restart). `amcastd` calls this once per process; the
/// in-process [`Deployment`] calls it per node with a shared registry.
///
/// # Errors
///
/// Fails if the node is unknown, an address cannot bind, or the WAL
/// cannot open.
pub fn start_node(
    config: &DeploymentConfig,
    registry: Registry,
    clock: WallClock,
    node: NodeId,
    restart: bool,
) -> Result<NodeHandle> {
    let spec = config
        .node(node)
        .ok_or_else(|| Error::Config(format!("node {node} not in configuration")))?;
    let batch_opts = BatchOptions {
        max_envelopes: config.batch_max.max(1),
        max_delay: config.batch_delay,
        ..BatchOptions::default()
    };
    let peer_addrs: HashMap<NodeId, SocketAddr> =
        config.nodes.iter().map(|n| (n.id, n.peer_addr)).collect();
    let acceptor_of = config
        .rings
        .iter()
        .filter(|r| r.acceptors.contains(&node))
        .map(|r| r.id)
        .collect();
    let member_of = config.member_of(node);
    let session_ring = Some(config.global_ring()).filter(|r| member_of.contains(r));
    // One registry per node, shared by every layer of its stack: the
    // same instance rides `host_opts.ring.obs` into the host and rings.
    let obs = common::obs::Obs::for_node(node.raw());
    obs.set_trace_every(config.trace_sample);
    let mut host_opts = host_options(config);
    host_opts.ring.obs = obs.clone();
    let setup = NodeSetup {
        me: node,
        member_of,
        acceptor_of,
        subscribe_to: config.subscribe_to(node),
        partition: spec.partition,
        registry,
        host_opts,
        batch_opts,
        peer_addrs,
        peer_addr: spec.peer_addr,
        client_addr: spec.client_addr,
        clock,
        client_window: config.client_window,
        session_ring,
        obs,
    };
    spawn_node(setup, build_app(config, node)?, restart)
}

/// A whole deployment running in this process over localhost TCP.
pub struct Deployment {
    config: DeploymentConfig,
    registry: Registry,
    clock: WallClock,
    nodes: Vec<Option<NodeHandle>>,
}

impl Deployment {
    /// Starts every node of `config`.
    ///
    /// Without a `coord` section every node shares one in-process
    /// registry. With one, each node gets its *own* connection (and TTL
    /// session) to the `amcoordd` ensemble — in-process only in the sense
    /// that the nodes share a pid; their coordination traffic, sessions
    /// and failover flows are exactly the one-process-per-node paths.
    ///
    /// # Errors
    ///
    /// Fails if the configuration is inconsistent or an address cannot
    /// bind.
    pub fn launch(config: DeploymentConfig) -> Result<Self> {
        let registry = connect_registry(&config)?;
        let clock = WallClock::start();
        let mut nodes = Vec::new();
        for spec in &config.nodes {
            let node_registry = if config.coord_addrs.is_empty() {
                registry.clone()
            } else {
                connect_registry(&config)?
            };
            nodes.push(Some(start_node(
                &config,
                node_registry,
                clock,
                spec.id,
                false,
            )?));
        }
        Ok(Deployment {
            config,
            registry,
            clock,
            nodes,
        })
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// The shared registry (the deployment's "Zookeeper").
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// `(node, client address)` pairs clients connect to.
    pub fn client_addrs(&self) -> Vec<(NodeId, SocketAddr)> {
        self.config
            .nodes
            .iter()
            .map(|n| (n.id, n.client_addr))
            .collect()
    }

    fn index_of(&self, node: NodeId) -> Result<usize> {
        self.config
            .nodes
            .iter()
            .position(|n| n.id == node)
            .ok_or_else(|| Error::Config(format!("node {node} not in configuration")))
    }

    /// Kills `node`: its threads stop, its sockets close, its volatile
    /// state is gone. Peers detect the silence and reconfigure the rings
    /// around it (paper §5.1).
    ///
    /// The node's WAL lock is verified released before returning, so a
    /// restart-in-place never races the dying node for the log file.
    ///
    /// # Errors
    ///
    /// Fails if the node is unknown, already dead, or its WAL lock
    /// outlives the shutdown (a bug this method exists to surface).
    pub fn kill(&mut self, node: NodeId) -> Result<()> {
        let i = self.index_of(node)?;
        let handle = self.nodes[i]
            .take()
            .ok_or_else(|| Error::Config(format!("node {node} is not running")))?;
        handle.shutdown();
        if let Some(dir) = &self.config.wal_dir {
            let lock = lock_path(dir.join(format!("node-{}.wal", node.raw())));
            let deadline = Instant::now() + Duration::from_secs(2);
            while lock.exists() {
                if Instant::now() >= deadline {
                    return Err(Error::Storage(format!(
                        "node {node} wal lock {} survived shutdown",
                        lock.display()
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        Ok(())
    }

    /// Restarts a killed `node` through the recovery path: it rejoins its
    /// rings, installs the freshest reachable checkpoint and catches up
    /// from the acceptors (paper §5.2). Against an `amcoordd` ensemble
    /// the node comes back with a fresh connection and session (the old
    /// one died with the node, exactly like a restarted process).
    ///
    /// # Errors
    ///
    /// Fails if the node is unknown or still running.
    pub fn restart(&mut self, node: NodeId) -> Result<()> {
        let i = self.index_of(node)?;
        if self.nodes[i].is_some() {
            return Err(Error::Config(format!("node {node} is still running")));
        }
        let registry = if self.config.coord_addrs.is_empty() {
            self.registry.clone()
        } else {
            connect_registry(&self.config)?
        };
        self.nodes[i] = Some(start_node(&self.config, registry, self.clock, node, true)?);
        Ok(())
    }

    /// True when `node` is currently running.
    pub fn is_running(&self, node: NodeId) -> bool {
        self.index_of(node)
            .map(|i| self.nodes[i].is_some())
            .unwrap_or(false)
    }

    /// Stops every running node.
    pub fn shutdown(mut self) {
        for handle in self.nodes.iter_mut().filter_map(Option::take) {
            handle.shutdown();
        }
    }
}
