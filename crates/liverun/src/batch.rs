//! Proposer-side request batching.
//!
//! Every client command costs one consensus instance unless the proposer
//! groups commands — the paper leans on exactly this ("different types of
//! messages for several consensus instances are often grouped into bigger
//! packets", §4). The [`Batcher`] holds incoming envelopes per ring and
//! releases a batch when it reaches `max_envelopes`, `max_bytes` of
//! command payload, or when the oldest envelope has waited `max_delay`.
//! One released batch becomes **one** proposed value
//! ([`common::value::Payload::Batch`]).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use common::ids::RingId;
use common::value::Envelope;

/// Batching limits.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Flush after this many envelopes.
    pub max_envelopes: usize,
    /// Flush once the batch holds this many payload bytes.
    pub max_bytes: usize,
    /// Flush a non-empty batch after this long regardless of size.
    pub max_delay: Duration,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            max_envelopes: 64,
            max_bytes: 32 * 1024,
            max_delay: Duration::from_millis(2),
        }
    }
}

impl BatchOptions {
    /// Batching disabled: every envelope flushes immediately.
    pub fn disabled() -> Self {
        BatchOptions {
            max_envelopes: 1,
            max_bytes: 0,
            max_delay: Duration::ZERO,
        }
    }
}

struct Pending {
    envelopes: Vec<Envelope>,
    bytes: usize,
    opened_at: Instant,
}

/// Per-ring envelope accumulator.
pub struct Batcher {
    opts: BatchOptions,
    pending: BTreeMap<RingId, Pending>,
}

impl Batcher {
    /// A batcher with `opts` limits.
    pub fn new(opts: BatchOptions) -> Self {
        Batcher {
            opts,
            pending: BTreeMap::new(),
        }
    }

    /// Adds an envelope bound for `ring`. Returns a completed batch if
    /// this push sealed one.
    ///
    /// Batch sizing adapts to payload size rather than envelope count
    /// alone: an envelope that would carry the open batch past
    /// `max_bytes` seals that batch *first* and starts the next one, so
    /// every proposed value stays under `max_bytes` — a multi-KiB
    /// command never glues onto an almost-full batch to produce an
    /// oversized consensus value. An envelope that alone reaches
    /// `max_bytes` proposes as a batch of one.
    pub fn push(&mut self, ring: RingId, env: Envelope, now: Instant) -> Option<Vec<Envelope>> {
        let entry = self.pending.entry(ring).or_insert_with(|| Pending {
            envelopes: Vec::new(),
            bytes: 0,
            opened_at: now,
        });
        if entry.envelopes.is_empty() {
            entry.opened_at = now;
        }
        let bytes = env.cmd.len();
        if !entry.envelopes.is_empty() && entry.bytes + bytes > self.opts.max_bytes {
            let done = std::mem::take(&mut entry.envelopes);
            entry.bytes = bytes;
            entry.opened_at = now;
            entry.envelopes.push(env);
            return Some(done);
        }
        entry.bytes += bytes;
        entry.envelopes.push(env);
        if entry.envelopes.len() >= self.opts.max_envelopes || entry.bytes >= self.opts.max_bytes {
            let done = self.pending.remove(&ring).expect("just inserted");
            return Some(done.envelopes);
        }
        None
    }

    /// Removes and returns every batch whose age reached `max_delay`.
    pub fn take_due(&mut self, now: Instant) -> Vec<(RingId, Vec<Envelope>)> {
        let due: Vec<RingId> = self
            .pending
            .iter()
            .filter(|(_, p)| {
                !p.envelopes.is_empty() && now.duration_since(p.opened_at) >= self.opts.max_delay
            })
            .map(|(r, _)| *r)
            .collect();
        due.into_iter()
            .map(|r| {
                let p = self.pending.remove(&r).expect("listed");
                (r, p.envelopes)
            })
            .collect()
    }

    /// Removes and returns every pending batch regardless of age.
    pub fn take_all(&mut self) -> Vec<(RingId, Vec<Envelope>)> {
        std::mem::take(&mut self.pending)
            .into_iter()
            .filter(|(_, p)| !p.envelopes.is_empty())
            .map(|(r, p)| (r, p.envelopes))
            .collect()
    }

    /// When the earliest pending batch becomes due, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.pending
            .values()
            .filter(|p| !p.envelopes.is_empty())
            .map(|p| p.opened_at + self.opts.max_delay)
            .min()
    }

    /// Number of envelopes currently pending across all rings.
    pub fn pending_len(&self) -> usize {
        self.pending.values().map(|p| p.envelopes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use common::ids::{ClientId, NodeId, RequestId};

    fn env(req: u64, size: usize) -> Envelope {
        Envelope::v1(
            ClientId::new(1),
            RequestId::new(req),
            NodeId::new(9),
            Bytes::from(vec![0u8; size]),
        )
    }

    #[test]
    fn flushes_on_count() {
        let mut b = Batcher::new(BatchOptions {
            max_envelopes: 3,
            max_bytes: usize::MAX,
            max_delay: Duration::from_secs(10),
        });
        let now = Instant::now();
        let r = RingId::new(0);
        assert!(b.push(r, env(1, 10), now).is_none());
        assert!(b.push(r, env(2, 10), now).is_none());
        let batch = b.push(r, env(3, 10), now).expect("third fills the batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].req.raw(), 1, "arrival order preserved");
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn flushes_on_bytes() {
        let mut b = Batcher::new(BatchOptions {
            max_envelopes: 1000,
            max_bytes: 100,
            max_delay: Duration::from_secs(10),
        });
        let now = Instant::now();
        let r = RingId::new(1);
        assert!(b.push(r, env(1, 60), now).is_none());
        let sealed = b.push(r, env(2, 60), now).expect("second push overflows");
        // The overflowing envelope seals the open batch and starts the
        // next one — each proposed value stays under max_bytes.
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].req.raw(), 1);
        assert_eq!(b.pending_len(), 1, "overflowing envelope still pending");
    }

    #[test]
    fn oversized_command_proposes_alone() {
        let mut b = Batcher::new(BatchOptions {
            max_envelopes: 1000,
            max_bytes: 100,
            max_delay: Duration::from_secs(10),
        });
        let now = Instant::now();
        let r = RingId::new(1);
        let batch = b.push(r, env(1, 250), now).expect("immediate flush");
        assert_eq!(batch.len(), 1);
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn large_command_never_glues_onto_a_full_batch() {
        let mut b = Batcher::new(BatchOptions {
            max_envelopes: 1000,
            max_bytes: 100,
            max_delay: Duration::from_secs(10),
        });
        let now = Instant::now();
        let r = RingId::new(2);
        assert!(b.push(r, env(1, 30), now).is_none());
        assert!(b.push(r, env(2, 30), now).is_none());
        // 95 would push the open batch to 155 bytes: it seals the open
        // batch instead and immediately fills the next one by itself.
        let sealed = b.push(r, env(3, 95), now).expect("open batch sealed");
        assert_eq!(sealed.len(), 2);
        let solo = b.push(r, env(4, 10), now);
        assert!(solo.is_some(), "95-byte batch sealed by the next push");
        assert_eq!(solo.unwrap().len(), 1);
    }

    #[test]
    fn flushes_on_age() {
        let mut b = Batcher::new(BatchOptions {
            max_envelopes: 1000,
            max_bytes: usize::MAX,
            max_delay: Duration::from_millis(5),
        });
        let t0 = Instant::now();
        let r0 = RingId::new(0);
        let r1 = RingId::new(1);
        b.push(r0, env(1, 1), t0);
        b.push(r1, env(2, 1), t0 + Duration::from_millis(3));
        assert!(b.take_due(t0 + Duration::from_millis(1)).is_empty());
        let due = b.take_due(t0 + Duration::from_millis(6));
        assert_eq!(due.len(), 1, "only ring 0 aged out");
        assert_eq!(due[0].0, r0);
        assert_eq!(b.pending_len(), 1);
        assert!(b.next_deadline().is_some());
        assert_eq!(b.take_all().len(), 1);
        assert!(b.next_deadline().is_none());
    }

    #[test]
    fn disabled_batching_flushes_every_push() {
        let mut b = Batcher::new(BatchOptions::disabled());
        let batch = b
            .push(RingId::new(0), env(1, 0), Instant::now())
            .expect("immediate flush");
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn rings_batch_independently() {
        let mut b = Batcher::new(BatchOptions {
            max_envelopes: 2,
            max_bytes: usize::MAX,
            max_delay: Duration::from_secs(1),
        });
        let now = Instant::now();
        assert!(b.push(RingId::new(0), env(1, 1), now).is_none());
        assert!(b.push(RingId::new(1), env(2, 1), now).is_none());
        assert!(b.push(RingId::new(0), env(3, 1), now).is_some());
        assert_eq!(b.pending_len(), 1, "ring 1 still open");
    }
}
