//! `liverun` — the live deployment runtime.
//!
//! Everything below `liverun` in this workspace is sans-IO: the full
//! Multi-Ring Paxos stack ([`multiring::MultiRingHost`] with merge,
//! checkpoints, trimming and recovery) emits effects into buffers and is
//! normally driven by the discrete-event simulator. This crate is the
//! layer that turns it into a *system you can point clients at*: it hosts
//! the same state machines on OS threads over real TCP sockets, serving
//! MRP-Store and dLog to network clients — the deployment shape of the
//! paper's evaluation (§7, §8), where services run as real processes
//! across machines rather than as protocol traces.
//!
//! ```text
//!  amcast-cli ──TCP──► [client listener]──┐
//!                                         │ events
//!  peer amcastd ─TCP─► [peer listener] ───┤
//!                                         ▼
//!                          ┌─────────────────────────────┐
//!                          │ node loop (one OS thread)   │
//!                          │  Batcher → MultiRingHost    │
//!                          │  TimerHeap   │  WAL / ckpt  │
//!                          └──────┬───────┴──────────────┘
//!                                 │ sends / replies
//!                 peers ◄─TCP─────┴────TCP─► clients
//! ```
//!
//! * [`config`] — the deployment document `amcastd` reads; one file
//!   describes the whole cluster.
//! * [`node`] — the per-node event loop driving a [`multiring::MultiRingHost`]
//!   through [`simnet::Ctx::external`], plus listeners and readers.
//! * [`batch`] — proposer-side request batching: many client commands
//!   share one consensus value ([`common::value::Payload::Batch`]).
//! * [`deployment`] — launch/kill/restart whole localhost deployments
//!   in-process (tests, examples, benchmarks); wraps every service in
//!   the [`multiring::SessionApp`] exactly-once session table.
//! * [`client`] / [`service`] — the protocol-v2 network client
//!   (pipelined sliding window, replicated exactly-once sessions,
//!   failover re-send that cannot re-execute) and the typed MRP-Store /
//!   dLog facades on top.
//! * [`durable`] — the WAL decorator recording every delivered command
//!   through [`storage::wal::Wal`].
//! * [`netem`] — userspace per-link WAN shaping for geo deployments:
//!   delay/jitter/bandwidth/loss relays on every peer link, runtime
//!   region partitions, driven by `[[region]]` config sections.

pub mod batch;
pub mod client;
pub mod config;
pub mod coordsvc;
pub mod deployment;
pub mod durable;
pub mod netem;
pub mod node;
pub mod service;

pub use batch::{BatchOptions, Batcher};
pub use client::{fetch_stats, ClientOptions, Completion, LiveClient};
pub use config::{DeploymentConfig, GeoSpec, ServiceKind};
pub use coordsvc::{start_coord_server, CoordServerConfig, CoordServerHandle};
pub use deployment::{connect_registry, shard_wal_dir, start_node, Deployment};
pub use durable::{DurableApp, WalRecord};
pub use netem::{Netem, NetemControl};
pub use node::{client_node_id, client_of_node, NodeHandle, CLIENT_NODE_BASE};
pub use service::{LogClient, StoreClient};
