//! Deployment configuration: what `amcastd` reads off disk.
//!
//! A deployment file is a TOML-subset document (hand-parsed, so the
//! offline build needs no external parser) describing the whole cluster:
//! every node with its peer/client addresses, every ring with members and
//! acceptors, every service partition, and the service to replicate. Each
//! `amcastd` process loads the same file and starts the one node named on
//! its command line — mirroring how the paper keeps the configuration in
//! Zookeeper, equally visible to every process.
//!
//! ```toml
//! [deployment]
//! service = "mrpstore"
//! partitions = 2
//! batch_max = 64
//! batch_delay_ms = 2
//!
//! [[node]]
//! id = 0
//! peer_addr = "127.0.0.1:7400"
//! client_addr = "127.0.0.1:7500"
//! partition = 0
//!
//! [[ring]]
//! id = 0
//! members = [0, 1]
//! acceptors = [0, 1]
//!
//! [[partition]]
//! id = 0
//! rings = [0, 2]
//! replicas = [0, 1]
//! ```

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use common::error::{Error, Result};
use common::geo::{Region, WanProfile};
use common::ids::{NodeId, PartitionId, RingId};
use common::transport::LinkPolicy;
use coord::{PartitionInfo, Registry, RingConfig};
use mrpstore::Partitioning;

/// Which replicated service the deployment runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceKind {
    /// MRP-Store with `partitions` hash partitions (rings `0..partitions`
    /// carry single-partition commands; ring `partitions` is the global
    /// ring for scans).
    MrpStore {
        /// Number of hash partitions.
        partitions: u16,
    },
    /// dLog with `logs` shared logs (ring per log plus one multi-append
    /// ring, same layout convention).
    Dlog {
        /// Number of logs.
        logs: u16,
    },
    /// The paper's dummy service (raw ordering performance).
    Echo,
}

/// One node of the deployment.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// The node's id.
    pub id: NodeId,
    /// Address peers connect to (ring + recovery traffic).
    pub peer_addr: SocketAddr,
    /// Address clients connect to.
    pub client_addr: SocketAddr,
    /// The service partition this node's replica belongs to, if any.
    pub partition: Option<PartitionId>,
}

/// One ring definition.
#[derive(Clone, Debug)]
pub struct RingSpec {
    /// The ring's id (also its multicast group id).
    pub id: RingId,
    /// Members in ring order.
    pub members: Vec<NodeId>,
    /// The subset acting as acceptors.
    pub acceptors: Vec<NodeId>,
}

/// One service partition definition.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// The partition's id.
    pub id: PartitionId,
    /// Rings every replica of the partition subscribes to.
    pub rings: Vec<RingId>,
    /// The replicas.
    pub replicas: Vec<NodeId>,
}

/// One named region of a geo deployment and the nodes placed in it.
#[derive(Clone, Debug)]
pub struct RegionSpec {
    /// The region's name (an AWS name resolves its links through the
    /// deployment's WAN profile; any other name needs `[[link]]` entries).
    pub name: String,
    /// The nodes living in this region.
    pub nodes: Vec<NodeId>,
}

/// The geography of a deployment: named regions, resolved per-link
/// policies and the profile they came from. Present when the document
/// declares `[[region]]` sections; [`crate::Deployment`] then shapes
/// every inter-node TCP link through `liverun::netem`.
#[derive(Clone, Debug)]
pub struct GeoSpec {
    /// The WAN profile links resolve through (`wan_profile`).
    pub profile: String,
    /// Percent applied to every link's one-way delay
    /// (`wan_delay_scale_pct`, default 100): CI smoke runs keep the WAN's
    /// *shape* at a fraction of its wall-clock cost.
    pub delay_scale_pct: u64,
    /// The declared regions.
    pub regions: Vec<RegionSpec>,
    /// The region hosting the coordination service (`coord_region`,
    /// default: the first declared region). Nodes partitioned from it
    /// lose coordination access — the paper's ZooKeeper becomes
    /// unreachable with the WAN, so a minority-partitioned replica
    /// cannot keep evicting healthy members.
    pub coord_region: String,
    /// Resolved directed-link policies, delay scaling applied.
    links: BTreeMap<(String, String), LinkPolicy>,
}

impl GeoSpec {
    /// The region `node` was placed in.
    pub fn region_of(&self, node: NodeId) -> Option<&str> {
        self.regions
            .iter()
            .find(|r| r.nodes.contains(&node))
            .map(|r| r.name.as_str())
    }

    /// The resolved policy for the directed link `from` → `to`
    /// (unshaped for pairs outside the declared world).
    pub fn policy(&self, from: &str, to: &str) -> LinkPolicy {
        self.links
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or_else(LinkPolicy::unshaped)
    }

    /// All resolved directed links.
    pub fn links(&self) -> impl Iterator<Item = (&str, &str, LinkPolicy)> {
        self.links
            .iter()
            .map(|((a, b), p)| (a.as_str(), b.as_str(), *p))
    }

    /// The largest one-way delay of any link — what proposal/retry
    /// timers must out-wait on this geography.
    pub fn max_one_way(&self) -> Duration {
        self.links
            .values()
            .map(|p| p.delay)
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// A full deployment description.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// The replicated service.
    pub service: ServiceKind,
    /// Maximum client commands batched into one consensus value.
    pub batch_max: usize,
    /// Maximum command-payload bytes per consensus value
    /// (`batch_max_bytes`): a batch seals before an envelope would carry
    /// it past this size, so batch sizing adapts to payload size rather
    /// than count alone.
    pub batch_max_bytes: usize,
    /// Maximum time a non-empty batch waits before proposing.
    pub batch_delay: Duration,
    /// Credit window granted to protocol-v2 clients at the handshake
    /// (`client_window`, requests in flight per client). Also the ceiling
    /// the credit controller expands back to after overload clears.
    pub client_window: u32,
    /// Floor the credit controller never shrinks a session window below
    /// (`credit_min_window`).
    pub credit_min_window: u32,
    /// Proposal backlog (envelopes queued in the batcher plus the event
    /// queue) above which credit halves (`credit_backlog_high`); 0 lets
    /// the node derive a default from `batch_max`.
    pub credit_backlog_high: u32,
    /// Payload size at or above which a non-coordinating proposer eagerly
    /// pushes a value to every ring member concurrently with ordering
    /// (`value_push_bytes`); 0 disables eager dissemination.
    pub value_push_bytes: usize,
    /// Replica checkpoint cadence (`None` disables checkpointing).
    pub checkpoint_interval: Option<Duration>,
    /// Directory for per-node write-ahead logs (`None` disables WALs).
    pub wal_dir: Option<PathBuf>,
    /// The `amcoordd` ensemble serving this deployment's configuration
    /// (`coord = "addr,addr,..."`). Empty means in-process registry: every
    /// node must then share one address space (`--all` / [`crate::Deployment`]).
    pub coord_addrs: Vec<SocketAddr>,
    /// TTL for each node's coordination session (`session_ttl_ms`).
    pub session_ttl: Duration,
    /// Stage-latency trace sampling: stamp one in `trace_sample`
    /// submitted commands with an origin timestamp (`trace_sample`,
    /// 0 disables tracing entirely).
    pub trace_sample: u64,
    /// Executor shards per node (`executor_shards`): 1 executes
    /// delivered commands inline on the merge thread (the classic
    /// stack); >1 splits each node's service state across that many
    /// worker threads behind the deterministic merge; 0 sizes the
    /// split to the machine (one shard per available core) — resolve
    /// through [`DeploymentConfig::resolved_executor_shards`].
    pub executor_shards: u32,
    /// MRP-Store key placement (`partitioning`): `"hash"` (default) or
    /// `"range"`, which seeds an evenly split key-range table — the
    /// scheme live range migration requires.
    pub range_partitioned: bool,
    /// Records per delivered-command WAL segment before it rolls
    /// (`wal_roll_every`); checkpoint-cadence pruning reclaims whole
    /// segments below the durable cut.
    pub wal_roll_every: u64,
    /// The deployment's geography, when `[[region]]` sections are
    /// present: in-process deployments then shape every peer link.
    pub geo: Option<GeoSpec>,
    /// The nodes.
    pub nodes: Vec<NodeSpec>,
    /// The rings.
    pub rings: Vec<RingSpec>,
    /// The service partitions.
    pub partitions: Vec<PartitionSpec>,
}

impl DeploymentConfig {
    /// Parses a deployment document.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Config`] on syntax or consistency problems.
    pub fn parse(text: &str) -> Result<Self> {
        let doc = Document::parse(text)?;
        let deployment = doc
            .singleton("deployment")
            .ok_or_else(|| Error::Config("missing [deployment] section".into()))?;

        let service = match deployment.str_or("service", "echo").as_str() {
            "mrpstore" => ServiceKind::MrpStore {
                partitions: deployment.int_or("partitions", 1)? as u16,
            },
            "dlog" => ServiceKind::Dlog {
                // `logs = N` is the documented key; fall back to
                // `partitions` which older configs (mis)used.
                logs: match deployment.values.get("logs") {
                    Some(_) => deployment.int_or("logs", 1)? as u16,
                    None => deployment.int_or("partitions", 1)? as u16,
                },
            },
            "echo" => ServiceKind::Echo,
            other => {
                return Err(Error::Config(format!("unknown service {other:?}")));
            }
        };

        let mut nodes = Vec::new();
        for t in doc.list("node") {
            nodes.push(NodeSpec {
                id: NodeId::new(t.int("id")? as u32),
                peer_addr: t.addr("peer_addr")?,
                client_addr: t.addr("client_addr")?,
                partition: match t.values.get("partition") {
                    Some(_) => Some(PartitionId::new(t.int("partition")? as u16)),
                    None => None,
                },
            });
        }
        let mut rings = Vec::new();
        for t in doc.list("ring") {
            rings.push(RingSpec {
                id: RingId::new(t.int("id")? as u16),
                members: t.ids("members")?,
                acceptors: t.ids("acceptors")?,
            });
        }
        let mut partitions = Vec::new();
        for t in doc.list("partition") {
            partitions.push(PartitionSpec {
                id: PartitionId::new(t.int("id")? as u16),
                rings: t
                    .ints("rings")?
                    .into_iter()
                    .map(|v| RingId::new(v as u16))
                    .collect(),
                replicas: t.ids("replicas")?,
            });
        }

        let mut regions = Vec::new();
        for t in doc.list("region") {
            regions.push(RegionSpec {
                name: t.str_req("name")?,
                nodes: t.ids("nodes")?,
            });
        }
        let geo = if regions.is_empty() {
            None
        } else {
            let profile_name = deployment.str_or("wan_profile", "ec2-2014");
            let profile = WanProfile::by_name(&profile_name)
                .ok_or_else(|| Error::Config(format!("unknown wan_profile {profile_name:?}")))?;
            let delay_scale_pct = deployment.int_or("wan_delay_scale_pct", 100)?;
            let mut links = BTreeMap::new();
            for a in &regions {
                for b in &regions {
                    let base = match (Region::from_name(&a.name), Region::from_name(&b.name)) {
                        (Some(ra), Some(rb)) => profile.policy(ra, rb),
                        _ if a.name == b.name => LinkPolicy {
                            delay: profile.intra_rtt / 2,
                            jitter_pct: profile.jitter_pct,
                            bytes_per_sec: profile.intra_bytes_per_sec,
                            loss_pct: 0,
                            blocked: false,
                        },
                        // Non-AWS region names get their inter-region
                        // links from [[link]] overrides below.
                        _ => LinkPolicy::unshaped(),
                    };
                    links.insert((a.name.clone(), b.name.clone()), base);
                }
            }
            for t in doc.list("link") {
                let from = t.str_req("from")?;
                let to = t.str_req("to")?;
                for name in [&from, &to] {
                    if !regions.iter().any(|r| &r.name == name) {
                        return Err(Error::Config(format!(
                            "[[link]] references undeclared region {name:?}"
                        )));
                    }
                }
                let policy = LinkPolicy {
                    delay: Duration::from_millis(t.int("rtt_ms")?) / 2,
                    jitter_pct: t.int_or("jitter_pct", profile.jitter_pct as u64)? as u32,
                    bytes_per_sec: t.int_or("mbps", 0)? * 1_000_000 / 8,
                    loss_pct: t.int_or("loss_pct", 0)? as u32,
                    blocked: false,
                };
                // An RTT is a property of the pair: override both
                // directed links.
                links.insert((from.clone(), to.clone()), policy);
                links.insert((to, from), policy);
            }
            for p in links.values_mut() {
                *p = p.scale_delay(delay_scale_pct);
            }
            let coord_region = deployment.str_or("coord_region", &regions[0].name);
            if !regions.iter().any(|r| r.name == coord_region) {
                return Err(Error::Config(format!(
                    "coord_region {coord_region:?} is not a declared region"
                )));
            }
            Some(GeoSpec {
                profile: profile_name,
                delay_scale_pct,
                regions,
                coord_region,
                links,
            })
        };

        let coord_addrs = match deployment.values.get("coord") {
            None => Vec::new(),
            Some(v) => {
                let raw = v.as_str();
                let mut addrs = Vec::new();
                for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
                    addrs.push(
                        part.trim()
                            .parse()
                            .map_err(|_| Error::Config(format!("bad coord address {part:?}")))?,
                    );
                }
                addrs
            }
        };
        let config = DeploymentConfig {
            service,
            batch_max: deployment.int_or("batch_max", 64)? as usize,
            batch_max_bytes: (deployment.int_or("batch_max_bytes", 32 * 1024)? as usize).max(1),
            batch_delay: Duration::from_millis(deployment.int_or("batch_delay_ms", 2)?),
            client_window: deployment.int_or("client_window", 64)? as u32,
            credit_min_window: (deployment.int_or("credit_min_window", 1)? as u32).max(1),
            credit_backlog_high: deployment.int_or("credit_backlog_high", 0)? as u32,
            value_push_bytes: deployment.int_or("value_push_bytes", 16 * 1024)? as usize,
            checkpoint_interval: {
                let ms = deployment.int_or("checkpoint_ms", 0)?;
                (ms > 0).then(|| Duration::from_millis(ms))
            },
            wal_dir: deployment
                .values
                .get("wal_dir")
                .map(|v| PathBuf::from(v.as_str())),
            coord_addrs,
            session_ttl: Duration::from_millis(deployment.int_or("session_ttl_ms", 3000)?),
            trace_sample: deployment.int_or("trace_sample", 0)?,
            executor_shards: deployment.int_or("executor_shards", 1)? as u32,
            range_partitioned: match deployment.str_or("partitioning", "hash").as_str() {
                "hash" => false,
                "range" => true,
                other => {
                    return Err(Error::Config(format!("unknown partitioning {other:?}")));
                }
            },
            wal_roll_every: (deployment.int_or("wal_roll_every", 4096)?).max(1),
            geo,
            nodes,
            rings,
            partitions,
        };
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(Error::Config("no [[node]] sections".into()));
        }
        if self.rings.is_empty() {
            return Err(Error::Config("no [[ring]] sections".into()));
        }
        let known = |n: &NodeId| self.nodes.iter().any(|s| s.id == *n);
        for r in &self.rings {
            for m in r.members.iter().chain(&r.acceptors) {
                if !known(m) {
                    return Err(Error::Config(format!(
                        "ring {} references unknown node {m}",
                        r.id
                    )));
                }
            }
        }
        for p in &self.partitions {
            for m in &p.replicas {
                if !known(m) {
                    return Err(Error::Config(format!(
                        "partition {} references unknown node {m}",
                        p.id
                    )));
                }
            }
        }
        if let Some(geo) = &self.geo {
            let mut placed = std::collections::BTreeSet::new();
            for r in &geo.regions {
                for n in &r.nodes {
                    if !known(n) {
                        return Err(Error::Config(format!(
                            "region {:?} references unknown node {n}",
                            r.name
                        )));
                    }
                    if !placed.insert(*n) {
                        return Err(Error::Config(format!(
                            "node {n} placed in more than one region"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// The spec of node `id`.
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Builds the shared configuration registry every node consults —
    /// rings, partitions and (for MRP-Store) the partitioning scheme.
    ///
    /// # Errors
    ///
    /// Fails if a ring or partition definition is rejected.
    pub fn build_registry(&self) -> Result<Registry> {
        let registry = Registry::new();
        for r in &self.rings {
            registry.register_ring(RingConfig::new(
                r.id,
                r.members.clone(),
                r.acceptors.clone(),
            )?)?;
        }
        for p in &self.partitions {
            registry.register_partition(
                p.id,
                PartitionInfo {
                    rings: p.rings.clone(),
                    replicas: p.replicas.clone(),
                },
            )?;
        }
        if let Some(scheme) = self.initial_scheme() {
            scheme.publish(&registry);
        }
        Ok(registry)
    }

    /// Idempotently seeds `registry` with this deployment's rings,
    /// partitions and partitioning scheme. One-process-per-node
    /// deployments race every node through this at startup: the first
    /// writer registers, the rest adopt whatever the coordination service
    /// already holds (including post-failover configurations — seeding
    /// never resets a live ring).
    ///
    /// # Errors
    ///
    /// Fails if a definition is structurally invalid or the service is
    /// unreachable.
    pub fn seed_registry(&self, registry: &Registry) -> Result<()> {
        for r in &self.rings {
            registry.ensure_ring(RingConfig::new(
                r.id,
                r.members.clone(),
                r.acceptors.clone(),
            )?)?;
        }
        for p in &self.partitions {
            registry.ensure_partition(
                p.id,
                PartitionInfo {
                    rings: p.rings.clone(),
                    replicas: p.replicas.clone(),
                },
            )?;
        }
        if let Some(scheme) = self.initial_scheme() {
            if Partitioning::load(registry).is_none() {
                scheme.publish(registry);
            }
        }
        Ok(())
    }

    /// Rings `node` is a member of, ascending.
    pub fn member_of(&self, node: NodeId) -> Vec<RingId> {
        self.rings
            .iter()
            .filter(|r| r.members.contains(&node))
            .map(|r| r.id)
            .collect()
    }

    /// Rings `node` subscribes to: its partition's rings.
    pub fn subscribe_to(&self, node: NodeId) -> Vec<RingId> {
        let Some(spec) = self.node(node) else {
            return Vec::new();
        };
        let Some(partition) = spec.partition else {
            return Vec::new();
        };
        self.partitions
            .iter()
            .find(|p| p.id == partition)
            .map(|p| p.rings.clone())
            .unwrap_or_default()
    }

    /// The executor shard count nodes actually start with:
    /// `executor_shards` as configured, or — when it is 0 — one shard
    /// per core the machine offers this process.
    pub fn resolved_executor_shards(&self) -> u32 {
        if self.executor_shards != 0 {
            self.executor_shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1)
        }
    }

    /// The partitioning scheme an MRP-Store deployment boots with
    /// (`None` for other services): hash by default, or — with
    /// `partitioning = "range"` — a key-range split at evenly spaced
    /// single-letter bounds, the shape live range migration can
    /// rewrite.
    pub fn initial_scheme(&self) -> Option<Partitioning> {
        let ServiceKind::MrpStore { partitions } = self.service else {
            return None;
        };
        Some(if self.range_partitioned {
            let n = u32::from(partitions.max(1));
            let bounds = (1..n)
                .map(|i| char::from(b'a' + (i * 26 / n) as u8).to_string())
                .collect();
            Partitioning::Range { bounds }
        } else {
            Partitioning::Hash { partitions }
        })
    }

    /// For MRP-Store layouts: the ring carrying single-key commands of
    /// `partition` (convention: ring id == partition id).
    pub fn partition_ring(&self, partition: PartitionId) -> RingId {
        RingId::new(partition.raw())
    }

    /// For MRP-Store layouts: the global ring scans are multicast to
    /// (convention: the highest ring id).
    pub fn global_ring(&self) -> RingId {
        self.rings
            .iter()
            .map(|r| r.id)
            .max()
            .unwrap_or(RingId::new(0))
    }
}

// ---------------------------------------------------------------------
// the TOML-subset document model
// ---------------------------------------------------------------------

/// A parsed `key = value` table.
#[derive(Clone, Debug, Default)]
pub(crate) struct Table {
    pub(crate) values: BTreeMap<String, Value>,
}

#[derive(Clone, Debug)]
pub(crate) enum Value {
    Str(String),
    Int(u64),
    List(Vec<u64>),
}

impl Value {
    fn as_str(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::List(_) => String::new(),
        }
    }
}

impl Table {
    fn int(&self, key: &str) -> Result<u64> {
        match self.values.get(key) {
            Some(Value::Int(v)) => Ok(*v),
            _ => Err(Error::Config(format!("missing integer key {key:?}"))),
        }
    }

    fn int_or(&self, key: &str, default: u64) -> Result<u64> {
        match self.values.get(key) {
            None => Ok(default),
            Some(Value::Int(v)) => Ok(*v),
            Some(_) => Err(Error::Config(format!("key {key:?} must be an integer"))),
        }
    }

    fn str_or(&self, key: &str, default: &str) -> String {
        match self.values.get(key) {
            Some(v) => v.as_str(),
            None => default.to_string(),
        }
    }

    fn str_req(&self, key: &str) -> Result<String> {
        match self.values.get(key) {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(Error::Config(format!("missing string key {key:?}"))),
        }
    }

    fn addr(&self, key: &str) -> Result<SocketAddr> {
        let raw = match self.values.get(key) {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(Error::Config(format!("missing address key {key:?}"))),
        };
        raw.parse()
            .map_err(|_| Error::Config(format!("bad socket address {raw:?} for {key:?}")))
    }

    fn ints(&self, key: &str) -> Result<Vec<u64>> {
        match self.values.get(key) {
            Some(Value::List(v)) => Ok(v.clone()),
            _ => Err(Error::Config(format!("missing list key {key:?}"))),
        }
    }

    fn ids(&self, key: &str) -> Result<Vec<NodeId>> {
        Ok(self
            .ints(key)?
            .into_iter()
            .map(|v| NodeId::new(v as u32))
            .collect())
    }
}

#[derive(Debug, Default)]
struct Document {
    singletons: BTreeMap<String, Table>,
    lists: BTreeMap<String, Vec<Table>>,
}

impl Document {
    fn singleton(&self, name: &str) -> Option<&Table> {
        self.singletons.get(name)
    }

    fn list(&self, name: &str) -> impl Iterator<Item = &Table> {
        self.lists.get(name).into_iter().flatten()
    }

    fn parse(text: &str) -> Result<Document> {
        let mut doc = Document::default();
        // Where keys of the current section go.
        enum Target {
            None,
            Singleton(String),
            ListEntry(String),
        }
        let mut target = Target::None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err =
                |what: &str| Error::Config(format!("config line {}: {what}: {raw:?}", lineno + 1));
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                let name = name.trim().to_string();
                doc.lists
                    .entry(name.clone())
                    .or_default()
                    .push(Table::default());
                target = Target::ListEntry(name);
            } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                doc.singletons.entry(name.clone()).or_default();
                target = Target::Singleton(name);
            } else if let Some((key, value)) = line.split_once('=') {
                let key = key.trim().to_string();
                let value = parse_value(value.trim()).ok_or_else(|| err("bad value"))?;
                let table = match &target {
                    Target::None => return Err(err("key before any section")),
                    Target::Singleton(name) => doc.singletons.get_mut(name).expect("created"),
                    Target::ListEntry(name) => doc
                        .lists
                        .get_mut(name)
                        .and_then(|l| l.last_mut())
                        .expect("created"),
                };
                table.values.insert(key, value);
            } else {
                return Err(err("expected section header or key = value"));
            }
        }
        Ok(doc)
    }
}

fn parse_value(raw: &str) -> Option<Value> {
    if let Some(s) = raw.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Some(Value::Str(s.to_string()));
    }
    if let Some(inner) = raw.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Some(Value::List(Vec::new()));
        }
        let mut items = Vec::new();
        for part in inner.split(',') {
            items.push(part.trim().parse().ok()?);
        }
        return Some(Value::List(items));
    }
    raw.parse().ok().map(Value::Int)
}

/// Generates a localhost MRP-Store deployment document: `partitions`
/// partition rings of `replicas_per_partition` replicas each, a global
/// ring over all nodes, sequential ports from `base_port`. The document
/// round-trips through [`DeploymentConfig::parse`], so tests, examples
/// and `amcastd --generate` all exercise the real parser.
pub fn generate_localhost_mrpstore(
    partitions: u16,
    replicas_per_partition: u16,
    base_port: u16,
    wal_dir: Option<&str>,
) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    out.push_str("[deployment]\nservice = \"mrpstore\"\n");
    let _ = writeln!(out, "partitions = {partitions}");
    out.push_str("batch_max = 64\nbatch_delay_ms = 2\ncheckpoint_ms = 500\n");
    if let Some(dir) = wal_dir {
        let _ = writeln!(out, "wal_dir = \"{dir}\"");
    }
    let n = partitions * replicas_per_partition;
    let mut port = base_port;
    for id in 0..n {
        let _ = writeln!(out, "\n[[node]]\nid = {id}");
        let _ = writeln!(out, "peer_addr = \"127.0.0.1:{port}\"");
        let _ = writeln!(out, "client_addr = \"127.0.0.1:{}\"", port + 1);
        let _ = writeln!(out, "partition = {}", id / replicas_per_partition);
        port += 2;
    }
    let ids =
        |range: std::ops::Range<u16>| range.map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
    for p in 0..partitions {
        let members = ids(p * replicas_per_partition..(p + 1) * replicas_per_partition);
        let _ = writeln!(
            out,
            "\n[[ring]]\nid = {p}\nmembers = [{members}]\nacceptors = [{members}]"
        );
    }
    let all = ids(0..n);
    let _ = writeln!(
        out,
        "\n[[ring]]\nid = {partitions}\nmembers = [{all}]\nacceptors = [{all}]"
    );
    for p in 0..partitions {
        let replicas = ids(p * replicas_per_partition..(p + 1) * replicas_per_partition);
        let _ = writeln!(
            out,
            "\n[[partition]]\nid = {p}\nrings = [{p}, {partitions}]\nreplicas = [{replicas}]"
        );
    }
    out
}

/// Points a deployment document at an `amcoordd` ensemble: inserts
/// `coord = "a,b,c"` (and the session TTL) into its `[deployment]`
/// section. Used by tests and tools that generate a localhost document
/// first and decide on coordination separately.
pub fn with_coord(doc: &str, addrs: &[SocketAddr], session_ttl: Duration) -> String {
    let list = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    doc.replacen(
        "[deployment]\n",
        &format!(
            "[deployment]\ncoord = \"{list}\"\nsession_ttl_ms = {}\n",
            session_ttl.as_millis()
        ),
        1,
    )
}

/// Sets `executor_shards = n` in a deployment document's `[deployment]`
/// section. Used by tests and the bench to run the same document with
/// different executor layouts.
pub fn with_executor_shards(doc: &str, n: u32) -> String {
    doc.replacen(
        "[deployment]\n",
        &format!("[deployment]\nexecutor_shards = {n}\n"),
        1,
    )
}

/// Switches a deployment document to range partitioning (`partitioning
/// = "range"`) — the scheme live key-range migration requires.
pub fn with_range_partitioning(doc: &str) -> String {
    doc.replacen(
        "[deployment]\n",
        "[deployment]\npartitioning = \"range\"\n",
        1,
    )
}

/// Gives a deployment document a geography: appends one `[[region]]`
/// section per `(name, nodes)` pair and sets the WAN keys in
/// `[deployment]`. In-process deployments of the resulting document
/// shape every peer link through `liverun::netem`.
pub fn with_geo(doc: &str, regions: &[(&str, &[u32])], delay_scale_pct: u64) -> String {
    use std::fmt::Write as _;

    let mut out = doc.replacen(
        "[deployment]\n",
        &format!(
            "[deployment]\nwan_profile = \"ec2-2014\"\nwan_delay_scale_pct = {delay_scale_pct}\n"
        ),
        1,
    );
    for (name, nodes) in regions {
        let ids = nodes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(out, "\n[[region]]\nname = \"{name}\"\nnodes = [{ids}]\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A two-partition MRP-Store on localhost.
[deployment]
service = "mrpstore"
partitions = 2
batch_max = 32
batch_delay_ms = 3
checkpoint_ms = 500
wal_dir = "/tmp/amcast-test"

[[node]]
id = 0
peer_addr = "127.0.0.1:7400"
client_addr = "127.0.0.1:7401"
partition = 0

[[node]]
id = 1
peer_addr = "127.0.0.1:7402"
client_addr = "127.0.0.1:7403"
partition = 1

[[ring]]
id = 0
members = [0, 1]
acceptors = [0, 1]

[[ring]]
id = 2
members = [0, 1]
acceptors = [0]

[[partition]]
id = 0
rings = [0, 2]
replicas = [0]

[[partition]]
id = 1
rings = [2]
replicas = [1]
"#;

    #[test]
    fn parses_full_document() {
        let cfg = DeploymentConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.service, ServiceKind::MrpStore { partitions: 2 });
        assert_eq!(cfg.batch_max, 32);
        assert_eq!(cfg.batch_delay, Duration::from_millis(3));
        assert_eq!(cfg.checkpoint_interval, Some(Duration::from_millis(500)));
        assert_eq!(
            cfg.wal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/amcast-test"))
        );
        assert_eq!(cfg.nodes.len(), 2);
        assert_eq!(cfg.nodes[1].partition, Some(PartitionId::new(1)));
        assert_eq!(cfg.rings.len(), 2);
        assert_eq!(cfg.rings[1].acceptors, vec![NodeId::new(0)]);
        assert_eq!(cfg.partitions.len(), 2);
        assert_eq!(cfg.global_ring(), RingId::new(2));
        assert_eq!(
            cfg.member_of(NodeId::new(0)),
            vec![RingId::new(0), RingId::new(2)]
        );
        assert_eq!(cfg.subscribe_to(NodeId::new(1)), vec![RingId::new(2)]);
    }

    #[test]
    fn registry_mirrors_document() {
        let cfg = DeploymentConfig::parse(SAMPLE).unwrap();
        let registry = cfg.build_registry().unwrap();
        assert_eq!(registry.ring_ids(), vec![RingId::new(0), RingId::new(2)]);
        assert_eq!(
            registry.partition_of(NodeId::new(1)),
            Some(PartitionId::new(1))
        );
        assert!(mrpstore::Partitioning::load(&registry).is_some());
    }

    #[test]
    fn rejects_inconsistent_documents() {
        assert!(DeploymentConfig::parse("").is_err(), "empty");
        let unknown_member = r#"
[deployment]
service = "echo"
[[node]]
id = 0
peer_addr = "127.0.0.1:1"
client_addr = "127.0.0.1:2"
[[ring]]
id = 0
members = [0, 9]
acceptors = [0]
"#;
        assert!(DeploymentConfig::parse(unknown_member).is_err());
        assert!(DeploymentConfig::parse("junk line\n").is_err());
    }

    #[test]
    fn coord_section_round_trips() {
        let plain = DeploymentConfig::parse(SAMPLE).unwrap();
        assert!(plain.coord_addrs.is_empty());
        assert_eq!(plain.session_ttl, Duration::from_millis(3000));

        let addrs: Vec<std::net::SocketAddr> = vec![
            "127.0.0.1:7710".parse().unwrap(),
            "127.0.0.1:7711".parse().unwrap(),
        ];
        let doc = with_coord(SAMPLE, &addrs, Duration::from_millis(1500));
        let cfg = DeploymentConfig::parse(&doc).unwrap();
        assert_eq!(cfg.coord_addrs, addrs);
        assert_eq!(cfg.session_ttl, Duration::from_millis(1500));

        assert!(DeploymentConfig::parse(&SAMPLE.replacen(
            "[deployment]\n",
            "[deployment]\ncoord = \"junk\"\n",
            1
        ))
        .is_err());
    }

    #[test]
    fn seeding_is_idempotent() {
        let cfg = DeploymentConfig::parse(SAMPLE).unwrap();
        let registry = Registry::new();
        cfg.seed_registry(&registry).unwrap();
        cfg.seed_registry(&registry).unwrap(); // concurrent-bootstrap shape
        assert_eq!(registry.ring_ids(), vec![RingId::new(0), RingId::new(2)]);
        assert!(mrpstore::Partitioning::load(&registry).is_some());
    }

    #[test]
    fn geo_sections_resolve_profile_links() {
        let base = generate_localhost_mrpstore(3, 2, 7500, None);
        let doc = with_geo(
            &base,
            &[
                ("eu-west-1", &[0, 1]),
                ("us-east-1", &[2, 3]),
                ("us-west-2", &[4, 5]),
            ],
            100,
        );
        let cfg = DeploymentConfig::parse(&doc).unwrap();
        let geo = cfg.geo.as_ref().unwrap();
        assert_eq!(geo.profile, "ec2-2014");
        assert_eq!(geo.region_of(NodeId::new(2)), Some("us-east-1"));
        assert_eq!(geo.region_of(NodeId::new(7)), None);
        // eu-west-1 → us-east-1 is the paper's 80 ms RTT, split one way.
        let link = geo.policy("eu-west-1", "us-east-1");
        assert_eq!(link.delay, Duration::from_millis(40));
        assert!(link.bytes_per_sec > 0);
        // Intra-region stays sub-millisecond.
        let local = geo.policy("us-west-2", "us-west-2");
        assert!(local.delay < Duration::from_millis(1));
        // Widest declared pair: eu-west-1 ↔ us-west-2 at 140 ms RTT.
        assert_eq!(geo.max_one_way(), Duration::from_millis(70));
    }

    #[test]
    fn geo_delay_scale_and_link_overrides_apply() {
        let base = generate_localhost_mrpstore(1, 2, 7500, None);
        let mut doc = with_geo(&base, &[("eu-west-1", &[0]), ("us-east-1", &[1])], 50);
        doc.push_str("\n[[link]]\nfrom = \"eu-west-1\"\nto = \"us-east-1\"\nrtt_ms = 200\nmbps = 100\nloss_pct = 3\n");
        let cfg = DeploymentConfig::parse(&doc).unwrap();
        let geo = cfg.geo.as_ref().unwrap();
        // Override RTT 200 ms → 100 ms one-way, then scaled to 50%.
        let link = geo.policy("eu-west-1", "us-east-1");
        assert_eq!(link.delay, Duration::from_millis(50));
        assert_eq!(link.bytes_per_sec, 100_000_000 / 8);
        assert_eq!(link.loss_pct, 3);
        // Symmetric: the reverse direction got the same override.
        assert_eq!(geo.policy("us-east-1", "eu-west-1"), link);
    }

    #[test]
    fn geo_rejects_bad_documents() {
        let base = generate_localhost_mrpstore(1, 2, 7500, None);
        // Unknown node in a region.
        let doc = with_geo(&base, &[("eu-west-1", &[0, 9])], 100);
        assert!(DeploymentConfig::parse(&doc).is_err());
        // Node in two regions.
        let doc = with_geo(&base, &[("eu-west-1", &[0]), ("us-east-1", &[0])], 100);
        assert!(DeploymentConfig::parse(&doc).is_err());
        // Unknown profile.
        let doc = with_geo(&base, &[("eu-west-1", &[0])], 100).replacen(
            "wan_profile = \"ec2-2014\"",
            "wan_profile = \"atlantis-1\"",
            1,
        );
        assert!(DeploymentConfig::parse(&doc).is_err());
        // Link referencing an undeclared region.
        let mut doc = with_geo(&base, &[("eu-west-1", &[0])], 100);
        doc.push_str("\n[[link]]\nfrom = \"eu-west-1\"\nto = \"nowhere\"\nrtt_ms = 10\n");
        assert!(DeploymentConfig::parse(&doc).is_err());
    }

    #[test]
    fn generated_document_parses_and_is_consistent() {
        let text = generate_localhost_mrpstore(2, 2, 7400, Some("/tmp/w"));
        let cfg = DeploymentConfig::parse(&text).unwrap();
        assert_eq!(cfg.nodes.len(), 4);
        assert_eq!(cfg.rings.len(), 3);
        assert_eq!(cfg.partitions.len(), 2);
        assert_eq!(cfg.global_ring(), RingId::new(2));
        // Every node subscribes to its partition ring plus the global ring.
        for node in &cfg.nodes {
            let subs = cfg.subscribe_to(node.id);
            assert_eq!(subs.len(), 2);
            assert!(subs.contains(&cfg.global_ring()));
        }
        cfg.build_registry().unwrap();
    }
}
