//! The live node: one [`MultiRingHost`] driven by an OS-thread event loop
//! over real TCP.
//!
//! Each node runs three kinds of threads:
//!
//! * the **node loop** — owns the host state machine; waits on its event
//!   queue with a deadline derived from the timer heap and the batcher,
//!   feeds events into the host through [`Ctx::external`], then routes
//!   the emitted sends to peer sockets / client connections and arms the
//!   emitted timers;
//! * **peer reader** threads — one per accepted peer connection,
//!   reassembling [`PeerFrame`]s into `Event::Peer`;
//! * **client reader** threads — one per client connection, speaking the
//!   [`common::wire::client`] protocol and feeding `Event::Client*`.
//!
//! Replies route back by node id: replicas answer `Envelope::reply_to`,
//! which for live clients is a synthetic node id above
//! [`CLIENT_NODE_BASE`]; the loop maps it to the client's connection and
//! writes a [`ClientReply::Response`] frame.

use std::collections::HashMap;
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use bytes::Bytes;
use common::error::{Error, Result};
use common::ids::{ClientId, NodeId, RequestId, RingId};
use common::msg::{ClientMsg as SimClientMsg, Msg};
use common::obs::{Counter, Hist, Obs, WireCounters};
use common::transport::{encode_frame, FrameBuf, PeerFrame, TimerHeap, WallClock};
use common::value::Envelope;
use common::wire::client::{ClientMsg, ClientReply};
use common::wire::Wire;
use coord::Registry;
use multiring::{
    HostOptions, MultiRingHost, ReplySink, ServiceApp, SessionLimits, ShardPlan, ShardedExec,
};
use rand::{rngs::StdRng, SeedableRng};
use simnet::{Ctx, Process, Timer};

use crate::batch::{BatchOptions, Batcher};

/// Client connections are addressed as synthetic nodes at and above this
/// id; deployment nodes must stay below it.
pub const CLIENT_NODE_BASE: u32 = 1 << 20;

/// The synthetic node id replies to `client` are routed by.
pub fn client_node_id(client: ClientId) -> NodeId {
    NodeId::new(CLIENT_NODE_BASE + client.raw())
}

/// Inverse of [`client_node_id`].
pub fn client_of_node(node: NodeId) -> Option<ClientId> {
    node.raw().checked_sub(CLIENT_NODE_BASE).map(ClientId::new)
}

/// Events feeding one node loop.
pub(crate) enum Event {
    /// A protocol message from a peer (or from this node to itself).
    Peer(NodeId, Msg),
    /// A client said hello on this node; `v2` marks a protocol-v2
    /// handshake (replies go out as `ResponseV2`/`ErrorV2` frames).
    ClientHello(ClientId, ClientWriter, bool),
    /// A client submitted a v1 command.
    ClientRequest {
        /// The submitting client.
        client: ClientId,
        /// Client-chosen sequence number.
        seq: RequestId,
        /// Target multicast group.
        group: RingId,
        /// Service command bytes.
        cmd: Bytes,
    },
    /// A client submitted a v2 (sessioned) command.
    ClientRequestV2 {
        /// The submitting client.
        client: ClientId,
        /// The exactly-once session (or a `SESSION_CTL` control frame).
        session: u64,
        /// Per-session sequence number.
        seq: RequestId,
        /// The client's cumulative reply ack (cache pruning).
        ack: u64,
        /// Target multicast group.
        group: RingId,
        /// Service command bytes.
        cmd: Bytes,
    },
    /// A client connection closed.
    ClientGone(ClientId),
    /// Stop the loop.
    Shutdown,
}

/// One client's connection state at the node loop: its reply writer and
/// which protocol version the hello negotiated.
pub(crate) struct ClientConn {
    writer: ClientWriter,
    v2: bool,
}

/// Write half of one client connection.
///
/// Like peer sends, client replies must never block the node loop: a
/// client that stops reading fills its TCP window and a blocking write
/// would stall the loop (and with it this node's heartbeats). Replies
/// therefore go through a bounded queue to a dedicated writer thread;
/// when the queue fills, replies are dropped — the same semantics as the
/// paper's UDP responses, which clients already retry around (v2 retries
/// are deduplicated, so shedding stays safe).
#[derive(Clone)]
pub(crate) struct ClientWriter {
    tx: Sender<ClientReply>,
    depth: Arc<AtomicUsize>,
}

impl ClientWriter {
    fn new(stream: TcpStream, vectored: Counter) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<ClientReply>(4096);
        let depth = Arc::new(AtomicUsize::new(0));
        let loop_depth = Arc::clone(&depth);
        std::thread::spawn(move || client_writer_loop(stream, rx, loop_depth, vectored));
        ClientWriter { tx, depth }
    }

    fn send(&self, reply: &ClientReply) {
        if self.tx.try_send(reply.clone()).is_ok() {
            self.depth.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Replies queued behind the writer thread — the per-connection
    /// share of the `reply_queue_depth` gauge.
    fn queued(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}

/// Owns the write half of one client socket; exits when every handle to
/// the queue is gone or the socket breaks.
///
/// Replies queued behind the first one coalesce into a single
/// `write_vectored` syscall — under load (many shards finishing at
/// once) the per-frame write cost amortizes across the burst.
fn client_writer_loop(
    mut stream: TcpStream,
    rx: Receiver<ClientReply>,
    depth: Arc<AtomicUsize>,
    vectored: Counter,
) {
    let mut frames: Vec<Bytes> = Vec::new();
    while let Ok(reply) = rx.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        frames.clear();
        frames.push(encode_frame(&reply));
        while frames.len() < 64 {
            match rx.try_recv() {
                Ok(reply) => {
                    depth.fetch_sub(1, Ordering::Relaxed);
                    frames.push(encode_frame(&reply));
                }
                Err(_) => break,
            }
        }
        if frames.len() > 1 {
            vectored.add(frames.len() as u64);
        }
        if write_all_vectored(&mut stream, &frames).is_err() {
            return;
        }
    }
}

/// Writes every frame fully with `write_vectored`, rebuilding the slice
/// list from the unwritten remainder after short writes (std's
/// `write_all_vectored` is unstable).
fn write_all_vectored(stream: &mut TcpStream, frames: &[Bytes]) -> std::io::Result<()> {
    let mut idx = 0;
    let mut off = 0;
    while idx < frames.len() {
        let slices: Vec<IoSlice> = std::iter::once(IoSlice::new(&frames[idx][off..]))
            .chain(frames[idx + 1..].iter().map(|f| IoSlice::new(f)))
            .collect();
        let mut n = match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write frames",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while idx < frames.len() && n >= frames[idx].len() - off {
            n -= frames[idx].len() - off;
            idx += 1;
            off = 0;
        }
        off += n;
    }
    Ok(())
}

/// Outgoing peer connections.
///
/// Sends must never block the node loop: a stalled loop stops this
/// node's own heartbeats, which its peers read as a failure (§5.1) — a
/// dead neighbour would take us down with it. Each peer therefore gets a
/// dedicated writer thread owning the socket, fed through a bounded
/// queue; connect retries and back-off happen on the writer thread, and
/// when the queue is full (peer down, backlog grown) messages are
/// dropped — the protocol's TTL'd circulation, retries and failure
/// detection absorb the loss.
struct PeerTransport {
    me: NodeId,
    addrs: HashMap<NodeId, SocketAddr>,
    links: HashMap<NodeId, Sender<Msg>>,
    /// Per-node wire accounting for everything this node sends.
    wire: WireCounters,
    /// The same accounting broken down by ring (`ring{r}_*` counters) —
    /// the observable the genuineness guard checks: a ring this node
    /// never ordered anything on must show zero here.
    wire_by_ring: HashMap<RingId, WireCounters>,
    /// Metrics registry the per-ring counter families register in.
    obs: Obs,
    /// Frames that left in multi-frame `write_vectored` bursts.
    vectored: Counter,
}

impl PeerTransport {
    fn send(&mut self, to: NodeId, msg: Msg) {
        let Some(addr) = self.addrs.get(&to).copied() else {
            return;
        };
        if let Msg::Ring(ring, rm) = &msg {
            self.wire.note(rm);
            self.wire_by_ring
                .entry(*ring)
                .or_insert_with(|| {
                    WireCounters::with_prefix(&self.obs, &format!("ring{}_", ring.raw()))
                })
                .note(rm);
        }
        let me = self.me;
        let vectored = self.vectored.clone();
        let link = self.links.entry(to).or_insert_with(|| {
            let (tx, rx) = crossbeam::channel::bounded::<Msg>(4096);
            std::thread::Builder::new()
                .name(format!("amcast-link-{}-{}", me.raw(), to.raw()))
                .spawn(move || peer_writer_loop(me, addr, rx, vectored))
                .expect("spawn peer writer");
            tx
        });
        let _ = link.try_send(msg);
    }
}

/// Owns the outgoing socket to one peer: connects (with back-off), writes
/// queued frames, reconnects once on a failed write. Exits when the node
/// loop drops its sender.
fn peer_writer_loop(me: NodeId, addr: SocketAddr, rx: Receiver<Msg>, vectored: Counter) {
    let mut conn: Option<TcpStream> = None;
    let mut ever_connected = false;
    let mut frames: Vec<Bytes> = Vec::new();
    loop {
        let Ok(msg) = rx.recv() else { return };
        // Write coalescing: everything queued behind this message goes
        // out in the same `write_vectored` syscall — no added latency,
        // no copy into a staging buffer, and under load the per-frame
        // write cost amortizes across the burst. The cap bounds how much
        // a failed write can lose at once (a dropped burst is healed by
        // TTL'd circulation, retries and the value-pull path, but
        // smaller losses heal faster).
        frames.clear();
        let mut total = 0usize;
        let first = encode_frame(&PeerFrame { from: me, msg });
        total += first.len();
        frames.push(first);
        while total < 64 * 1024 {
            match rx.try_recv() {
                Ok(msg) => {
                    let frame = encode_frame(&PeerFrame { from: me, msg });
                    total += frame.len();
                    frames.push(frame);
                }
                Err(_) => break,
            }
        }
        if frames.len() > 1 {
            vectored.add(frames.len() as u64);
        }
        // (Re)connect if needed, then write; a failed write drops the
        // socket and retries once with a fresh connection.
        let mut attempts_left = 2;
        while attempts_left > 0 {
            if conn.is_none() {
                match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        conn = Some(s);
                        ever_connected = true;
                    }
                    Err(_) if !ever_connected => {
                        // The peer has not come up yet (deployment still
                        // launching): HOLD the message and keep trying —
                        // dropping first-hop Phase 2 traffic here would
                        // leave permanently undecided instances. The
                        // bounded queue sheds load if this goes on.
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                    Err(_) => {
                        // Peer was up and died: drop this message and
                        // back off; failure detection and gap healing
                        // take over (§5.1–5.2).
                        std::thread::sleep(Duration::from_millis(50));
                        break;
                    }
                }
            }
            if let Some(s) = conn.as_mut() {
                if write_all_vectored(s, &frames).is_ok() {
                    break;
                }
                conn = None;
                attempts_left -= 1;
            }
        }
    }
}

/// A listener whose accept loop can be stopped from outside.
pub(crate) struct ListenerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ListenerHandle {
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

pub(crate) fn spawn_listener(
    listener: TcpListener,
    name: String,
    mut on_conn: impl FnMut(TcpStream) + Send + 'static,
) -> ListenerHandle {
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = stream else { break };
                on_conn(stream);
            }
        })
        .expect("spawn listener thread");
    ListenerHandle {
        addr,
        stop,
        join: Some(join),
    }
}

/// Reads [`PeerFrame`]s off one accepted peer connection.
fn spawn_peer_reader(mut stream: TcpStream, tx: Sender<Event>) {
    std::thread::spawn(move || {
        let mut buf = FrameBuf::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    buf.extend(&chunk[..n]);
                    loop {
                        match buf.try_next::<PeerFrame>() {
                            Ok(Some(f)) => {
                                if tx.send(Event::Peer(f.from, f.msg)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return, // corrupt stream: drop it
                        }
                    }
                }
            }
        }
    });
}

/// Speaks the client protocol (v1 and v2) on one accepted client
/// connection. `grant` is the node's *live* credit window: the node loop
/// resizes it with backpressure, and a client connecting mid-overload is
/// admitted at the clamped window, not the configured maximum.
fn spawn_client_reader(
    mut stream: TcpStream,
    me: NodeId,
    grant: Arc<AtomicU32>,
    obs: Obs,
    tx: Sender<Event>,
) {
    use common::wire::client::{ErrorCode, FEAT_ALL};
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let writer = match stream.try_clone() {
            Ok(w) => ClientWriter::new(w, obs.counter("writer_vectored_frames")),
            Err(_) => return,
        };
        let mut session: Option<ClientId> = None;
        let mut buf = FrameBuf::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    buf.extend(&chunk[..n]);
                    loop {
                        match buf.try_next::<ClientMsg>() {
                            Ok(Some(ClientMsg::Hello { client })) => {
                                session = Some(client);
                                if tx
                                    .send(Event::ClientHello(client, writer.clone(), false))
                                    .is_err()
                                {
                                    return;
                                }
                                writer.send(&ClientReply::Welcome { node: me });
                            }
                            Ok(Some(ClientMsg::HelloV2 { client, features })) => {
                                session = Some(client);
                                if tx
                                    .send(Event::ClientHello(client, writer.clone(), true))
                                    .is_err()
                                {
                                    return;
                                }
                                let window = grant.load(Ordering::Relaxed).max(1);
                                writer.send(&ClientReply::WelcomeV2 {
                                    node: me,
                                    features: features & FEAT_ALL,
                                    window,
                                });
                                // Grants are decoupled from the hello: the
                                // server may resize the window any time.
                                // Exercise that path from day one so
                                // clients must handle it.
                                writer.send(&ClientReply::CreditGrant { window });
                            }
                            Ok(Some(ClientMsg::Request { seq, group, cmd })) => {
                                let Some(client) = session else {
                                    writer.send(&ClientReply::Error {
                                        seq,
                                        reason: "hello required before requests".into(),
                                    });
                                    continue;
                                };
                                if tx
                                    .send(Event::ClientRequest {
                                        client,
                                        seq,
                                        group,
                                        cmd,
                                    })
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            Ok(Some(ClientMsg::RequestV2 {
                                session: sid,
                                seq,
                                ack,
                                group,
                                cmd,
                            })) => {
                                let Some(client) = session else {
                                    writer.send(&ClientReply::ErrorV2 {
                                        seq,
                                        code: ErrorCode::HelloRequired,
                                        detail: "hello required before requests".into(),
                                    });
                                    continue;
                                };
                                if tx
                                    .send(Event::ClientRequestV2 {
                                        client,
                                        session: sid,
                                        seq,
                                        ack,
                                        group,
                                        cmd,
                                    })
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            Ok(Some(ClientMsg::Ping { token })) => {
                                writer.send(&ClientReply::Pong { token });
                            }
                            Ok(Some(ClientMsg::StatsRequest { token })) => {
                                // Stats are a read-only plane: answer
                                // straight off the registry, no hello and
                                // no trip through the node loop needed.
                                writer.send(&ClientReply::Stats {
                                    token,
                                    snapshot: obs.snapshot(),
                                });
                            }
                            Ok(None) => break,
                            Err(_) => return, // corrupt stream: drop it
                        }
                    }
                }
            }
        }
        if let Some(client) = session {
            let _ = tx.send(Event::ClientGone(client));
        }
    });
}

/// The service stack one node runs: either the classic inline decorator
/// chain (everything executes on the node loop) or the sharded runtime —
/// per-shard sub-states plus the plan that routes commands between them.
/// Built by the deployment layer from the `executor_shards` config key.
pub(crate) enum AppStack {
    /// `executor_shards = 1`: the single-threaded stack.
    Inline(Box<dyn ServiceApp>),
    /// `executor_shards > 1`: sub-state `i` (with its own durability
    /// decorator) executes on executor shard `i`.
    Sharded {
        shards: Vec<Box<dyn ServiceApp>>,
        plan: Arc<dyn ShardPlan>,
        limits: SessionLimits,
    },
}

/// Routes executed replies from executor-shard threads straight to the
/// owning client connection's writer queue — response framing and the
/// client lookup happen on the shard's thread, not the merge thread.
/// Mirrors the client branch of [`route_effects`] exactly.
struct NodeReplySink {
    me: NodeId,
    clients: Arc<Mutex<HashMap<ClientId, ClientConn>>>,
}

impl ReplySink for NodeReplySink {
    fn reply(&self, _ring: RingId, env: &Envelope, payload: Bytes) {
        use common::value::NO_SESSION;
        let Some(client) = client_of_node(env.reply_to) else {
            // Not a live client (e.g. a sweep-proposed expiry replying
            // to the node itself): dropped, same as route_effects.
            return;
        };
        let clients = self.clients.lock();
        let Some(conn) = clients.get(&client) else {
            return;
        };
        if conn.v2 {
            conn.writer.send(&ClientReply::ResponseV2 {
                session: env.session,
                seq: env.req,
                from_replica: self.me,
                payload,
            });
        } else if env.session == NO_SESSION {
            conn.writer.send(&ClientReply::Response {
                seq: env.req,
                from_replica: self.me,
                payload,
            });
        }
        // A sessioned reply to a v1 connection can only be a stale
        // cross-incarnation straggler: drop it.
    }
}

/// Everything needed to (re)build one node's host.
pub(crate) struct NodeSetup {
    /// This node's id.
    pub me: NodeId,
    /// Rings the node participates in.
    pub member_of: Vec<RingId>,
    /// The subset of `member_of` where the node is an acceptor (needed to
    /// rejoin with the right role after a restart).
    pub acceptor_of: Vec<RingId>,
    /// Rings the node's replica delivers from.
    pub subscribe_to: Vec<RingId>,
    /// The replica's partition.
    pub partition: Option<common::ids::PartitionId>,
    /// Shared configuration registry.
    pub registry: Registry,
    /// Host tuning.
    pub host_opts: HostOptions,
    /// Batching limits for client proposals.
    pub batch_opts: BatchOptions,
    /// Peer address book.
    pub peer_addrs: HashMap<NodeId, SocketAddr>,
    /// This node's peer listener address.
    pub peer_addr: SocketAddr,
    /// This node's client listener address.
    pub client_addr: SocketAddr,
    /// Shared deployment clock.
    pub clock: WallClock,
    /// Credit window granted to v2 clients at the handshake.
    pub client_window: u32,
    /// Floor the credit controller never shrinks the window below.
    pub credit_min_window: u32,
    /// Proposal backlog (batcher + event queue, in envelopes) above which
    /// credit halves; `0` derives a default from the batch size.
    pub credit_backlog_high: u32,
    /// This node's metrics registry. The same registry rides
    /// `host_opts.ring.obs` into the host and rings, so every layer of
    /// this node reports into one place.
    pub obs: Obs,
}

/// How often the node re-computes per-session credit from its backlog
/// gauges. Fast enough that overload clamps within a client RTT or two;
/// slow enough that the gauge reads (a lock and two histogram snapshots)
/// cost nothing.
const CREDIT_TICK: Duration = Duration::from_millis(100);

/// Reply-writer backlog (frames across all connections) above which the
/// node is considered overloaded on the egress side.
const CREDIT_REPLY_HIGH: i64 = 1024;

/// WAL group-commit mean (over one credit tick) above which the node is
/// considered overloaded on the durability side.
const CREDIT_WAL_HIGH: Duration = Duration::from_millis(25);

/// Admission control: turns the node's own backlog gauges into the credit
/// window granted to protocol-v2 sessions (AIMD — halve under pressure,
/// climb back additively once every signal clears).
///
/// Inputs are the signals the stats plane already exports: the proposal
/// backlog (`batcher_depth` plus the unprocessed event queue), the reply
/// backlog (`reply_queue_depth`), and the `wal_commit_nanos` delta-mean
/// since the previous tick. Overload therefore degrades into *queueing at
/// the client* (shrunken pipelines) instead of dropped frames and
/// recovery storms.
struct CreditController {
    max: u32,
    min: u32,
    backlog_high: i64,
    window: u32,
    wal_count: u64,
    wal_sum: u64,
}

impl CreditController {
    fn new(max: u32, min: u32, backlog_high: i64) -> Self {
        let min = min.clamp(1, max);
        CreditController {
            max,
            min,
            backlog_high: backlog_high.max(1),
            window: max,
            wal_count: 0,
            wal_sum: 0,
        }
    }

    /// One controller step. `wal` is the cumulative commit histogram; the
    /// controller keeps the previous totals so it reacts to the *recent*
    /// mean, not the lifetime average.
    fn tick(&mut self, backlog: i64, reply_backlog: i64, wal: &common::hist::Histogram) -> u32 {
        let (count, sum) = (wal.count(), wal.sum_saturating());
        let delta_n = count.saturating_sub(self.wal_count);
        let wal_mean_nanos = sum
            .saturating_sub(self.wal_sum)
            .checked_div(delta_n)
            .unwrap_or(0);
        self.wal_count = count;
        self.wal_sum = sum;
        let wal_slow = wal_mean_nanos > CREDIT_WAL_HIGH.as_nanos() as u64;
        if backlog > self.backlog_high || reply_backlog > CREDIT_REPLY_HIGH || wal_slow {
            self.window = (self.window / 2).max(self.min);
        } else if backlog <= self.backlog_high / 4
            && reply_backlog <= CREDIT_REPLY_HIGH / 4
            && self.window < self.max
        {
            self.window = self
                .window
                .saturating_add((self.max / 8).max(1))
                .min(self.max);
        }
        self.window
    }
}

/// Handle to one running live node.
pub struct NodeHandle {
    id: NodeId,
    tx: Sender<Event>,
    join: Option<JoinHandle<()>>,
    peer_listener: Option<ListenerHandle>,
    client_listener: Option<ListenerHandle>,
}

impl NodeHandle {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Stops the node: closes listeners, stops the loop, joins threads.
    /// Existing peer/client sockets die when their reader threads observe
    /// the closed channel or socket.
    pub fn shutdown(mut self) {
        if let Some(l) = self.peer_listener.take() {
            l.stop();
        }
        if let Some(l) = self.client_listener.take() {
            l.stop();
        }
        let _ = self.tx.send(Event::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Starts one node: binds listeners, spawns the loop.
///
/// With `restart: true` the host comes up through the crash/recovery path
/// (rejoin rings, install the freshest checkpoint, catch up from the
/// acceptors — paper §5.2) instead of the cold-start path.
pub(crate) fn spawn_node(setup: NodeSetup, stack: AppStack, restart: bool) -> Result<NodeHandle> {
    let (tx, rx) = unbounded::<Event>();

    let peer_listener = TcpListener::bind(setup.peer_addr)?;
    let tx_peers = tx.clone();
    let peer_listener = spawn_listener(
        peer_listener,
        format!("amcast-peers-{}", setup.me.raw()),
        move |stream| spawn_peer_reader(stream, tx_peers.clone()),
    );

    let client_listener = TcpListener::bind(setup.client_addr)?;
    let tx_clients = tx.clone();
    let me = setup.me;
    // Live credit grant, shared between the node loop (which adjusts it)
    // and client readers (which hand it to connecting sessions): a client
    // arriving mid-overload is admitted at the clamped window, not the
    // configured maximum.
    let grant = Arc::new(AtomicU32::new(setup.client_window.max(1)));
    let reader_grant = Arc::clone(&grant);
    let obs = setup.obs.clone();
    let client_listener = spawn_listener(
        client_listener,
        format!("amcast-clients-{}", setup.me.raw()),
        move |stream| {
            spawn_client_reader(
                stream,
                me,
                Arc::clone(&reader_grant),
                obs.clone(),
                tx_clients.clone(),
            )
        },
    );

    let loop_tx = tx.clone();
    let join = std::thread::Builder::new()
        .name(format!("amcast-node-{}", setup.me.raw()))
        .spawn(move || node_loop(setup, stack, restart, rx, loop_tx, grant))
        .map_err(Error::Io)?;

    Ok(NodeHandle {
        id: me,
        tx,
        join: Some(join),
        peer_listener: Some(peer_listener),
        client_listener: Some(client_listener),
    })
}

fn node_loop(
    setup: NodeSetup,
    stack: AppStack,
    restart: bool,
    rx: Receiver<Event>,
    self_tx: Sender<Event>,
    grant: Arc<AtomicU32>,
) {
    let me = setup.me;
    let clock = setup.clock;
    if restart {
        // Failure detection removed this node from its rings while it was
        // down; rejoin *before* constructing the host — ring state
        // machines require membership.
        for ring in &setup.member_of {
            let _ = setup
                .registry
                .rejoin(*ring, me, setup.acceptor_of.contains(ring));
        }
    }
    let obs = setup.obs.clone();
    // The client map is shared with executor-shard threads (when
    // sharded): shards frame and enqueue replies themselves, so a reply
    // never crosses back through the node loop.
    let clients: Arc<Mutex<HashMap<ClientId, ClientConn>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut host = match stack {
        AppStack::Inline(app) => MultiRingHost::new(
            me,
            setup.registry.clone(),
            &setup.member_of,
            &setup.subscribe_to,
            setup.partition,
            app,
            setup.host_opts,
        ),
        AppStack::Sharded {
            shards,
            plan,
            limits,
        } => {
            let sink = Arc::new(NodeReplySink {
                me,
                clients: Arc::clone(&clients),
            });
            let exec = ShardedExec::new(shards, plan, limits, sink, &obs, 1024);
            MultiRingHost::new_sharded(
                me,
                setup.registry.clone(),
                &setup.member_of,
                &setup.subscribe_to,
                setup.partition,
                exec,
                setup.host_opts,
            )
        }
    };
    let mut transport = PeerTransport {
        me,
        addrs: setup.peer_addrs,
        links: HashMap::new(),
        wire: WireCounters::new(&obs),
        wire_by_ring: HashMap::new(),
        obs: obs.clone(),
        vectored: obs.counter("writer_vectored_frames"),
    };
    let stage_seal = obs.hist("stage_seal_nanos");
    let batcher_depth = obs.gauge("batcher_depth");
    let reply_queue_depth = obs.gauge("reply_queue_depth");
    let session_count = obs.gauge("session_count");
    let session_cached_replies = obs.gauge("session_cached_replies");
    let shard_queue_depth = obs.gauge("shard_queue_depth");
    let mut batcher = Batcher::new(setup.batch_opts);
    // Credit controller: backlog threshold defaults to four full batches
    // of headroom when the config leaves it at 0.
    let credit_window = obs.gauge("credit_window");
    let wal_commit = obs.hist("wal_commit_nanos");
    let backlog_high = if setup.credit_backlog_high > 0 {
        setup.credit_backlog_high as i64
    } else {
        (setup.batch_opts.max_envelopes as i64).saturating_mul(4)
    };
    let mut credit = CreditController::new(
        setup.client_window.max(1),
        setup.credit_min_window,
        backlog_high,
    );
    credit_window.set(credit.window as i64);
    let mut next_credit_tick = Instant::now() + CREDIT_TICK;
    // Session-expiry sweep state: last refresh reading per session and
    // when it last moved (the amcoord TTL-session shape applied to the
    // app-level client sessions).
    let mut session_seen: HashMap<u64, (u64, Instant)> = HashMap::new();
    let mut next_session_sweep = Instant::now() + Duration::from_secs(1);
    let mut expire_seq: u64 = 0;
    let mut timers: TimerHeap<Timer> = TimerHeap::new();
    let mut rng = StdRng::seed_from_u64(u64::from(me.raw()) ^ 0xa3c59ac2f1f0b7d1);
    let mut outbox: Vec<(NodeId, Msg)> = Vec::new();
    let mut timer_reqs: Vec<(common::SimTime, Timer)> = Vec::new();

    macro_rules! with_ctx {
        (|$ctx:ident| $body:expr) => {{
            let mut $ctx = Ctx::external(clock.now(), me, &mut outbox, &mut timer_reqs, &mut rng);
            $body;
        }};
    }
    macro_rules! route {
        () => {
            route_effects(
                &mut outbox,
                &mut timer_reqs,
                &mut transport,
                &clients,
                &self_tx,
                &mut timers,
                &clock,
                me,
            )
        };
    }

    with_ctx!(|ctx| if restart {
        // A restarted process lost its volatile state; run the host's
        // crash path so it rebuilds from stable storage + partition peers.
        host.on_crash(clock.now());
        host.on_restart(&mut ctx)
    } else {
        host.on_start(&mut ctx)
    });
    route!();

    // Advertise liveness: an ephemeral entry on the node's coordination
    // session. Against amcoord the entry lives exactly as long as the
    // session's TTL is kept alive — a killed process disappears from
    // `nodes/` without anyone reporting it.
    let _ = setup.registry.announce(
        format!("nodes/{}", me.raw()),
        Bytes::from(setup.peer_addr.to_string()),
    );

    macro_rules! handle_event {
        ($ev:expr) => {
            match $ev {
                Event::Shutdown => return,
                Event::Peer(from, msg) => {
                    with_ctx!(|ctx| host.on_message(from, msg, &mut ctx));
                }
                Event::ClientHello(client, writer, v2) => {
                    clients.lock().insert(client, ClientConn { writer, v2 });
                }
                Event::ClientGone(client) => {
                    clients.lock().remove(&client);
                }
                Event::ClientRequest {
                    client,
                    seq,
                    group,
                    cmd,
                } => {
                    if !setup.member_of.contains(&group) {
                        // Fail fast instead of silently dropping: the client
                        // can re-route immediately rather than burn its
                        // timeout (the wire protocol's documented Error path).
                        if let Some(conn) = clients.lock().get(&client) {
                            conn.writer.send(&common::wire::client::ClientReply::Error {
                                seq,
                                reason: format!("node {me} does not serve group {group}"),
                            });
                        }
                    } else {
                        let mut env = Envelope::v1(client, seq, client_node_id(client), cmd);
                        env.trace = obs.trace_stamp();
                        if let Some(batch) = batcher.push(group, env, Instant::now()) {
                            note_seal(&stage_seal, &batch);
                            with_ctx!(|ctx| host.propose_envelopes(group, batch, &mut ctx));
                        }
                    }
                }
                Event::ClientRequestV2 {
                    client,
                    session,
                    seq,
                    ack,
                    group,
                    cmd,
                } => {
                    if !setup.member_of.contains(&group) {
                        // v2: point the client at a node that serves the
                        // group instead of making it guess (or silently
                        // proxying on its behalf).
                        if let Some(conn) = clients.lock().get(&client) {
                            let target =
                                setup.registry.ring(group).ok().and_then(|cfg| {
                                    cfg.members().iter().copied().find(|m| *m != me)
                                });
                            match target {
                                Some(to) => {
                                    conn.writer.send(
                                        &common::wire::client::ClientReply::Redirect {
                                            seq,
                                            group,
                                            to,
                                        },
                                    );
                                }
                                None => {
                                    conn.writer
                                        .send(&common::wire::client::ClientReply::ErrorV2 {
                                            seq,
                                            code: common::wire::client::ErrorCode::UnknownGroup,
                                            detail: format!("no node serves group {group}"),
                                        });
                                }
                            }
                        }
                    } else {
                        let env = Envelope {
                            client,
                            req: seq,
                            reply_to: client_node_id(client),
                            session,
                            ack,
                            trace: obs.trace_stamp(),
                            cmd,
                        };
                        if let Some(batch) = batcher.push(group, env, Instant::now()) {
                            note_seal(&stage_seal, &batch);
                            with_ctx!(|ctx| host.propose_envelopes(group, batch, &mut ctx));
                        }
                    }
                }
            }
        };
    }

    loop {
        let mut sleep = timers.sleep_for(Duration::from_millis(50));
        if let Some(batch_deadline) = batcher.next_deadline() {
            sleep = sleep.min(batch_deadline.saturating_duration_since(Instant::now()));
        }
        match rx.recv_timeout(sleep) {
            Err(RecvTimeoutError::Disconnected) => return,
            Ok(ev) => {
                handle_event!(ev);
                // Greedily drain whatever queued behind the first event
                // before routing: effects coalesce (one routing pass, and
                // proposer batches actually fill) instead of paying the
                // full wake-route cycle per message.
                let mut drained = 0;
                while drained < 512 {
                    match rx.try_recv() {
                        Ok(ev) => {
                            handle_event!(ev);
                            drained += 1;
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
        }
        // Fire due protocol timers.
        while let Some(t) = timers.pop_due(Instant::now()) {
            with_ctx!(|ctx| host.on_timer(t, &mut ctx));
        }
        // Flush batches that aged out.
        for (ring, batch) in batcher.take_due(Instant::now()) {
            note_seal(&stage_seal, &batch);
            with_ctx!(|ctx| host.propose_envelopes(ring, batch, &mut ctx));
        }
        // Session-expiry sweep: the replicated session table's liveness
        // counters advance only through ordered keep-alives, so every
        // replica reads the same values. A counter that has sat still
        // for its TTL gets an expiry proposed on the session ring; a
        // keep-alive racing through the log wins the CAS and the session
        // survives (the amcoord TTL-session shape).
        if Instant::now() >= next_session_sweep {
            next_session_sweep = Instant::now() + Duration::from_secs(1);
            // Periodic gauges ride the sweep's once-a-second cadence.
            batcher_depth.set(batcher.pending_len() as i64);
            reply_queue_depth.set(
                clients
                    .lock()
                    .values()
                    .map(|c| c.writer.queued() as i64)
                    .sum(),
            );
            session_count.set(host.session_ids().len() as i64);
            session_cached_replies.set(host.cached_reply_count() as i64);
            shard_queue_depth.set(host.executor_queue_depth() as i64);
            {
                let now = Instant::now();
                let ids = host.session_ids();
                session_seen.retain(|id, _| ids.contains(id));
                for id in ids {
                    // Expiries ride the session's own home ring (encoded
                    // in the id), proposed only by that ring's members —
                    // a session on partition 0's ring never costs the
                    // other rings an ordered message.
                    let Some(ring) =
                        multiring::session_home_ring(id).filter(|r| setup.member_of.contains(r))
                    else {
                        continue;
                    };
                    let Some((refresh, ttl_ms)) = host.session_probe(id) else {
                        continue;
                    };
                    let entry = session_seen.entry(id).or_insert((refresh, now));
                    if entry.0 != refresh {
                        *entry = (refresh, now);
                    } else if now.duration_since(entry.1) > Duration::from_millis(ttl_ms.max(1)) {
                        expire_seq += 1;
                        let env = Envelope {
                            client: ClientId::new(0),
                            req: RequestId::new(expire_seq),
                            // Replies route back to this node's own loop,
                            // where client-less responses are dropped.
                            reply_to: me,
                            session: common::value::SESSION_CTL,
                            ack: 0,
                            trace: 0,
                            cmd: multiring::session::SessionCtl::Expire {
                                session: id,
                                seen_refresh: refresh,
                            }
                            .to_bytes(),
                        };
                        with_ctx!(|ctx| host.propose_envelopes(ring, vec![env], &mut ctx));
                        // Back off a full TTL before re-proposing.
                        entry.1 = now;
                    }
                }
            }
        }
        // Credit tick: re-derive the per-session window from this node's
        // own backlog and broadcast the change to every v2 connection.
        if Instant::now() >= next_credit_tick {
            next_credit_tick = Instant::now() + CREDIT_TICK;
            let backlog = batcher.pending_len() as i64 + rx.len() as i64;
            batcher_depth.set(batcher.pending_len() as i64);
            let reply_backlog: i64 = clients
                .lock()
                .values()
                .map(|c| c.writer.queued() as i64)
                .sum();
            reply_queue_depth.set(reply_backlog);
            let w = credit.tick(backlog, reply_backlog, &wal_commit.snapshot());
            if w != grant.load(Ordering::Relaxed) {
                grant.store(w, Ordering::Relaxed);
                credit_window.set(w as i64);
                for conn in clients.lock().values() {
                    if conn.v2 {
                        conn.writer.send(&ClientReply::CreditGrant { window: w });
                    }
                }
            }
        }
        route!();
    }
}

/// Records the batch-seal stage for every sampled envelope in a batch
/// about to be proposed: cumulative nanoseconds from the envelope's
/// origin stamp to the moment its batch sealed.
fn note_seal(seal: &Hist, batch: &[Envelope]) {
    for env in batch {
        if env.trace != 0 {
            seal.record_since(env.trace);
        }
    }
}

/// Routes one round of host effects: sends onto sockets (peers), reply
/// frames (clients) or back into our own queue (self-sends); timer
/// requests onto the wall-clock heap.
#[allow(clippy::too_many_arguments)]
fn route_effects(
    outbox: &mut Vec<(NodeId, Msg)>,
    timer_reqs: &mut Vec<(common::SimTime, Timer)>,
    transport: &mut PeerTransport,
    clients: &Mutex<HashMap<ClientId, ClientConn>>,
    self_tx: &Sender<Event>,
    timers: &mut TimerHeap<Timer>,
    clock: &WallClock,
    me: NodeId,
) {
    use common::value::NO_SESSION;
    for (to, msg) in outbox.drain(..) {
        if let Some(client) = client_of_node(to) {
            let Msg::Client(SimClientMsg::Response {
                client_seq,
                session,
                from_replica,
                payload,
                ..
            }) = msg
            else {
                continue;
            };
            // Client not connected here (or gone): reply dropped, exactly
            // like the paper's UDP responses; the client retries (safely,
            // under v2 — retries are deduplicated).
            if let Some(conn) = clients.lock().get(&client) {
                if conn.v2 {
                    conn.writer.send(&ClientReply::ResponseV2 {
                        session,
                        seq: client_seq,
                        from_replica,
                        payload,
                    });
                } else if session == NO_SESSION {
                    conn.writer.send(&ClientReply::Response {
                        seq: client_seq,
                        from_replica,
                        payload,
                    });
                }
                // A sessioned reply to a v1 connection can only be a
                // stale cross-incarnation straggler: drop it.
            }
        } else if to == me {
            let _ = self_tx.send(Event::Peer(me, msg));
        } else {
            transport.send(to, msg);
        }
    }
    for (at, timer) in timer_reqs.drain(..) {
        timers.push_at(clock.instant_of(at), timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_node_ids_round_trip() {
        let c = ClientId::new(42);
        let n = client_node_id(c);
        assert_eq!(client_of_node(n), Some(c));
        assert_eq!(client_of_node(NodeId::new(3)), None);
        assert_eq!(client_of_node(NodeId::new(CLIENT_NODE_BASE - 1)), None);
        assert_eq!(
            client_of_node(NodeId::new(CLIENT_NODE_BASE)),
            Some(ClientId::new(0))
        );
    }
}
