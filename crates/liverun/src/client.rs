//! The live network client: protocol v2, pipelined, exactly-once.
//!
//! A [`LiveClient`] opens framed-TCP connections to every serving node
//! (replicas answer clients *directly*, like the paper's UDP responses —
//! so the client must be reachable from any replica that may execute its
//! commands), performs the v2 handshake on each, and runs every command
//! under one replicated **session**:
//!
//! * the session is opened through the ordered command stream itself
//!   (on the deployment's global ring), so its id is unique by
//!   construction — no wall-clock sequence base, no client-side entropy;
//! * requests carry `(session, seq)`; replicas deduplicate inside the
//!   deterministic state machine and answer retries from a reply cache,
//!   so the client's failover re-send is **safe by design** even for
//!   non-idempotent commands;
//! * replies echo the session id, so a straggler answer from an earlier
//!   client incarnation can never be mis-matched;
//! * up to `window` requests ride in flight concurrently (credit granted
//!   by the server at handshake, resizable via `CreditGrant`), and
//!   completions surface out of submission order.
//!
//! The reply-matching and window logic lives in the sans-IO
//! `SessionCore`; [`LiveClient`] wraps it with sockets, retries,
//! keep-alives and blocking conveniences ([`LiveClient::request`],
//! [`LiveClient::request_fanout`], [`LiveClient::request_from`]).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use common::error::{Error, Result};
use common::ids::{ClientId, NodeId, PartitionId, RequestId, RingId};
use common::transport::{encode_frame, FrameBuf};
use common::value::SESSION_CTL;
use common::wire::client::{ClientMsg, ClientReply, ErrorCode, FEAT_ALL};
use common::wire::Wire;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use multiring::session::{
    parse_open_reply, parse_reply, SessionCtl, ST_OK, ST_STALE, ST_UNKNOWN_SESSION,
    ST_WINDOW_EXCEEDED,
};

/// How a client finds and talks to a deployment.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Give up on a request after this long.
    pub timeout: Duration,
    /// Re-send an unanswered request this often (safe: retries are
    /// deduplicated server-side).
    pub retry_every: Duration,
    /// Requests the client *wants* to keep in flight; the effective
    /// window is capped by the server's credit grant.
    pub window: usize,
    /// Session TTL requested at open: how long the session may sit idle
    /// (no requests, no keep-alives) before servers expire it.
    pub session_ttl: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            timeout: Duration::from_secs(10),
            retry_every: Duration::from_secs(1),
            window: 64,
            session_ttl: Duration::from_secs(30),
        }
    }
}

/// One finished request: every reply that completed it, in arrival
/// order (one per answering replica for fan-out operations).
#[derive(Clone, Debug)]
pub struct Completion {
    /// The request's per-session sequence number.
    pub seq: u64,
    /// `(replica, service payload)` per reply that counted.
    pub replies: Vec<(NodeId, Bytes)>,
}

/// What [`SessionCore::on_reply`] wants the transport driver to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Action {
    /// Nothing; keep pumping.
    None,
    /// A completion is ready to take.
    Completed(u64),
    /// The session homed on this ring is gone server-side
    /// (expired/evicted); re-open it and re-submit its in-flight
    /// requests. Sessions on other rings are unaffected.
    SessionLost(RingId),
    /// Re-send `seq` to `to` now (server redirect).
    Resend(u64, NodeId),
    /// The server rejected `seq` outright; fail it.
    Failed(u64, ErrorCode, String),
}

/// One in-flight request.
#[derive(Clone, Debug)]
pub(crate) struct Inflight {
    /// The multicast group the command targets.
    pub group: RingId,
    /// The encoded service command (kept for re-sends).
    pub cmd: Bytes,
    /// Partitions that must answer before the request completes; empty
    /// means the first reply completes it (single-partition rule).
    pub need: Vec<PartitionId>,
    /// Complete only on a reply from this specific replica (used to
    /// observe a recovered replica's state).
    pub want_replica: Option<NodeId>,
    /// Replicas that already answered (dedup for fan-out counting).
    pub answered: HashSet<NodeId>,
    /// Partitions that answered so far.
    pub parts: HashSet<PartitionId>,
    /// Accepted replies (status-stripped service payloads).
    pub replies: Vec<(NodeId, Bytes)>,
    /// Last (re-)send time.
    pub last_sent: Instant,
    /// Rotates through the group's proposer candidates on re-sends.
    pub route_pos: usize,
}

/// The sans-IO session state machine: seq allocation, window accounting,
/// reply matching (with session echo filtering), out-of-order completion
/// and cumulative-ack tracking. No sockets, no clocks beyond the
/// instants the driver passes in — unit-testable in isolation.
///
/// Sessions are **per home ring**: each multicast group the client talks
/// to gets its own replica-assigned session id, opened through that
/// ring's own ordered stream — so a single-partition command never drags
/// the global ring into its session bookkeeping. One global seq space
/// spans every ring (the cumulative ack only ever covers finished seqs,
/// so it stays safe to report to any of them).
pub(crate) struct SessionCore {
    /// Replica-assigned session ids by home ring; a ring is absent until
    /// its open completes.
    pub sessions: HashMap<RingId, u64>,
    /// Effective window (server grant, capped by the client's wish).
    pub window: usize,
    /// The client's wish (grants are clamped to it).
    wanted_window: usize,
    /// Next per-session sequence number to allocate (starts at 1).
    next_seq: u64,
    /// Highest seq such that all seqs ≤ it completed (reported to
    /// replicas as the cache-prune ack).
    pub acked: u64,
    /// Completed seqs above `acked` (out-of-order completions).
    done_above_ack: BTreeSet<u64>,
    /// In-flight requests by seq.
    pub inflight: BTreeMap<u64, Inflight>,
    /// Finished requests not yet taken by the caller.
    ready: VecDeque<Completion>,
    /// Requests that failed with a server error, by seq.
    failed: HashMap<u64, (ErrorCode, String)>,
}

impl SessionCore {
    pub(crate) fn new(wanted_window: usize) -> Self {
        SessionCore {
            sessions: HashMap::new(),
            window: wanted_window.max(1),
            wanted_window: wanted_window.max(1),
            next_seq: 1,
            acked: 0,
            done_above_ack: BTreeSet::new(),
            inflight: BTreeMap::new(),
            ready: VecDeque::new(),
            failed: HashMap::new(),
        }
    }

    /// The session id for requests targeting `group` (0 until opened).
    pub(crate) fn session_for(&self, group: RingId) -> u64 {
        self.sessions.get(&group).copied().unwrap_or(0)
    }

    /// Adopts a freshly opened session id for `group`. In-flight requests
    /// (submitted against a lost session of that ring) **keep their
    /// sequence numbers** — callers already hold them as correlation
    /// handles, so renumbering would detach completions from the requests
    /// they answer. The global ack accounting is untouched: every seq
    /// that ever left the in-flight map was marked done when it did, so
    /// the cumulative ack never waits for a seq no session will execute.
    pub(crate) fn adopt_session(&mut self, group: RingId, session: u64) {
        self.sessions.insert(group, session);
    }

    /// True when another request fits in the window.
    pub(crate) fn has_capacity(&self) -> bool {
        self.inflight.len() < self.window.max(1)
    }

    /// Allocates a seq and registers the in-flight entry. The caller
    /// checks [`SessionCore::has_capacity`] first (submitting beyond the
    /// window is allowed but the server may refuse the overhang).
    pub(crate) fn begin(
        &mut self,
        group: RingId,
        cmd: Bytes,
        need: Vec<PartitionId>,
        want_replica: Option<NodeId>,
        now: Instant,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight.insert(
            seq,
            Inflight {
                group,
                cmd,
                need,
                want_replica,
                answered: HashSet::new(),
                parts: HashSet::new(),
                replies: Vec::new(),
                last_sent: now,
                route_pos: 0,
            },
        );
        seq
    }

    fn mark_done(&mut self, seq: u64) {
        self.done_above_ack.insert(seq);
        while self.done_above_ack.remove(&(self.acked + 1)) {
            self.acked += 1;
        }
    }

    /// Abandons an in-flight request (caller timeout). The seq is marked
    /// done so the cumulative ack keeps advancing — which also tells
    /// replicas to treat any late delivery of it as stale (at-most-once
    /// for timed-out requests).
    pub(crate) fn abandon(&mut self, seq: u64) {
        if self.inflight.remove(&seq).is_some() {
            self.mark_done(seq);
        }
    }

    /// Feeds one server frame; returns what the driver should do.
    pub(crate) fn on_reply(
        &mut self,
        reply: &ClientReply,
        replica_partitions: &HashMap<NodeId, PartitionId>,
    ) -> Action {
        match reply {
            ClientReply::WelcomeV2 { window, .. } | ClientReply::CreditGrant { window } => {
                // The server's grant is authoritative, the client's wish
                // the ceiling.
                self.window = (*window as usize).clamp(1, self.wanted_window);
                Action::None
            }
            ClientReply::ResponseV2 {
                session,
                seq,
                from_replica,
                payload,
            } => {
                if *session == SESSION_CTL {
                    // Control replies are handled by the driver's open
                    // path.
                    return Action::None;
                }
                let raw = seq.raw();
                let Some(group) = self.inflight.get(&raw).map(|r| r.group) else {
                    return Action::None; // completed, abandoned, or foreign
                };
                if *session != self.session_for(group) {
                    // A different session on this request's home ring is
                    // a straggler of an earlier incarnation — the exact
                    // mis-match the v1 wall-clock seq base papered over.
                    return Action::None;
                }
                let Some((status, body)) = parse_reply(payload) else {
                    return Action::None;
                };
                match status {
                    ST_OK => self.on_ok(raw, *from_replica, body, replica_partitions),
                    ST_UNKNOWN_SESSION => Action::SessionLost(group),
                    ST_WINDOW_EXCEEDED | ST_STALE => Action::None,
                    _ => Action::None,
                }
            }
            ClientReply::Redirect { seq, to, .. } => {
                if self.inflight.contains_key(&seq.raw()) {
                    Action::Resend(seq.raw(), *to)
                } else {
                    Action::None
                }
            }
            ClientReply::ErrorV2 { seq, code, detail } => {
                let raw = seq.raw();
                if self.inflight.remove(&raw).is_some() {
                    self.mark_done(raw);
                    // Bounded: pipelined callers that never query
                    // failures (poll_reply-only loops) must not leak one
                    // entry per rejection for the process lifetime.
                    if self.failed.len() >= 1024 {
                        self.failed.clear();
                    }
                    self.failed.insert(raw, (*code, detail.clone()));
                    Action::Failed(raw, *code, detail.clone())
                } else {
                    Action::None
                }
            }
            // v1 frames and pongs carry nothing for a v2 session.
            _ => Action::None,
        }
    }

    fn on_ok(
        &mut self,
        seq: u64,
        from: NodeId,
        body: Bytes,
        replica_partitions: &HashMap<NodeId, PartitionId>,
    ) -> Action {
        let Some(req) = self.inflight.get_mut(&seq) else {
            return Action::None; // duplicate after completion
        };
        if !req.answered.insert(from) {
            return Action::None; // duplicate reply from the same replica
        }
        req.replies.push((from, body));
        if let Some(p) = replica_partitions.get(&from) {
            req.parts.insert(*p);
        }
        let done = match (&req.want_replica, req.need.is_empty()) {
            (Some(want), _) => from == *want,
            (None, true) => true,
            (None, false) => req.need.iter().all(|p| req.parts.contains(p)),
        };
        if !done {
            return Action::None;
        }
        let req = self.inflight.remove(&seq).expect("checked above");
        self.mark_done(seq);
        self.ready.push_back(Completion {
            seq,
            replies: req.replies,
        });
        Action::Completed(seq)
    }

    /// Takes the oldest finished request, if any.
    pub(crate) fn take_ready(&mut self) -> Option<Completion> {
        self.ready.pop_front()
    }

    /// Takes the completion for one specific seq, if finished.
    pub(crate) fn take_seq(&mut self, seq: u64) -> Option<Completion> {
        let at = self.ready.iter().position(|c| c.seq == seq)?;
        self.ready.remove(at)
    }

    /// The recorded failure for `seq`, if the server rejected it.
    pub(crate) fn take_failure(&mut self, seq: u64) -> Option<(ErrorCode, String)> {
        self.failed.remove(&seq)
    }

    /// In-flight seqs due for a re-send.
    pub(crate) fn due_for_retry(&self, now: Instant, every: Duration) -> Vec<u64> {
        self.inflight
            .iter()
            .filter(|(_, r)| now.duration_since(r.last_sent) >= every)
            .map(|(seq, _)| *seq)
            .collect()
    }
}

/// A connected v2 client.
pub struct LiveClient {
    id: ClientId,
    opts: ClientOptions,
    addrs: HashMap<NodeId, SocketAddr>,
    conns: HashMap<NodeId, TcpStream>,
    /// Per-node reconnect backoff: no dial attempts before the marked
    /// instant. Keeps the retry path fast while a node is down — a
    /// blocking dial loop here would throttle reply consumption below
    /// the retry rate and wedge the whole pipeline.
    down_until: HashMap<NodeId, Instant>,
    replies_tx: Sender<ClientReply>,
    replies_rx: Receiver<ClientReply>,
    /// Candidate proposers per multicast group, in preference order.
    route: HashMap<RingId, Vec<NodeId>>,
    /// Partition each server replica belongs to (fan-out completion).
    replica_partitions: HashMap<NodeId, PartitionId>,
    core: SessionCore,
    /// Correlation tokens for session-control commands.
    next_token: u64,
    last_keepalive: Instant,
}

impl LiveClient {
    /// Connects to every server, performs the v2 handshake on each, and
    /// prepares (but does not yet open) the exactly-once sessions —
    /// a session opens lazily per multicast group, on the first request
    /// targeting it, through that group's own ordered stream. A client
    /// that only ever touches one partition therefore never opens (or
    /// keeps alive) a session anywhere else.
    ///
    /// Connecting is best-effort per server: a deployment with one node
    /// down still has quorum, so the client comes up as long as *some*
    /// server is reachable (and reconnects to the rest lazily).
    ///
    /// # Errors
    ///
    /// Fails only when no server at all can be reached.
    pub fn connect(
        id: ClientId,
        servers: &[(NodeId, SocketAddr)],
        route: HashMap<RingId, Vec<NodeId>>,
        replica_partitions: HashMap<NodeId, PartitionId>,
        opts: ClientOptions,
    ) -> Result<Self> {
        let (replies_tx, replies_rx) = unbounded();
        let window = opts.window;
        let mut client = LiveClient {
            id,
            opts,
            addrs: servers.iter().copied().collect(),
            conns: HashMap::new(),
            down_until: HashMap::new(),
            replies_tx,
            replies_rx,
            route,
            replica_partitions,
            core: SessionCore::new(window),
            next_token: 0,
            last_keepalive: Instant::now(),
        };
        let mut reached = 0usize;
        let mut last_err = None;
        let nodes: Vec<NodeId> = client.addrs.keys().copied().collect();
        for node in nodes {
            // Patient initial dial: the deployment may still be binding
            // its listeners.
            match client.open_conn(node, 10) {
                Ok(()) => reached += 1,
                Err(e) => last_err = Some(e),
            }
        }
        if reached == 0 {
            return Err(last_err.unwrap_or(Error::Config("no servers configured".into())));
        }
        Ok(client)
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The open session id for `group` (0 before the first request
    /// targeting that group).
    pub fn session(&self, group: RingId) -> u64 {
        self.core.session_for(group)
    }

    /// Every `(home ring, session id)` pair currently open.
    pub fn sessions(&self) -> Vec<(RingId, u64)> {
        let mut v: Vec<(RingId, u64)> = self.core.sessions.iter().map(|(r, s)| (*r, *s)).collect();
        v.sort_unstable_by_key(|(r, _)| *r);
        v
    }

    /// The session's effective pipeline window right now: the server's
    /// latest `CreditGrant` clamped to the client's wish.
    /// Shrinks while the serving node sheds load and re-expands once its
    /// backlog drains.
    pub fn current_window(&self) -> usize {
        self.core.window
    }

    /// Diagnostics: `(open sessions, in-flight count, lowest in-flight
    /// seq, cumulative ack)`.
    pub fn stats(&self) -> (u64, usize, Option<u64>, u64) {
        (
            self.core.sessions.len() as u64,
            self.core.inflight.len(),
            self.core.inflight.keys().next().copied(),
            self.core.acked,
        )
    }

    fn open_conn(&mut self, node: NodeId, attempts: u32) -> Result<()> {
        let addr = self
            .addrs
            .get(&node)
            .copied()
            .ok_or(Error::UnknownNode(node))?;
        if let Some(until) = self.down_until.get(&node) {
            if Instant::now() < *until {
                return Err(Error::Timeout("node in reconnect backoff"));
            }
        }
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts.max(1) {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.write_all(&encode_frame(&ClientMsg::HelloV2 {
                        client: self.id,
                        features: FEAT_ALL,
                    }))?;
                    let reader = stream.try_clone()?;
                    spawn_reply_reader(reader, self.replies_tx.clone());
                    self.conns.insert(node, stream);
                    self.down_until.remove(&node);
                    return Ok(());
                }
                Err(e) => {
                    last_err = Some(e);
                    if attempt + 1 < attempts {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                }
            }
        }
        // Back off: a dead node must fail *fast* on the retry path (its
        // group mates take the traffic) instead of stalling the pump.
        self.down_until
            .insert(node, Instant::now() + Duration::from_millis(500));
        Err(Error::Io(last_err.expect("looped at least once")))
    }

    /// Re-establishes the connection to `node` (after a server restart).
    ///
    /// # Errors
    ///
    /// Fails if the server cannot be reached.
    pub fn reconnect(&mut self, node: NodeId) -> Result<()> {
        self.conns.remove(&node);
        self.down_until.remove(&node);
        self.open_conn(node, 10)
    }

    fn send_to(&mut self, node: NodeId, msg: &ClientMsg) -> Result<()> {
        if !self.conns.contains_key(&node) {
            self.open_conn(node, 1)?;
        }
        let frame = encode_frame(msg);
        let broken = self
            .conns
            .get_mut(&node)
            .map(|s| s.write_all(&frame).is_err())
            .unwrap_or(true);
        if broken {
            // One reconnect attempt: the server may have restarted.
            self.conns.remove(&node);
            self.open_conn(node, 1)?;
            self.conns
                .get_mut(&node)
                .expect("just connected")
                .write_all(&frame)?;
        }
        Ok(())
    }

    /// Sends `msg` to a proposer of `group`; `prefer` rotates through the
    /// candidate list so retries fail over. Returns the node that took it.
    fn send_routed(&mut self, group: RingId, prefer: usize, msg: &ClientMsg) -> Result<NodeId> {
        let candidates = self
            .route
            .get(&group)
            .cloned()
            .ok_or_else(|| Error::Config(format!("no proposer routed for group {group}")))?;
        if candidates.is_empty() {
            return Err(Error::Config(format!(
                "no proposer routed for group {group}"
            )));
        }
        let n = candidates.len();
        let mut last_err = None;
        for i in 0..n {
            let node = candidates[(prefer + i) % n];
            match self.send_to(node, msg) {
                Ok(()) => return Ok(node),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| Error::Config(format!("no proposer routed for group {group}"))))
    }

    fn request_frame(&self, seq: u64, group: RingId, cmd: Bytes) -> ClientMsg {
        ClientMsg::RequestV2 {
            session: self.core.session_for(group),
            seq: RequestId::new(seq),
            ack: self.core.acked,
            group,
            cmd,
        }
    }

    /// Ensures the exactly-once session homed on `group` is open, opening
    /// (or re-opening after an expiry) it through that ring's own ordered
    /// stream if not. Other rings' sessions are untouched.
    fn ensure_session(&mut self, group: RingId, deadline: Instant) -> Result<()> {
        if self.core.session_for(group) != 0 {
            return Ok(());
        }
        self.next_token += 1;
        let token = self.next_token;
        let open = SessionCtl::Open {
            token,
            ttl_ms: self.opts.session_ttl.as_millis() as u64,
        }
        .to_bytes();
        let msg = ClientMsg::RequestV2 {
            session: SESSION_CTL,
            seq: RequestId::new(token),
            ack: 0,
            group,
            cmd: open,
        };
        let mut prefer = 0usize;
        self.send_routed(group, prefer, &msg)?;
        let mut next_retry = Instant::now() + self.opts.retry_every;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout("session open"));
            }
            if now >= next_retry {
                prefer += 1;
                self.send_routed(group, prefer, &msg)?;
                next_retry = now + self.opts.retry_every;
            }
            let wait = deadline
                .min(next_retry)
                .saturating_duration_since(now)
                .min(Duration::from_millis(50));
            match self.replies_rx.recv_timeout(wait) {
                Ok(ClientReply::ResponseV2 {
                    session: SESSION_CTL,
                    seq,
                    payload,
                    ..
                }) if seq.raw() == token => {
                    if let Some(id) = parse_open_reply(&payload) {
                        self.core.adopt_session(group, id);
                        self.last_keepalive = Instant::now();
                        // Re-send this ring's surviving in-flight
                        // requests under the new session (failover
                        // re-open path).
                        let seqs: Vec<u64> = self
                            .core
                            .inflight
                            .iter()
                            .filter(|(_, r)| r.group == group)
                            .map(|(s, _)| *s)
                            .collect();
                        for seq in seqs {
                            let _ = self.resend(seq);
                        }
                        return Ok(());
                    }
                }
                Ok(other) => {
                    let _ = self.core.on_reply(&other, &self.replica_partitions);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(Error::Timeout("all client connections closed"));
                }
            }
        }
    }

    fn resend(&mut self, seq: u64) -> Result<()> {
        let Some(req) = self.core.inflight.get(&seq) else {
            return Ok(());
        };
        let (group, cmd, pos) = (req.group, req.cmd.clone(), req.route_pos);
        let frame = self.request_frame(seq, group, cmd);
        let taken = self.send_routed(group, pos, &frame);
        if let Some(req) = self.core.inflight.get_mut(&seq) {
            req.last_sent = Instant::now();
            req.route_pos = pos.wrapping_add(1);
        }
        taken.map(|_| ())
    }

    fn resend_to(&mut self, seq: u64, node: NodeId) {
        let Some(req) = self.core.inflight.get(&seq) else {
            return;
        };
        let frame = self.request_frame(seq, req.group, req.cmd.clone());
        // Prefer the redirect target for this group from now on.
        if let Some(candidates) = self.route.get_mut(&req.group) {
            if let Some(at) = candidates.iter().position(|n| *n == node) {
                candidates.swap(0, at);
            }
        }
        if self.send_to(node, &frame).is_ok() {
            if let Some(req) = self.core.inflight.get_mut(&seq) {
                req.last_sent = Instant::now();
                req.route_pos = 0;
            }
        }
    }

    /// One pump step: waits up to `wait` for a frame, then greedily
    /// drains everything queued behind it (replies arrive in redundant
    /// bursts — one per replica per retry — and consumption must always
    /// outpace production or the pipeline wedges behind a growing
    /// backlog), feeds the core, performs the resulting actions, and
    /// fires due retries and keep-alives.
    fn pump(&mut self, wait: Duration) -> Result<()> {
        let mut first = true;
        loop {
            let reply = if first {
                match self.replies_rx.recv_timeout(wait) {
                    Ok(r) => r,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(Error::Timeout("all client connections closed"));
                    }
                }
            } else {
                match self.replies_rx.try_recv() {
                    Ok(r) => r,
                    Err(_) => break,
                }
            };
            first = false;
            let action = self.core.on_reply(&reply, &self.replica_partitions);
            match action {
                Action::Resend(seq, to) => self.resend_to(seq, to),
                Action::SessionLost(group) => {
                    // That ring's session expired or was evicted: open a
                    // new one; ensure_session re-sends the ring's
                    // in-flight requests (same seqs) under it.
                    self.core.sessions.remove(&group);
                    let deadline = Instant::now() + self.opts.timeout;
                    self.ensure_session(group, deadline)?;
                }
                Action::None | Action::Completed(_) | Action::Failed(..) => {}
            }
        }
        let now = Instant::now();
        for seq in self.core.due_for_retry(now, self.opts.retry_every) {
            let _ = self.resend(seq);
        }
        if !self.core.sessions.is_empty()
            && now.duration_since(self.last_keepalive) >= self.opts.session_ttl / 3
        {
            self.last_keepalive = now;
            let open: Vec<(RingId, u64)> = self
                .core
                .sessions
                .iter()
                .filter(|(_, s)| **s != 0)
                .map(|(r, s)| (*r, *s))
                .collect();
            for (group, session) in open {
                self.next_token += 1;
                let msg = ClientMsg::RequestV2 {
                    session: SESSION_CTL,
                    seq: RequestId::new(self.next_token),
                    ack: 0,
                    group,
                    cmd: SessionCtl::KeepAlive { session }.to_bytes(),
                };
                let _ = self.send_routed(group, 0, &msg);
            }
        }
        Ok(())
    }

    fn submit_with(
        &mut self,
        group: RingId,
        cmd: Bytes,
        need: Vec<PartitionId>,
        want_replica: Option<NodeId>,
    ) -> Result<u64> {
        let deadline = Instant::now() + self.opts.timeout;
        self.ensure_session(group, deadline)?;
        // Respect the credit window: drain completions until a slot
        // frees (replies both free slots and advance the ack).
        while !self.core.has_capacity() {
            if Instant::now() >= deadline {
                return Err(Error::Timeout("client window full"));
            }
            self.pump(Duration::from_millis(10))?;
        }
        let seq = self
            .core
            .begin(group, cmd, need, want_replica, Instant::now());
        self.resend(seq)?;
        Ok(seq)
    }

    /// Fire-and-forget submit for pipelined callers: sends the request
    /// and returns its sequence number without waiting. Completions
    /// surface through [`LiveClient::poll_reply`], possibly out of
    /// submission order. Blocks only while the credit window is full.
    ///
    /// # Errors
    ///
    /// Fails if no proposer for `group` is reachable or the window stays
    /// full past the configured timeout.
    pub fn submit(&mut self, group: RingId, cmd: Bytes) -> Result<RequestId> {
        self.submit_with(group, cmd, Vec::new(), None)
            .map(RequestId::new)
    }

    /// The next completed request, if one finishes within `timeout`.
    /// Returns the completing reply `(seq, replica, payload)`. Unlike
    /// protocol v1 there are no duplicate completions to filter: each
    /// submitted request completes exactly once.
    pub fn poll_reply(&mut self, timeout: Duration) -> Option<(RequestId, NodeId, Bytes)> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(c) = self.core.take_ready() {
                let (replica, payload) = c.replies.into_iter().next()?;
                return Some((RequestId::new(c.seq), replica, payload));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let wait = (deadline - now).min(Duration::from_millis(50));
            if self.pump(wait).is_err() {
                return None;
            }
        }
    }

    /// Blocks until `seq` finishes (or the deadline passes). A timed-out
    /// request is abandoned: the cumulative ack advances past it, which
    /// also marks any late delivery stale server-side (at-most-once for
    /// timed-out requests).
    fn wait_for(&mut self, seq: u64, context: &'static str) -> Result<Completion> {
        let deadline = Instant::now() + self.opts.timeout;
        loop {
            if let Some(c) = self.core.take_seq(seq) {
                return Ok(c);
            }
            if let Some((code, detail)) = self.core.take_failure(seq) {
                return Err(Error::Config(format!(
                    "server rejected request ({code:?}): {detail}"
                )));
            }
            let now = Instant::now();
            if now >= deadline {
                self.core.abandon(seq);
                return Err(Error::Timeout(context));
            }
            let wait = (deadline - now).min(Duration::from_millis(50));
            self.pump(wait)?;
        }
    }

    /// Submits `cmd` to `group` and waits for the first reply. Safe for
    /// non-idempotent commands: retries and failover re-sends are
    /// deduplicated by the replicated session table.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Timeout`] when no replica answers in time.
    pub fn request(&mut self, group: RingId, cmd: Bytes) -> Result<Bytes> {
        let seq = self.submit_with(group, cmd, Vec::new(), None)?;
        let c = self.wait_for(seq, "client request")?;
        Ok(c.replies.into_iter().next().expect("completed").1)
    }

    /// Submits `cmd` to `group` and waits for a reply from one *specific*
    /// replica — used to observe that a given replica (say, one that just
    /// recovered) executes and answers with up-to-date state.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Timeout`] when `replica` does not answer in
    /// time.
    pub fn request_from(&mut self, group: RingId, cmd: Bytes, replica: NodeId) -> Result<Bytes> {
        let seq = self.submit_with(group, cmd, Vec::new(), Some(replica))?;
        let c = self.wait_for(seq, "client request (specific replica)")?;
        let payload = c
            .replies
            .into_iter()
            .find(|(n, _)| *n == replica)
            .map(|(_, p)| p)
            .expect("completed on the wanted replica");
        Ok(payload)
    }

    /// Submits `cmd` to `group` and waits until every partition in
    /// `partitions` answered (pass an empty slice for "any one reply") —
    /// the completion rule of the paper's multi-partition scans (§7.2).
    /// Returns `(replica, payload)` per answering replica.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Timeout`] if the required partitions do not
    /// all answer in time.
    pub fn request_fanout(
        &mut self,
        group: RingId,
        cmd: Bytes,
        partitions: &[PartitionId],
    ) -> Result<Vec<(NodeId, Bytes)>> {
        let seq = self.submit_with(group, cmd, partitions.to_vec(), None)?;
        let c = self.wait_for(seq, "client request")?;
        Ok(c.replies)
    }
}

/// Fetches one node's metrics snapshot over the client protocol: dials
/// `addr`, sends a [`ClientMsg::StatsRequest`], and waits for the
/// matching [`ClientReply::Stats`]. No hello, no session — the stats
/// plane is a read-only side channel any connection may use.
///
/// # Errors
///
/// Fails if the node is unreachable or does not answer within `timeout`.
pub fn fetch_stats(addr: SocketAddr, timeout: Duration) -> Result<common::obs::ObsSnapshot> {
    let deadline = Instant::now() + timeout;
    let stream = TcpStream::connect_timeout(&addr, timeout.min(Duration::from_secs(2)))?;
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let token = 0x57A75;
    stream.write_all(&encode_frame(&ClientMsg::StatsRequest { token }))?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut buf = FrameBuf::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if Instant::now() >= deadline {
            return Err(Error::Timeout("stats reply"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(Error::Timeout("stats connection closed")),
            Ok(n) => {
                buf.extend(&chunk[..n]);
                while let Some(reply) = buf.try_next::<ClientReply>()? {
                    if let ClientReply::Stats { token: t, snapshot } = reply {
                        if t == token {
                            return Ok(snapshot);
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(Error::Io(e)),
        }
    }
}

fn spawn_reply_reader(mut stream: TcpStream, tx: Sender<ClientReply>) {
    std::thread::spawn(move || {
        let dbg = std::env::var_os("MRP_DEBUG").is_some();
        let mut buf = FrameBuf::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => {
                    if dbg {
                        eprintln!("[client reader] eof/err from {:?}", stream.peer_addr());
                    }
                    return;
                }
                Ok(n) => {
                    buf.extend(&chunk[..n]);
                    loop {
                        match buf.try_next::<ClientReply>() {
                            Ok(Some(reply)) => {
                                if tx.send(reply).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                if dbg {
                                    eprintln!(
                                        "[client reader] decode error {e:?} from {:?}",
                                        stream.peer_addr()
                                    );
                                }
                                return;
                            }
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring::session::frame_ok;

    fn resp(session: u64, seq: u64, from: u32, body: &'static [u8]) -> ClientReply {
        ClientReply::ResponseV2 {
            session,
            seq: RequestId::new(seq),
            from_replica: NodeId::new(from),
            payload: frame_ok(&Bytes::from_static(body)),
        }
    }

    fn parts() -> HashMap<NodeId, PartitionId> {
        [
            (NodeId::new(0), PartitionId::new(0)),
            (NodeId::new(1), PartitionId::new(0)),
            (NodeId::new(2), PartitionId::new(1)),
            (NodeId::new(3), PartitionId::new(1)),
        ]
        .into_iter()
        .collect()
    }

    fn begin(core: &mut SessionCore, group: u16) -> u64 {
        core.begin(
            RingId::new(group),
            Bytes::from_static(b"cmd"),
            Vec::new(),
            None,
            Instant::now(),
        )
    }

    /// The satellite regression for the deleted wall-clock `seq_base`
    /// hack: a straggler reply from a *previous invocation* (same client
    /// id, same seq number, different session) must never complete a new
    /// invocation's request. Under v1 both invocations shared one
    /// unstructured seq space, so only the wall-clock base kept them
    /// apart; under v2 the session echo makes the filter structural.
    #[test]
    fn straggler_reply_from_previous_session_is_ignored() {
        let mut core = SessionCore::new(8);
        core.adopt_session(RingId::new(0), 7); // this invocation's session
        let seq = begin(&mut core, 0);
        assert_eq!(seq, 1, "fresh sessions start their seq space at 1");

        // A reply to the previous invocation's seq 1 (session 3) arrives
        // late — same client id, same seq number.
        let action = core.on_reply(&resp(3, 1, 0, b"stale"), &parts());
        assert_eq!(action, Action::None);
        assert!(core.take_ready().is_none(), "straggler must not complete");
        assert!(core.inflight.contains_key(&1), "request still in flight");

        // The genuine reply (session echo matches) completes it.
        let action = core.on_reply(&resp(7, 1, 0, b"real"), &parts());
        assert_eq!(action, Action::Completed(1));
        let c = core.take_ready().expect("completed");
        assert_eq!(c.replies[0].1, Bytes::from_static(b"real"));
    }

    #[test]
    fn completions_surface_out_of_order_and_ack_is_cumulative() {
        let mut core = SessionCore::new(8);
        core.adopt_session(RingId::new(0), 1);
        let s1 = begin(&mut core, 0);
        let s2 = begin(&mut core, 0);
        let s3 = begin(&mut core, 0);
        core.on_reply(&resp(1, s3, 0, b"c"), &parts());
        core.on_reply(&resp(1, s2, 0, b"b"), &parts());
        assert_eq!(core.take_ready().unwrap().seq, s3);
        assert_eq!(core.take_ready().unwrap().seq, s2);
        assert_eq!(core.acked, 0, "ack waits for the contiguous prefix");
        core.on_reply(&resp(1, s1, 0, b"a"), &parts());
        assert_eq!(core.acked, 3, "ack jumps over the out-of-order window");
    }

    #[test]
    fn duplicate_replies_complete_once() {
        let mut core = SessionCore::new(8);
        core.adopt_session(RingId::new(0), 1);
        let seq = begin(&mut core, 0);
        assert_eq!(
            core.on_reply(&resp(1, seq, 0, b"x"), &parts()),
            Action::Completed(seq)
        );
        // Redundant replica answers after completion: dropped.
        assert_eq!(
            core.on_reply(&resp(1, seq, 1, b"x"), &parts()),
            Action::None
        );
        assert!(core.take_ready().is_some());
        assert!(core.take_ready().is_none());
    }

    #[test]
    fn fanout_completes_when_every_partition_answered() {
        let mut core = SessionCore::new(8);
        core.adopt_session(RingId::new(2), 1);
        let seq = core.begin(
            RingId::new(2),
            Bytes::from_static(b"scan"),
            vec![PartitionId::new(0), PartitionId::new(1)],
            None,
            Instant::now(),
        );
        assert_eq!(
            core.on_reply(&resp(1, seq, 0, b"p0"), &parts()),
            Action::None
        );
        // Second replica of the same partition does not finish the scan.
        assert_eq!(
            core.on_reply(&resp(1, seq, 1, b"p0"), &parts()),
            Action::None
        );
        assert_eq!(
            core.on_reply(&resp(1, seq, 2, b"p1"), &parts()),
            Action::Completed(seq)
        );
        let c = core.take_ready().unwrap();
        assert_eq!(c.replies.len(), 3, "every counted reply is kept");
    }

    #[test]
    fn window_capacity_and_credit_grants() {
        let mut core = SessionCore::new(4);
        core.adopt_session(RingId::new(0), 1);
        // The server narrows the window to 2.
        core.on_reply(&ClientReply::CreditGrant { window: 2 }, &parts());
        assert_eq!(core.window, 2);
        begin(&mut core, 0);
        begin(&mut core, 0);
        assert!(!core.has_capacity());
        // A grant beyond the client's wish is clamped.
        core.on_reply(&ClientReply::CreditGrant { window: 1000 }, &parts());
        assert_eq!(core.window, 4);
    }

    #[test]
    fn unknown_session_reply_signals_reopen_and_resubmission() {
        let mut core = SessionCore::new(8);
        core.adopt_session(RingId::new(0), 5);
        let s1 = begin(&mut core, 0);
        let s2 = begin(&mut core, 0);
        let s3 = begin(&mut core, 0);
        // s2 completes before the session is lost.
        core.on_reply(&resp(5, s2, 0, b"done"), &parts());
        let lost = ClientReply::ResponseV2 {
            session: 5,
            seq: RequestId::new(s1),
            from_replica: NodeId::new(0),
            payload: Bytes::from_static(&[ST_UNKNOWN_SESSION]),
        };
        assert_eq!(
            core.on_reply(&lost, &parts()),
            Action::SessionLost(RingId::new(0))
        );
        // Re-open: in-flight requests KEEP their seqs — callers hold
        // them as correlation handles.
        core.adopt_session(RingId::new(0), 9);
        assert_eq!(core.session_for(RingId::new(0)), 9);
        assert!(core.inflight.contains_key(&s1) && core.inflight.contains_key(&s3));
        assert_eq!(
            core.on_reply(&resp(9, s1, 0, b"again"), &parts()),
            Action::Completed(s1)
        );
        // The already-finished s2 does not wedge the cumulative ack.
        assert_eq!(
            core.on_reply(&resp(9, s3, 0, b"tail"), &parts()),
            Action::Completed(s3)
        );
        assert_eq!(core.acked, s3);
    }

    #[test]
    fn abandoned_requests_unblock_the_cumulative_ack() {
        let mut core = SessionCore::new(8);
        core.adopt_session(RingId::new(0), 1);
        let s1 = begin(&mut core, 0);
        let s2 = begin(&mut core, 0);
        core.on_reply(&resp(1, s2, 0, b"b"), &parts());
        assert_eq!(core.acked, 0);
        core.abandon(s1); // caller timed out on s1
        assert_eq!(core.acked, 2, "ack advances past the abandoned seq");
    }

    #[test]
    fn redirect_targets_the_named_node() {
        let mut core = SessionCore::new(8);
        core.adopt_session(RingId::new(3), 1);
        let seq = begin(&mut core, 3);
        let action = core.on_reply(
            &ClientReply::Redirect {
                seq: RequestId::new(seq),
                group: RingId::new(3),
                to: NodeId::new(2),
            },
            &parts(),
        );
        assert_eq!(action, Action::Resend(seq, NodeId::new(2)));
    }
}
