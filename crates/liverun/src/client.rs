//! The live network client.
//!
//! A [`LiveClient`] opens framed-TCP sessions to every serving node
//! (replicas answer clients *directly*, like the paper's UDP responses —
//! so the client must be reachable from any replica that may execute its
//! commands), routes each request to a proposer of the target group, and
//! matches replies by sequence number. Replies may arrive out of order
//! and duplicated; unanswered requests are re-sent, so commands should be
//! idempotent or tolerate re-execution (the paper's client model).

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use common::error::{Error, Result};
use common::ids::{ClientId, NodeId, PartitionId, RequestId, RingId};
use common::transport::{encode_frame, FrameBuf};
use common::wire::client::{ClientMsg, ClientReply};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// How a client finds and talks to a deployment.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Give up on a request after this long.
    pub timeout: Duration,
    /// Re-send an unanswered request this often.
    pub retry_every: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            timeout: Duration::from_secs(10),
            retry_every: Duration::from_secs(1),
        }
    }
}

/// A connected client.
pub struct LiveClient {
    id: ClientId,
    opts: ClientOptions,
    addrs: HashMap<NodeId, SocketAddr>,
    conns: HashMap<NodeId, TcpStream>,
    replies_tx: Sender<ClientReply>,
    replies_rx: Receiver<ClientReply>,
    /// Candidate proposers per multicast group, in preference order.
    route: HashMap<RingId, Vec<NodeId>>,
    /// Partition each server replica belongs to (for fan-out completion).
    replica_partitions: HashMap<NodeId, PartitionId>,
    next_seq: u64,
}

impl LiveClient {
    /// Connects to every server and opens a session on each.
    ///
    /// `route` names the proposer per group; `replica_partitions` is used
    /// to decide when multi-partition operations are complete.
    ///
    /// Connecting is best-effort per server: a deployment with one node
    /// down still has quorum, so the client comes up as long as *some*
    /// server is reachable (and reconnects to the rest lazily).
    ///
    /// # Errors
    ///
    /// Fails only when no server at all can be reached.
    pub fn connect(
        id: ClientId,
        servers: &[(NodeId, SocketAddr)],
        route: HashMap<RingId, Vec<NodeId>>,
        replica_partitions: HashMap<NodeId, PartitionId>,
        opts: ClientOptions,
    ) -> Result<Self> {
        let (replies_tx, replies_rx) = unbounded();
        // Distinct invocations (think one CLI call per command) must not
        // reuse sequence numbers under the same client id, or a straggler
        // reply to an earlier invocation's request could be mis-matched:
        // start the sequence space at the current wall-clock microsecond.
        let seq_base = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(1);
        let mut client = LiveClient {
            id,
            opts,
            addrs: servers.iter().copied().collect(),
            conns: HashMap::new(),
            replies_tx,
            replies_rx,
            route,
            replica_partitions,
            next_seq: seq_base,
        };
        let mut reached = 0usize;
        let mut last_err = None;
        let nodes: Vec<NodeId> = client.addrs.keys().copied().collect();
        for node in nodes {
            match client.open_conn(node) {
                Ok(()) => reached += 1,
                Err(e) => last_err = Some(e),
            }
        }
        if reached == 0 {
            return Err(last_err.unwrap_or(Error::Config("no servers configured".into())));
        }
        Ok(client)
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn open_conn(&mut self, node: NodeId) -> Result<()> {
        let addr = self
            .addrs
            .get(&node)
            .copied()
            .ok_or(Error::UnknownNode(node))?;
        let mut last_err: Option<std::io::Error> = None;
        for _ in 0..10 {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.write_all(&encode_frame(&ClientMsg::Hello { client: self.id }))?;
                    let reader = stream.try_clone()?;
                    spawn_reply_reader(reader, self.replies_tx.clone());
                    self.conns.insert(node, stream);
                    return Ok(());
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
        Err(Error::Io(last_err.expect("looped at least once")))
    }

    /// Re-establishes the session to `node` (after a server restart).
    ///
    /// # Errors
    ///
    /// Fails if the server cannot be reached.
    pub fn reconnect(&mut self, node: NodeId) -> Result<()> {
        self.conns.remove(&node);
        self.open_conn(node)
    }

    fn send_to(&mut self, node: NodeId, msg: &ClientMsg) -> Result<()> {
        if !self.conns.contains_key(&node) {
            self.open_conn(node)?;
        }
        let frame = encode_frame(msg);
        let broken = self
            .conns
            .get_mut(&node)
            .map(|s| s.write_all(&frame).is_err())
            .unwrap_or(true);
        if broken {
            // One reconnect attempt: the server may have restarted.
            self.conns.remove(&node);
            self.open_conn(node)?;
            self.conns
                .get_mut(&node)
                .expect("just connected")
                .write_all(&frame)?;
        }
        Ok(())
    }

    /// Sends `msg` to the first reachable proposer of `group` (members in
    /// route order); returns which node took it.
    fn send_routed(&mut self, group: RingId, msg: &ClientMsg) -> Result<NodeId> {
        let candidates = self
            .route
            .get(&group)
            .cloned()
            .ok_or_else(|| Error::Config(format!("no proposer routed for group {group}")))?;
        let mut last_err = None;
        for node in candidates {
            match self.send_to(node, msg) {
                Ok(()) => return Ok(node),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| Error::Config(format!("no proposer routed for group {group}"))))
    }

    /// Submits `cmd` to `group` and waits for the first reply.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Timeout`] when no replica answers in time.
    pub fn request(&mut self, group: RingId, cmd: Bytes) -> Result<Bytes> {
        self.request_fanout(group, cmd, &[])
            .map(|mut replies| replies.pop().expect("at least one reply").1)
    }

    /// Fire-and-forget submit for pipelined clients: sends the request and
    /// returns its sequence number without waiting. Match replies via
    /// [`LiveClient::poll_reply`].
    ///
    /// # Errors
    ///
    /// Fails if the proposer for `group` cannot be reached.
    pub fn submit(&mut self, group: RingId, cmd: Bytes) -> Result<RequestId> {
        self.next_seq += 1;
        let seq = RequestId::new(self.next_seq);
        self.send_routed(group, &ClientMsg::Request { seq, group, cmd })?;
        Ok(seq)
    }

    /// The next service response, if one arrives within `timeout`.
    /// Replicas answer redundantly (one reply per replica of the
    /// executing partition), so pipelined callers must ignore sequence
    /// numbers they already completed.
    pub fn poll_reply(&mut self, timeout: Duration) -> Option<(RequestId, NodeId, Bytes)> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.replies_rx.recv_timeout(deadline - now) {
                Ok(ClientReply::Response {
                    seq,
                    from_replica,
                    payload,
                }) => return Some((seq, from_replica, payload)),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return None;
                }
            }
        }
    }

    /// Submits `cmd` to `group` and waits for a reply from one *specific*
    /// replica — used to observe that a given replica (say, one that just
    /// recovered) executes and answers with up-to-date state.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Timeout`] when `replica` does not answer in
    /// time.
    pub fn request_from(&mut self, group: RingId, cmd: Bytes, replica: NodeId) -> Result<Bytes> {
        self.next_seq += 1;
        let seq = RequestId::new(self.next_seq);
        let msg = ClientMsg::Request { seq, group, cmd };
        self.send_routed(group, &msg)?;

        let deadline = Instant::now() + self.opts.timeout;
        let mut next_retry = Instant::now() + self.opts.retry_every;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout("client request (specific replica)"));
            }
            if now >= next_retry {
                self.send_routed(group, &msg)?;
                next_retry = now + self.opts.retry_every;
            }
            let wait = deadline
                .min(next_retry)
                .saturating_duration_since(now)
                .min(Duration::from_millis(50));
            match self.replies_rx.recv_timeout(wait) {
                Ok(ClientReply::Response {
                    seq: got,
                    from_replica,
                    payload,
                }) if got == seq && from_replica == replica => return Ok(payload),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(Error::Timeout("all client connections closed"));
                }
            }
        }
    }

    /// Submits `cmd` to `group` and waits until every partition in
    /// `partitions` answered (pass an empty slice for "any one reply") —
    /// the completion rule of the paper's multi-partition scans (§7.2).
    /// Returns `(replica, payload)` per answering partition.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Timeout`] if the required partitions do not
    /// all answer in time.
    pub fn request_fanout(
        &mut self,
        group: RingId,
        cmd: Bytes,
        partitions: &[PartitionId],
    ) -> Result<Vec<(NodeId, Bytes)>> {
        self.next_seq += 1;
        let seq = RequestId::new(self.next_seq);
        let msg = ClientMsg::Request { seq, group, cmd };
        self.send_routed(group, &msg)?;

        let deadline = Instant::now() + self.opts.timeout;
        let mut next_retry = Instant::now() + self.opts.retry_every;
        let mut answered: HashSet<PartitionId> = HashSet::new();
        let mut replied_replicas: HashSet<NodeId> = HashSet::new();
        let mut replies: Vec<(NodeId, Bytes)> = Vec::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout("client request"));
            }
            if now >= next_retry {
                // Unanswered: re-send (replicas may re-execute, as with
                // the paper's retried UDP requests).
                self.send_routed(group, &msg)?;
                next_retry = now + self.opts.retry_every;
            }
            let wait = deadline
                .min(next_retry)
                .saturating_duration_since(now)
                .min(Duration::from_millis(50));
            match self.replies_rx.recv_timeout(wait) {
                Ok(ClientReply::Response {
                    seq: got,
                    from_replica,
                    payload,
                }) => {
                    if got != seq || !replied_replicas.insert(from_replica) {
                        continue; // stale or duplicate reply
                    }
                    replies.push((from_replica, payload));
                    if partitions.is_empty() {
                        return Ok(replies);
                    }
                    if let Some(p) = self.replica_partitions.get(&from_replica) {
                        answered.insert(*p);
                    }
                    if partitions.iter().all(|p| answered.contains(p)) {
                        return Ok(replies);
                    }
                }
                Ok(ClientReply::Error { seq: got, reason }) if got == seq => {
                    return Err(Error::Config(format!("server rejected request: {reason}")));
                }
                Ok(_) => {} // Welcome / Pong / stale errors
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(Error::Timeout("all client connections closed"));
                }
            }
        }
    }
}

fn spawn_reply_reader(mut stream: TcpStream, tx: Sender<ClientReply>) {
    std::thread::spawn(move || {
        let mut buf = FrameBuf::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    buf.extend(&chunk[..n]);
                    loop {
                        match buf.try_next::<ClientReply>() {
                            Ok(Some(reply)) => {
                                if tx.send(reply).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return,
                        }
                    }
                }
            }
        }
    });
}
