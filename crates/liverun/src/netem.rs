//! Userspace per-link network shaping for live deployments.
//!
//! A geo deployment (one with `[[region]]` sections, see
//! [`crate::config::GeoSpec`]) does not let its nodes talk to each other
//! directly: [`crate::Deployment`] interposes one tiny TCP relay on every
//! *directed* peer link (and, on demand, on client links), so a 6-node
//! loopback process experiences the paper's WAN — per-link one-way
//! delay, proportional jitter, bandwidth caps, probabilistic
//! connection-killing loss and directional region partitions — while
//! the nodes themselves keep speaking plain TCP to what they believe
//! are their peers.
//!
//! The mechanics per relayed connection: a reader thread pulls chunks
//! off the inbound socket, consults the *current* link policy (policies
//! are shared state, mutable at runtime through [`NetemControl`]), asks
//! the sans-IO [`LinkShaper`] for a release time, and queues the chunk;
//! a writer thread sleeps until each chunk's release and forwards it.
//! Release times are monotone per link, so TCP byte order survives
//! shaping. Loss and partitions surface exactly the way a WAN surfaces
//! them: the connection dies and the sender's writer loop reconnects —
//! against a blocked link the reconnect is cut at accept time.
//!
//! Shaping is observable from the outside (and asserted on in tests):
//! each relayed direction counts into the *sending* node's stats
//! registry — `netem_delay_ms` (cumulative injected delay),
//! `netem_dropped` (loss kills and partition cuts) and
//! `netem_throttled_bytes` (bytes that queued behind the bandwidth
//! cap), plus `netem_to_<region>_*` per-destination variants — all
//! visible via `amcast-cli stats`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use common::error::{Error, Result};
use common::ids::{NodeId, SessionId};
use common::obs::{Counter, Obs};
use common::transport::{LinkPolicy, LinkShaper, ShapeDecision};
use common::wire::coord::{CoordEvent, CoordOk, CoordOp};
use coord::{Coord, Registry};
use crossbeam::channel::Receiver;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::config::DeploymentConfig;
use crate::node::{spawn_listener, ListenerHandle};

/// Chunk granularity of the relays: also the quantum the bandwidth
/// serialization clock advances by (16 KiB at 1 Gbps ≈ 128 µs).
const CHUNK: usize = 16 * 1024;

/// Shared mutable world state: placements, live policies, stats sinks.
struct Shared {
    region_of: HashMap<NodeId, String>,
    /// Where the coordination service lives (`coord_region`).
    coord_region: String,
    policies: Mutex<HashMap<(String, String), LinkPolicy>>,
    obs: Mutex<HashMap<NodeId, Obs>>,
    seed: AtomicU64,
}

impl Shared {
    fn policy(&self, from: &str, to: &str) -> LinkPolicy {
        self.policies
            .lock()
            .expect("netem lock")
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or_else(LinkPolicy::unshaped)
    }

    fn region(&self, node: NodeId) -> String {
        self.region_of.get(&node).cloned().unwrap_or_default()
    }

    fn obs_of(&self, node: NodeId) -> Obs {
        self.obs
            .lock()
            .expect("netem lock")
            .get(&node)
            .cloned()
            .unwrap_or_else(|| Obs::for_node(node.raw()))
    }

    fn next_seed(&self) -> u64 {
        self.seed.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed)
    }
}

/// Runtime control over a deployment's link policies — how scenarios
/// degrade and heal the WAN mid-run. Cheap to clone; all clones steer
/// the same deployment.
#[derive(Clone)]
pub struct NetemControl {
    shared: Arc<Shared>,
}

impl NetemControl {
    /// The current policy of the directed link `from` → `to`.
    pub fn policy(&self, from: &str, to: &str) -> LinkPolicy {
        self.shared.policy(from, to)
    }

    /// Replaces the policy of the directed link `from` → `to`. Existing
    /// connections pick the change up on their next chunk.
    pub fn set_link(&self, from: &str, to: &str, policy: LinkPolicy) {
        self.shared
            .policies
            .lock()
            .expect("netem lock")
            .insert((from.to_string(), to.to_string()), policy);
    }

    /// Blocks or unblocks the directed link `from` → `to` (asymmetric
    /// partitions: a region that can send but not hear, or vice versa).
    pub fn set_blocked(&self, from: &str, to: &str, blocked: bool) {
        let mut map = self.shared.policies.lock().expect("netem lock");
        let entry = map
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(LinkPolicy::unshaped);
        entry.blocked = blocked;
    }

    /// Partitions `region` off: both directions of every link between it
    /// and any *other* region block. Intra-region traffic keeps flowing.
    pub fn partition(&self, region: &str) {
        self.set_region_blocked(region, true);
    }

    /// Heals a [`NetemControl::partition`]: unblocks both directions of
    /// every link between `region` and the rest of the world.
    pub fn heal(&self, region: &str) {
        self.set_region_blocked(region, false);
    }

    fn set_region_blocked(&self, region: &str, blocked: bool) {
        let mut map = self.shared.policies.lock().expect("netem lock");
        for ((from, to), policy) in map.iter_mut() {
            if (from == region) != (to == region) {
                policy.blocked = blocked;
            }
        }
    }

    /// The region `node` was placed in ("" when unplaced).
    pub fn region_of(&self, node: NodeId) -> String {
        self.shared.region(node)
    }
}

/// The coordination service as seen from one region of the shaped WAN.
///
/// The paper's deployments reach their ZooKeeper ensemble over the same
/// wide-area network the rings use — a region cut off from the ensemble
/// loses failure reporting, configuration reads and session keep-alives
/// along with everything else. An in-process [`coord::Registry`] would
/// quietly bypass the fabric, letting a minority-partitioned replica
/// keep evicting healthy majority members via `report_failure` until the
/// rings wedge (both sides of a partition accusing each other is exactly
/// the split-brain the ensemble placement is meant to arbitrate). This
/// wrapper closes that hole: every call checks the current link state
/// between the caller's region and [`GeoSpec::coord_region`]
/// (`crate::config::GeoSpec`) and fails while either direction is
/// blocked. Watch events stay connected — they model the client library
/// draining its backlog after the partition heals, and a stale config
/// delivered late is harmless (epochs fence it).
struct ShapedCoord {
    inner: Arc<dyn Coord>,
    shared: Arc<Shared>,
    region: String,
}

impl std::fmt::Debug for ShapedCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShapedCoord")
            .field("region", &self.region)
            .field("coord_region", &self.shared.coord_region)
            .finish_non_exhaustive()
    }
}

impl Coord for ShapedCoord {
    fn call(&self, op: CoordOp) -> Result<CoordOk> {
        let coord = &self.shared.coord_region;
        if self.shared.policy(&self.region, coord).blocked
            || self.shared.policy(coord, &self.region).blocked
        {
            // What a real ensemble looks like across a cut WAN: the
            // request never completes.
            return Err(Error::Timeout("coordination service (region partitioned)"));
        }
        self.inner.call(op)
    }

    fn watch(&self) -> Receiver<CoordEvent> {
        self.inner.watch()
    }

    fn session(&self) -> Option<SessionId> {
        self.inner.session()
    }
}

/// Where a relayed connection originates: a deployment node, or a
/// client observing the deployment from inside some region.
enum LinkEnd {
    Node(NodeId),
    Client(String),
}

/// The live shaping fabric of one deployment: one relay listener per
/// directed peer link plus lazily created client-side relays.
pub struct Netem {
    shared: Arc<Shared>,
    peer_proxies: HashMap<(NodeId, NodeId), SocketAddr>,
    client_proxies: Mutex<HashMap<(String, NodeId), SocketAddr>>,
    client_targets: HashMap<NodeId, SocketAddr>,
    listeners: Mutex<Vec<ListenerHandle>>,
}

impl Netem {
    /// Builds the fabric for `config` (which must carry a geography):
    /// binds one ephemeral relay listener per directed pair of placed
    /// nodes. Nodes outside every region keep their direct links.
    ///
    /// # Errors
    ///
    /// Fails when `config` has no `[[region]]` sections or a relay
    /// listener cannot bind.
    pub fn start(config: &DeploymentConfig) -> Result<Netem> {
        let geo = config
            .geo
            .as_ref()
            .ok_or_else(|| Error::Config("netem needs [[region]] sections".into()))?;
        let region_of: HashMap<NodeId, String> = config
            .nodes
            .iter()
            .filter_map(|n| geo.region_of(n.id).map(|r| (n.id, r.to_string())))
            .collect();
        let policies = geo
            .links()
            .map(|(a, b, p)| ((a.to_string(), b.to_string()), p))
            .collect();
        let shared = Arc::new(Shared {
            region_of,
            coord_region: geo.coord_region.clone(),
            policies: Mutex::new(policies),
            obs: Mutex::new(HashMap::new()),
            seed: AtomicU64::new(0x5eed_ca57),
        });
        let mut peer_proxies = HashMap::new();
        let mut listeners = Vec::new();
        for from in &config.nodes {
            for to in &config.nodes {
                if from.id == to.id
                    || !shared.region_of.contains_key(&from.id)
                    || !shared.region_of.contains_key(&to.id)
                {
                    continue;
                }
                let addr = Self::spawn_proxy(
                    &shared,
                    &mut listeners,
                    LinkEnd::Node(from.id),
                    to.id,
                    to.peer_addr,
                )?;
                peer_proxies.insert((from.id, to.id), addr);
            }
        }
        Ok(Netem {
            shared,
            peer_proxies,
            client_proxies: Mutex::new(HashMap::new()),
            client_targets: config.nodes.iter().map(|n| (n.id, n.client_addr)).collect(),
            listeners: Mutex::new(listeners),
        })
    }

    fn spawn_proxy(
        shared: &Arc<Shared>,
        listeners: &mut Vec<ListenerHandle>,
        src: LinkEnd,
        dst: NodeId,
        target: SocketAddr,
    ) -> Result<SocketAddr> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| Error::Config(format!("netem relay bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Config(format!("netem relay addr: {e}")))?;
        let name = match &src {
            LinkEnd::Node(id) => format!("netem-{}-{}", id.raw(), dst.raw()),
            LinkEnd::Client(region) => format!("netem-client-{region}-{}", dst.raw()),
        };
        // The sender's first-ever connect is special: before the link has
        // ever worked the relay dials the real target with patient
        // retries (deployment still launching), after that a dead target
        // cuts the connection immediately — mirroring the sender's own
        // hold-then-drop reconnect semantics in `peer_writer_loop`.
        let ever = Arc::new(AtomicBool::new(false));
        let src = Arc::new(src);
        let shared2 = Arc::clone(shared);
        let handle = spawn_listener(listener, name, move |conn| {
            let shared = Arc::clone(&shared2);
            let ever = Arc::clone(&ever);
            let src = Arc::clone(&src);
            std::thread::Builder::new()
                .name("netem-relay".into())
                .spawn(move || relay(conn, target, shared, &src, dst, &ever))
                .expect("spawn netem relay");
        });
        listeners.push(handle);
        Ok(addr)
    }

    /// A runtime control handle for this fabric.
    pub fn control(&self) -> NetemControl {
        NetemControl {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Registers `node`'s stats registry: its relayed links count into
    /// these counters. Called by the deployment as it starts each node.
    pub fn attach_obs(&self, node: NodeId, obs: Obs) {
        self.shared
            .obs
            .lock()
            .expect("netem lock")
            .insert(node, obs);
    }

    /// The relay address node `from` should dial instead of `to`'s real
    /// peer address (`None` when the pair is unshaped).
    pub fn peer_addr(&self, from: NodeId, to: NodeId) -> Option<SocketAddr> {
        self.peer_proxies.get(&(from, to)).copied()
    }

    /// The relay address a client *in* `from_region` should use to reach
    /// `node`'s client listener; created on first use. Both directions
    /// of the client link are shaped and counted against `node`.
    ///
    /// # Errors
    ///
    /// Fails for unknown nodes or when the relay cannot bind.
    pub fn client_addr(&self, from_region: &str, node: NodeId) -> Result<SocketAddr> {
        let key = (from_region.to_string(), node);
        if let Some(addr) = self.client_proxies.lock().expect("netem lock").get(&key) {
            return Ok(*addr);
        }
        let target = *self
            .client_targets
            .get(&node)
            .ok_or_else(|| Error::Config(format!("netem: unknown node {node}")))?;
        let mut listeners = self.listeners.lock().expect("netem lock");
        let addr = Self::spawn_proxy(
            &self.shared,
            &mut listeners,
            LinkEnd::Client(from_region.to_string()),
            node,
            target,
        )?;
        self.client_proxies
            .lock()
            .expect("netem lock")
            .insert(key, addr);
        Ok(addr)
    }

    /// Wraps `registry` so that `node` reaches the coordination service
    /// through the shaped WAN: calls fail while the node's region is
    /// partitioned from `coord_region` (see `ShapedCoord`). Unplaced
    /// nodes keep the registry as-is.
    pub fn shaped_registry(&self, node: NodeId, registry: &Registry) -> Registry {
        let region = self.shared.region(node);
        if region.is_empty() {
            return registry.clone();
        }
        Registry::from_backend(Arc::new(ShapedCoord {
            inner: Arc::clone(registry.backend()),
            shared: Arc::clone(&self.shared),
            region,
        }))
    }

    /// Stops every relay listener. In-flight relay threads die with
    /// their connections.
    pub fn stop(&self) {
        for handle in self.listeners.lock().expect("netem lock").drain(..) {
            handle.stop();
        }
    }
}

/// Per-direction stats sinks: the aggregate triple plus the
/// per-destination-region variants, all in the sending side's registry.
#[derive(Clone)]
struct PipeCounters {
    delay_ms: Counter,
    dropped: Counter,
    throttled: Counter,
    to_delay_ms: Counter,
    to_dropped: Counter,
    to_throttled: Counter,
}

impl PipeCounters {
    fn new(obs: &Obs, to_region: &str) -> PipeCounters {
        let slug = to_region.replace('-', "_");
        PipeCounters {
            delay_ms: obs.counter("netem_delay_ms"),
            dropped: obs.counter("netem_dropped"),
            throttled: obs.counter("netem_throttled_bytes"),
            to_delay_ms: obs.counter(&format!("netem_to_{slug}_delay_ms")),
            to_dropped: obs.counter(&format!("netem_to_{slug}_dropped")),
            to_throttled: obs.counter(&format!("netem_to_{slug}_throttled_bytes")),
        }
    }

    fn note(&self, d: &ShapeDecision, bytes: usize) {
        let ms = d.delay.as_millis() as u64;
        self.delay_ms.add(ms);
        self.to_delay_ms.add(ms);
        if d.throttled {
            self.throttled.add(bytes as u64);
            self.to_throttled.add(bytes as u64);
        }
    }

    fn drop_one(&self) {
        self.dropped.inc();
        self.to_dropped.inc();
    }
}

/// Serves one accepted connection of the `src` → `dst` link: dials the
/// real target, then shapes both directions until either side closes.
fn relay(
    inbound: TcpStream,
    target: SocketAddr,
    shared: Arc<Shared>,
    src: &LinkEnd,
    dst: NodeId,
    ever: &AtomicBool,
) {
    let dst_region = shared.region(dst);
    let (src_region, fwd_obs) = match src {
        LinkEnd::Node(id) => (shared.region(*id), shared.obs_of(*id)),
        // Client links have no registry of their own; both directions
        // count against the server node they shape.
        LinkEnd::Client(region) => (region.clone(), shared.obs_of(dst)),
    };
    let fwd = PipeCounters::new(&fwd_obs, &dst_region);
    let outbound = loop {
        if shared.policy(&src_region, &dst_region).blocked {
            // Partitioned: cut the reconnect attempt at the door.
            fwd.drop_one();
            let _ = inbound.shutdown(Shutdown::Both);
            return;
        }
        match TcpStream::connect_timeout(&target, Duration::from_millis(250)) {
            Ok(s) => break s,
            Err(_) if !ever.load(Ordering::SeqCst) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // The link worked before, so the target is down (killed
                // node): fail fast and let the sender back off.
                let _ = inbound.shutdown(Shutdown::Both);
                return;
            }
        }
    };
    ever.store(true, Ordering::SeqCst);
    let _ = inbound.set_nodelay(true);
    let _ = outbound.set_nodelay(true);
    let rev = PipeCounters::new(&shared.obs_of(dst), &src_region);
    let (Ok(in_rd), Ok(out_rd)) = (inbound.try_clone(), outbound.try_clone()) else {
        return;
    };
    shape_pipe(
        in_rd,
        outbound,
        Arc::clone(&shared),
        src_region.clone(),
        dst_region.clone(),
        fwd,
        shared.next_seed(),
    );
    shape_pipe(
        out_rd,
        inbound,
        Arc::clone(&shared),
        dst_region,
        src_region,
        rev,
        shared.next_seed(),
    );
}

/// Shapes one direction of a relayed connection: a reader thread stamps
/// each chunk with its release time, a writer thread forwards it then.
/// Loss and partition cuts close the sockets; the peer direction's
/// threads notice through the resulting EOF/write failures.
fn shape_pipe(
    mut rd: TcpStream,
    mut wr: TcpStream,
    shared: Arc<Shared>,
    from: String,
    to: String,
    counters: PipeCounters,
    seed: u64,
) {
    let (tx, rx) = crossbeam::channel::bounded::<(bytes::Bytes, Instant)>(1024);
    std::thread::Builder::new()
        .name("netem-shape-rd".into())
        .spawn(move || {
            let mut shaper = LinkShaper::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut chunk = vec![0u8; CHUNK];
            loop {
                let n = match rd.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                let policy = shared.policy(&from, &to);
                if policy.blocked
                    || (policy.loss_pct > 0 && rng.random_range(0u32..100) < policy.loss_pct)
                {
                    // Kill the connection the way a WAN would: the
                    // sender sees a reset and reconnects (into a closed
                    // door while the link stays blocked).
                    counters.drop_one();
                    break;
                }
                let d = shaper.shape(Instant::now(), n, &policy, rng.random::<f64>());
                counters.note(&d, n);
                if tx
                    .send((bytes::Bytes::copy_from_slice(&chunk[..n]), d.release))
                    .is_err()
                {
                    break;
                }
            }
            let _ = rd.shutdown(Shutdown::Both);
            // Dropping tx lets the writer drain what was already "on the
            // wire", then close.
        })
        .expect("spawn netem reader");
    std::thread::Builder::new()
        .name("netem-shape-wr".into())
        .spawn(move || {
            while let Ok((buf, release)) = rx.recv() {
                let now = Instant::now();
                if release > now {
                    std::thread::sleep(release - now);
                }
                if wr.write_all(&buf).is_err() {
                    break;
                }
            }
            let _ = wr.shutdown(Shutdown::Both);
        })
        .expect("spawn netem writer");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{generate_localhost_mrpstore, with_geo};

    /// A two-node world with custom region names 40 ms apart; node 1's
    /// peer listener is played by the test itself.
    fn test_netem(base_port: u16) -> (Netem, DeploymentConfig) {
        let base = generate_localhost_mrpstore(1, 2, base_port, None);
        let mut doc = with_geo(&base, &[("left", &[0]), ("right", &[1])], 100);
        doc.push_str("\n[[link]]\nfrom = \"left\"\nto = \"right\"\nrtt_ms = 40\n");
        let config = DeploymentConfig::parse(&doc).unwrap();
        let netem = Netem::start(&config).unwrap();
        (netem, config)
    }

    #[test]
    fn relays_shape_and_count_delay() {
        let (netem, config) = test_netem(7940);
        let obs = Obs::for_node(0);
        netem.attach_obs(NodeId::new(0), obs.clone());
        let target = TcpListener::bind(config.nodes[1].peer_addr).unwrap();
        let proxy = netem.peer_addr(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_ne!(proxy, config.nodes[1].peer_addr);

        let mut sender = TcpStream::connect(proxy).unwrap();
        let started = Instant::now();
        sender.write_all(b"ping").unwrap();
        let (mut accepted, _) = target.accept().unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        let elapsed = started.elapsed();
        assert_eq!(&buf, b"ping");
        // One-way delay of the 40 ms RTT link, modulo jitter.
        assert!(
            elapsed >= Duration::from_millis(20),
            "arrived in {elapsed:?}"
        );
        let snap = obs.snapshot();
        assert!(snap.counter("netem_delay_ms").unwrap_or(0) >= 20);
        assert!(snap.counter("netem_to_right_delay_ms").unwrap_or(0) >= 20);

        // The reverse direction counts against node 1 (attached late —
        // relays resolve the registry per connection).
        netem.stop();
    }

    #[test]
    fn partition_cuts_and_heal_restores() {
        let (netem, config) = test_netem(7950);
        let obs = Obs::for_node(0);
        netem.attach_obs(NodeId::new(0), obs.clone());
        let target = TcpListener::bind(config.nodes[1].peer_addr).unwrap();
        let proxy = netem.peer_addr(NodeId::new(0), NodeId::new(1)).unwrap();
        let control = netem.control();

        // Establish the link once so the relay enters fail-fast mode.
        let mut sender = TcpStream::connect(proxy).unwrap();
        sender.write_all(b"hi").unwrap();
        let (mut accepted, _) = target.accept().unwrap();
        let mut buf = [0u8; 2];
        accepted.read_exact(&mut buf).unwrap();

        control.partition("right");
        assert!(control.policy("left", "right").blocked);
        assert!(control.policy("right", "left").blocked);
        // The live connection is cut on the next chunk...
        let _ = sender.write_all(b"xx");
        let mut probe = [0u8; 1];
        assert_eq!(accepted.read(&mut probe).unwrap_or(0), 0, "cut to EOF");
        // ...and reconnects die at the door.
        let mut again = TcpStream::connect(proxy).unwrap();
        let _ = again.write_all(b"yy");
        assert_eq!(again.read(&mut probe).unwrap_or(0), 0);

        control.heal("right");
        assert!(!control.policy("left", "right").blocked);
        let mut sender = TcpStream::connect(proxy).unwrap();
        sender.write_all(b"ok").unwrap();
        let (mut accepted, _) = target.accept().unwrap();
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ok");

        let snap = obs.snapshot();
        assert!(snap.counter("netem_dropped").unwrap_or(0) >= 1);
        netem.stop();
    }

    /// A partitioned region loses the coordination service along with
    /// its peer links — otherwise a minority replica keeps evicting
    /// healthy members via an out-of-band `report_failure` and the
    /// mutual-accusation race can hand a ring to the partitioned side
    /// (both sides accusing each other until one ends up sole member).
    #[test]
    fn partition_cuts_coordination_access() {
        let (netem, config) = test_netem(7960);
        let control = netem.control();
        let registry = Registry::new();
        let members = vec![NodeId::new(0), NodeId::new(1)];
        let cfg =
            coord::RingConfig::new(common::ids::RingId::new(0), members.clone(), members).unwrap();
        registry.register_ring(cfg).unwrap();

        // coord_region defaults to the first declared region ("left").
        assert_eq!(config.geo.as_ref().unwrap().coord_region, "left");
        let left = netem.shaped_registry(NodeId::new(0), &registry);
        let right = netem.shaped_registry(NodeId::new(1), &registry);
        assert!(left.ring(common::ids::RingId::new(0)).is_ok());
        assert!(right.ring(common::ids::RingId::new(0)).is_ok());

        control.partition("right");
        // The cut-off region can neither read config nor evict anyone;
        // the coordination-side region keeps full access.
        assert!(right.ring(common::ids::RingId::new(0)).is_err());
        assert!(right
            .report_failure(
                common::ids::RingId::new(0),
                NodeId::new(0),
                common::ids::Epoch::new(1),
            )
            .is_err());
        assert!(left.ring(common::ids::RingId::new(0)).is_ok());

        control.heal("right");
        assert!(right.ring(common::ids::RingId::new(0)).is_ok());
        netem.stop();
    }
}
