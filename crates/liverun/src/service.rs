//! Service-level client conveniences: MRP-Store and dLog operations over
//! a [`LiveClient`], with the routing rules the paper prescribes — every
//! client knows the partitioning scheme and sends single-partition
//! commands to the partition's group, multi-partition operations to the
//! shared group (§6.1, §7.2).

use std::collections::HashMap;

use bytes::Bytes;
use common::error::{Error, Result};
use common::ids::{ClientId, PartitionId, RingId};
use common::wire::Wire;
use dlog::{LogCommand, LogResponse};
use mrpstore::{KvCommand, KvResponse, Partitioning};

use crate::client::{ClientOptions, LiveClient};
use crate::config::{DeploymentConfig, ServiceKind};

/// Builds a [`LiveClient`] for `config`, routing each ring to its first
/// configured member. The exactly-once session rides the deployment's
/// global ring (the one every replica subscribes to), so session opens
/// and keep-alives reach every partition.
fn connect_routed(
    config: &DeploymentConfig,
    id: ClientId,
    opts: ClientOptions,
) -> Result<LiveClient> {
    let servers: Vec<_> = config.nodes.iter().map(|n| (n.id, n.client_addr)).collect();
    let route: HashMap<RingId, _> = config
        .rings
        .iter()
        .map(|r| (r.id, r.members.clone()))
        .collect();
    let replica_partitions = config
        .nodes
        .iter()
        .filter_map(|n| n.partition.map(|p| (n.id, p)))
        .collect();
    LiveClient::connect(
        id,
        &servers,
        route,
        replica_partitions,
        config.global_ring(),
        opts,
    )
}

/// An MRP-Store client: put/get/delete routed by the hash scheme, scans
/// fanned out over the global ring and merged.
pub struct StoreClient {
    inner: LiveClient,
    scheme: Partitioning,
    global: RingId,
    partitions: Vec<PartitionId>,
}

impl StoreClient {
    /// Connects to an MRP-Store deployment.
    ///
    /// # Errors
    ///
    /// Fails if `config` is not an MRP-Store deployment or a server is
    /// unreachable.
    pub fn connect(config: &DeploymentConfig, id: ClientId, opts: ClientOptions) -> Result<Self> {
        let ServiceKind::MrpStore { partitions } = config.service else {
            return Err(Error::Config("deployment does not run mrpstore".into()));
        };
        Ok(StoreClient {
            inner: connect_routed(config, id, opts)?,
            scheme: Partitioning::Hash { partitions },
            global: config.global_ring(),
            partitions: (0..partitions).map(PartitionId::new).collect(),
        })
    }

    /// The underlying transport client.
    pub fn raw(&mut self) -> &mut LiveClient {
        &mut self.inner
    }

    fn exec_single(&mut self, cmd: &KvCommand) -> Result<KvResponse> {
        let partition = self.scheme.partition_of(cmd.key());
        let ring = RingId::new(partition.raw());
        let raw = self.inner.request(ring, cmd.to_bytes())?;
        KvResponse::decode(&mut raw.clone()).map_err(Error::Wire)
    }

    /// `insert(k, v)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn insert(&mut self, key: &str, value: Bytes) -> Result<KvResponse> {
        self.exec_single(&KvCommand::Insert {
            key: key.to_string(),
            value,
        })
    }

    /// `update(k, v)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn update(&mut self, key: &str, value: Bytes) -> Result<KvResponse> {
        self.exec_single(&KvCommand::Update {
            key: key.to_string(),
            value,
        })
    }

    /// `read(k)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn read(&mut self, key: &str) -> Result<Option<Bytes>> {
        match self.exec_single(&KvCommand::Read {
            key: key.to_string(),
        })? {
            KvResponse::Value(v) => Ok(v),
            other => Err(Error::Config(format!("unexpected read reply {other:?}"))),
        }
    }

    /// `delete(k)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn delete(&mut self, key: &str) -> Result<KvResponse> {
        self.exec_single(&KvCommand::Delete {
            key: key.to_string(),
        })
    }

    /// `add(k, d)`: increments the counter at `k` and returns its new
    /// value. Non-idempotent — safe here because the session layer
    /// executes retried commands exactly once.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn add(&mut self, key: &str, delta: u64) -> Result<u64> {
        match self.exec_single(&KvCommand::Add {
            key: key.to_string(),
            delta,
        })? {
            KvResponse::Counter(v) => Ok(v),
            other => Err(Error::Config(format!("unexpected add reply {other:?}"))),
        }
    }

    /// `scan(from, to)`: multicast on the global ring, answered by every
    /// partition, merged and sorted here (paper §7.2).
    ///
    /// # Errors
    ///
    /// Fails on timeout (some partition did not answer) or malformed
    /// replies.
    pub fn scan(&mut self, from: &str, to: &str) -> Result<Vec<(String, Bytes)>> {
        let cmd = KvCommand::Scan {
            from: from.to_string(),
            to: to.to_string(),
        };
        let partitions = self.partitions.clone();
        let replies = self
            .inner
            .request_fanout(self.global, cmd.to_bytes(), &partitions)?;
        let mut merged = Vec::new();
        for (_, raw) in replies {
            match KvResponse::decode(&mut raw.clone()).map_err(Error::Wire)? {
                KvResponse::Entries(entries) => merged.extend(entries),
                other => {
                    return Err(Error::Config(format!("unexpected scan reply {other:?}")));
                }
            }
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        merged.dedup_by(|a, b| a.0 == b.0);
        Ok(merged)
    }
}

/// A dLog client: appends routed per log, multi-appends on the shared
/// ring.
pub struct LogClient {
    inner: LiveClient,
    global: RingId,
}

impl LogClient {
    /// Connects to a dLog deployment.
    ///
    /// # Errors
    ///
    /// Fails if `config` is not a dLog deployment or a server is
    /// unreachable.
    pub fn connect(config: &DeploymentConfig, id: ClientId, opts: ClientOptions) -> Result<Self> {
        let ServiceKind::Dlog { .. } = config.service else {
            return Err(Error::Config("deployment does not run dlog".into()));
        };
        Ok(LogClient {
            inner: connect_routed(config, id, opts)?,
            global: config.global_ring(),
        })
    }

    fn exec(&mut self, ring: RingId, cmd: &LogCommand) -> Result<LogResponse> {
        let raw = self.inner.request(ring, cmd.to_bytes())?;
        LogResponse::decode(&mut raw.clone()).map_err(Error::Wire)
    }

    /// `append(l, v)`: returns the assigned position.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn append(&mut self, log: u16, value: Bytes) -> Result<u64> {
        match self.exec(RingId::new(log), &LogCommand::Append { log, value })? {
            LogResponse::Appended(positions) => positions
                .iter()
                .find(|(l, _)| *l == log)
                .map(|(_, p)| *p)
                .ok_or_else(|| Error::Config("append reply missing log".into())),
            other => Err(Error::Config(format!("unexpected append reply {other:?}"))),
        }
    }

    /// `multi-append(L, v)`: atomic append to several logs via the shared
    /// ring; returns `(log, position)` pairs from the answering replica.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn multi_append(&mut self, logs: Vec<u16>, value: Bytes) -> Result<Vec<(u16, u64)>> {
        match self.exec(self.global, &LogCommand::MultiAppend { logs, value })? {
            LogResponse::Appended(positions) => Ok(positions),
            other => Err(Error::Config(format!(
                "unexpected multi-append reply {other:?}"
            ))),
        }
    }

    /// `read(l, p)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn read(&mut self, log: u16, pos: u64) -> Result<Option<Bytes>> {
        match self.exec(RingId::new(log), &LogCommand::Read { log, pos })? {
            LogResponse::Value(v) => Ok(v),
            other => Err(Error::Config(format!("unexpected read reply {other:?}"))),
        }
    }
}
