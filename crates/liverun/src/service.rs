//! Service-level client conveniences: MRP-Store and dLog operations over
//! a [`LiveClient`], with the routing rules the paper prescribes — every
//! client knows the partitioning scheme and sends single-partition
//! commands to the partition's group, multi-partition operations to the
//! shared group (§6.1, §7.2).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use common::error::{Error, Result};
use common::ids::{ClientId, PartitionId, RingId};
use common::wire::Wire;
use dlog::{LogCommand, LogResponse};
use mrpstore::{KvCommand, KvResponse, Partitioning};
use multiring::route::{Destination, Route};

use crate::client::{ClientOptions, LiveClient};
use crate::config::{DeploymentConfig, ServiceKind};

/// Builds a [`LiveClient`] for `config`, routing each ring to its first
/// configured member. Exactly-once sessions are opened lazily per home
/// ring — a client touching only one partition opens one session on that
/// partition's own ring and never involves the others.
fn connect_routed(
    config: &DeploymentConfig,
    id: ClientId,
    opts: ClientOptions,
) -> Result<LiveClient> {
    let servers: Vec<_> = config.nodes.iter().map(|n| (n.id, n.client_addr)).collect();
    let route: HashMap<RingId, _> = config
        .rings
        .iter()
        .map(|r| (r.id, r.members.clone()))
        .collect();
    let replica_partitions = config
        .nodes
        .iter()
        .filter_map(|n| n.partition.map(|p| (n.id, p)))
        .collect();
    LiveClient::connect(id, &servers, route, replica_partitions, opts)
}

/// [`Route`] over an MRP-Store partitioning scheme: single-key commands
/// go to their partition's own ring (ring id == partition id, the
/// genuine fast path), range and migration-control commands fan out on
/// the shared global ring.
pub struct KvRouter {
    /// The (version-stamped) key-placement scheme.
    pub scheme: Partitioning,
    /// The deployment's shared ring every partition subscribes to.
    pub global: RingId,
}

impl Route for KvRouter {
    fn route(&self, cmd: &Bytes) -> Destination {
        match KvCommand::decode(&mut cmd.clone()) {
            Ok(cmd) if cmd.is_single_key() => {
                Destination::One(RingId::new(self.scheme.partition_of(cmd.key()).raw()))
            }
            Ok(cmd) => Destination::Fanout {
                ring: self.global,
                partitions: self.scheme.partitions_for(&cmd),
            },
            // Undecodable bytes: the global ring reaches everyone, so
            // whatever replica logic rejects them sees them.
            Err(_) => Destination::Fanout {
                ring: self.global,
                partitions: Vec::new(),
            },
        }
    }
}

/// An MRP-Store client: put/get/delete routed by the partitioning
/// scheme to the owning partition's own ring, scans fanned out over the
/// global ring and merged. Tracks the version-stamped partition map:
/// [`KvResponse::Moved`] answers refresh it mid-flight, so clients
/// re-route automatically after a live range migration.
pub struct StoreClient {
    inner: LiveClient,
    router: KvRouter,
    version: u64,
    partitions: Vec<PartitionId>,
    op_timeout: Duration,
}

impl StoreClient {
    /// Connects to an MRP-Store deployment.
    ///
    /// # Errors
    ///
    /// Fails if `config` is not an MRP-Store deployment or a server is
    /// unreachable.
    pub fn connect(config: &DeploymentConfig, id: ClientId, opts: ClientOptions) -> Result<Self> {
        let ServiceKind::MrpStore { partitions } = config.service else {
            return Err(Error::Config("deployment does not run mrpstore".into()));
        };
        let op_timeout = opts.timeout;
        Ok(StoreClient {
            inner: connect_routed(config, id, opts)?,
            router: KvRouter {
                scheme: config.initial_scheme().expect("mrpstore deployment"),
                global: config.global_ring(),
            },
            version: 0,
            partitions: (0..partitions).map(PartitionId::new).collect(),
            op_timeout,
        })
    }

    /// The underlying transport client.
    pub fn raw(&mut self) -> &mut LiveClient {
        &mut self.inner
    }

    /// The partition-map version this client last adopted (0 until a
    /// migration's `Moved` redirect or a map refresh bumps it).
    pub fn map_version(&self) -> u64 {
        self.version
    }

    /// The key-placement scheme the client currently routes by.
    pub fn scheme(&self) -> &Partitioning {
        &self.router.scheme
    }

    /// Re-reads the partition map from the replicas behind `ring` and
    /// adopts it if newer than the local copy.
    fn refresh_map(&mut self, ring: RingId) -> Result<()> {
        let raw = self.inner.request(ring, KvCommand::GetMap.to_bytes())?;
        match KvResponse::decode(&mut raw.clone()).map_err(Error::Wire)? {
            KvResponse::Map { version, scheme } => {
                if version > self.version {
                    self.router.scheme =
                        Partitioning::decode(&mut scheme.clone()).map_err(Error::Wire)?;
                    self.version = version;
                }
                Ok(())
            }
            other => Err(Error::Config(format!("unexpected map reply {other:?}"))),
        }
    }

    /// Executes a single-key command on the owning partition's ring,
    /// transparently following migrations: `Moved` refreshes the map and
    /// re-routes, `Busy` (the key's range is frozen mid-migration) backs
    /// off and retries. Both are deterministic non-executing refusals, so
    /// each retry is a fresh exactly-once request.
    fn exec_single(&mut self, cmd: &KvCommand) -> Result<KvResponse> {
        let deadline = Instant::now() + self.op_timeout;
        loop {
            let ring = self.router.route(&cmd.to_bytes()).ring();
            let raw = self.inner.request(ring, cmd.to_bytes())?;
            match KvResponse::decode(&mut raw.clone()).map_err(Error::Wire)? {
                KvResponse::Moved { .. } => {
                    self.refresh_map(ring)?;
                }
                KvResponse::Busy => {
                    if Instant::now() >= deadline {
                        return Err(Error::Timeout("key range frozen by migration"));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => return Ok(other),
            }
            if Instant::now() >= deadline {
                return Err(Error::Timeout("migration retry budget exhausted"));
            }
        }
    }

    /// `insert(k, v)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn insert(&mut self, key: &str, value: Bytes) -> Result<KvResponse> {
        self.exec_single(&KvCommand::Insert {
            key: key.to_string(),
            value,
        })
    }

    /// `update(k, v)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn update(&mut self, key: &str, value: Bytes) -> Result<KvResponse> {
        self.exec_single(&KvCommand::Update {
            key: key.to_string(),
            value,
        })
    }

    /// `read(k)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn read(&mut self, key: &str) -> Result<Option<Bytes>> {
        match self.exec_single(&KvCommand::Read {
            key: key.to_string(),
        })? {
            KvResponse::Value(v) => Ok(v),
            other => Err(Error::Config(format!("unexpected read reply {other:?}"))),
        }
    }

    /// `delete(k)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn delete(&mut self, key: &str) -> Result<KvResponse> {
        self.exec_single(&KvCommand::Delete {
            key: key.to_string(),
        })
    }

    /// `add(k, d)`: increments the counter at `k` and returns its new
    /// value. Non-idempotent — safe here because the session layer
    /// executes retried commands exactly once.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn add(&mut self, key: &str, delta: u64) -> Result<u64> {
        match self.exec_single(&KvCommand::Add {
            key: key.to_string(),
            delta,
        })? {
            KvResponse::Counter(v) => Ok(v),
            other => Err(Error::Config(format!("unexpected add reply {other:?}"))),
        }
    }

    /// `scan(from, to)`: multicast on the global ring, answered by every
    /// partition, merged and sorted here (paper §7.2).
    ///
    /// # Errors
    ///
    /// Fails on timeout (some partition did not answer) or malformed
    /// replies.
    pub fn scan(&mut self, from: &str, to: &str) -> Result<Vec<(String, Bytes)>> {
        let cmd = KvCommand::Scan {
            from: from.to_string(),
            to: to.to_string(),
        };
        let partitions = self.partitions.clone();
        let replies = self
            .inner
            .request_fanout(self.router.global, cmd.to_bytes(), &partitions)?;
        let mut merged = Vec::new();
        for (_, raw) in replies {
            match KvResponse::decode(&mut raw.clone()).map_err(Error::Wire)? {
                KvResponse::Entries(entries) => merged.extend(entries),
                other => {
                    return Err(Error::Config(format!("unexpected scan reply {other:?}")));
                }
            }
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        merged.dedup_by(|a, b| a.0 == b.0);
        Ok(merged)
    }

    /// Live key-range migration (freeze → ship → cutover): moves
    /// ownership of `from..to` (half-open; empty `to` = +∞) to partition
    /// `target` while the deployment keeps serving. Returns the new
    /// partition-map version.
    ///
    /// The protocol rides ordinary ordered commands, so no replica needs
    /// out-of-band coordination:
    ///
    /// 1. **Freeze** multicast on the global ring: every partition stamps
    ///    the migration; writes to the range answer `Busy` from here on,
    ///    which keeps the shipped snapshot stable (reads are unaffected).
    /// 2. **Ship**: scan the frozen range from the source partition's own
    ///    ring and re-send it as chunked `Install` multicasts.
    /// 3. **Cutover**: the final `Install` (`last = true`) makes every
    ///    partition atomically adopt the new key-range table at the same
    ///    delivered cut — the source drops the range, the target takes
    ///    ownership, and stale clients re-route on `Moved`.
    ///
    /// # Errors
    ///
    /// Fails if the deployment is hash-partitioned (ownership is not
    /// expressible as key ranges), if the range's owner already is
    /// `target`, or on timeout.
    pub fn migrate_range(&mut self, from: &str, to: &str, target: u16) -> Result<u64> {
        if self.router.scheme.to_table().is_none() {
            return Err(Error::Config(
                "range migration requires range partitioning".into(),
            ));
        }
        // Adopt the replicas' current map first: a freeze stamped with a
        // version the replicas already passed would no-op as a duplicate.
        self.refresh_map(RingId::new(self.partitions[0].raw()))?;
        let source = self.router.scheme.partition_of(from);
        if source.raw() == target {
            return Err(Error::Config(format!(
                "partition {target} already owns {from:?}"
            )));
        }
        let version = self.version + 1;
        let global = self.router.global;
        let partitions = self.partitions.clone();

        let freeze = KvCommand::Freeze {
            from: from.to_string(),
            to: to.to_string(),
            target,
            version,
        };
        for (_, raw) in self
            .inner
            .request_fanout(global, freeze.to_bytes(), &partitions)?
        {
            match KvResponse::decode(&mut raw.clone()).map_err(Error::Wire)? {
                KvResponse::Ok => {}
                other => return Err(Error::Config(format!("freeze refused: {other:?}"))),
            }
        }

        // The range is frozen everywhere: its snapshot is now stable.
        let scan = KvCommand::Scan {
            from: from.to_string(),
            to: to.to_string(),
        };
        let raw = self
            .inner
            .request(RingId::new(source.raw()), scan.to_bytes())?;
        let entries = match KvResponse::decode(&mut raw.clone()).map_err(Error::Wire)? {
            KvResponse::Entries(entries) => entries,
            other => return Err(Error::Config(format!("unexpected scan reply {other:?}"))),
        };

        // Ship in bounded chunks; the last one (possibly empty) is the
        // cutover. `ceil` keeps at least one chunk for an empty range.
        const CHUNK: usize = 256;
        let chunks = entries.len().div_ceil(CHUNK).max(1);
        for i in 0..chunks {
            let slice =
                &entries[(i * CHUNK).min(entries.len())..((i + 1) * CHUNK).min(entries.len())];
            let install = KvCommand::Install {
                from: from.to_string(),
                to: to.to_string(),
                target,
                version,
                entries: slice.to_vec(),
                last: i + 1 == chunks,
            };
            for (_, raw) in self
                .inner
                .request_fanout(global, install.to_bytes(), &partitions)?
            {
                match KvResponse::decode(&mut raw.clone()).map_err(Error::Wire)? {
                    KvResponse::Ok => {}
                    other => return Err(Error::Config(format!("install refused: {other:?}"))),
                }
            }
        }

        self.router.scheme = self
            .router
            .scheme
            .with_range_moved(from, to, target)
            .expect("table scheme");
        self.version = version;
        Ok(version)
    }
}

/// A dLog client: appends routed per log, multi-appends on the shared
/// ring.
pub struct LogClient {
    inner: LiveClient,
    global: RingId,
}

impl LogClient {
    /// Connects to a dLog deployment.
    ///
    /// # Errors
    ///
    /// Fails if `config` is not a dLog deployment or a server is
    /// unreachable.
    pub fn connect(config: &DeploymentConfig, id: ClientId, opts: ClientOptions) -> Result<Self> {
        let ServiceKind::Dlog { .. } = config.service else {
            return Err(Error::Config("deployment does not run dlog".into()));
        };
        Ok(LogClient {
            inner: connect_routed(config, id, opts)?,
            global: config.global_ring(),
        })
    }

    fn exec(&mut self, ring: RingId, cmd: &LogCommand) -> Result<LogResponse> {
        let raw = self.inner.request(ring, cmd.to_bytes())?;
        LogResponse::decode(&mut raw.clone()).map_err(Error::Wire)
    }

    /// `append(l, v)`: returns the assigned position.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn append(&mut self, log: u16, value: Bytes) -> Result<u64> {
        match self.exec(RingId::new(log), &LogCommand::Append { log, value })? {
            LogResponse::Appended(positions) => positions
                .iter()
                .find(|(l, _)| *l == log)
                .map(|(_, p)| *p)
                .ok_or_else(|| Error::Config("append reply missing log".into())),
            other => Err(Error::Config(format!("unexpected append reply {other:?}"))),
        }
    }

    /// `multi-append(L, v)`: atomic append to several logs via the shared
    /// ring; returns `(log, position)` pairs from the answering replica.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn multi_append(&mut self, logs: Vec<u16>, value: Bytes) -> Result<Vec<(u16, u64)>> {
        match self.exec(self.global, &LogCommand::MultiAppend { logs, value })? {
            LogResponse::Appended(positions) => Ok(positions),
            other => Err(Error::Config(format!(
                "unexpected multi-append reply {other:?}"
            ))),
        }
    }

    /// `read(l, p)`.
    ///
    /// # Errors
    ///
    /// Fails on timeout or a malformed reply.
    pub fn read(&mut self, log: u16, pos: u64) -> Result<Option<Bytes>> {
        match self.exec(RingId::new(log), &LogCommand::Read { log, pos })? {
            LogResponse::Value(v) => Ok(v),
            other => Err(Error::Config(format!("unexpected read reply {other:?}"))),
        }
    }
}
