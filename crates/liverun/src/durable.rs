//! Durability for delivered commands: a [`ServiceApp`] decorator that
//! appends every executed envelope to a real [`storage::wal::Wal`].
//!
//! The WAL records the replica's *delivered sequence* — the deterministic
//! merge of its subscribed rings — which is exactly what must agree
//! across the replicas of a partition. Tests replay the files with
//! [`Wal::replay`] to check agreement, and operators can audit a node's
//! history offline.
//!
//! ## Group commit
//!
//! Envelopes are staged in memory as they execute and hit the file in one
//! buffered write plus a single `fdatasync` when the host signals the end
//! of a delivered batch ([`ServiceApp::flush`]). Durability semantics: a
//! node killed mid-batch may lose the *tail since the last batch
//! boundary* from its own WAL — never a prefix, never reordered. That is
//! safe because the WAL is an audit/restart accelerator, not the source
//! of truth: the service state is recovered from partition-peer
//! checkpoints plus acceptor retransmission (paper §5.2), which
//! re-derives exactly the lost suffix.

use bytes::{Bytes, BytesMut};
use common::error::WireError;
use common::ids::RingId;
use common::value::Envelope;
use common::wire::Wire;
use multiring::ServiceApp;
use storage::wal::Wal;

/// One delivered command: the ring it arrived on plus the envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The multicast group the command was delivered from.
    pub ring: RingId,
    /// The client command envelope.
    pub env: Envelope,
}

impl Wire for WalRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.ring.encode(buf);
        self.env.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WalRecord {
            ring: RingId::decode(buf)?,
            env: Envelope::decode(buf)?,
        })
    }
}

/// Wraps a service so every delivered envelope hits the WAL first.
pub struct DurableApp {
    inner: Box<dyn ServiceApp>,
    wal: Wal,
}

impl DurableApp {
    /// Decorates `inner` with `wal`.
    pub fn new(inner: Box<dyn ServiceApp>, wal: Wal) -> Self {
        DurableApp { inner, wal }
    }
}

impl ServiceApp for DurableApp {
    fn execute(&mut self, group: RingId, env: &Envelope) -> Bytes {
        // Stage through WalRecord's own encoder (the clone is refcounted,
        // not a payload copy) so the staged bytes can never drift from
        // what `Wal::replay::<WalRecord>` expects.
        self.wal.append_buffered_with(|buf| {
            WalRecord {
                ring: group,
                env: env.clone(),
            }
            .encode(buf)
        });
        self.inner.execute(group, env)
    }

    fn flush(&mut self) {
        // One write + one fdatasync for the whole delivered batch. A
        // write failure must not diverge this replica from its peers:
        // execution continues, only durability (and the audit trail) is
        // degraded.
        let _ = self.wal.commit();
        self.inner.flush();
    }

    fn snapshot(&self) -> Bytes {
        self.inner.snapshot()
    }

    fn restore(&mut self, state: &Bytes) {
        self.inner.restore(state);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn session_probe(&self, session: u64) -> Option<(u64, u64)> {
        self.inner.session_probe(session)
    }

    fn session_ids(&self) -> Vec<u64> {
        self.inner.session_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::ids::{ClientId, NodeId, RequestId};
    use multiring::EchoApp;
    use storage::wal::SyncPolicy;

    #[test]
    fn executed_envelopes_land_in_the_wal() {
        let dir = std::env::temp_dir().join(format!("durable-app-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replica.wal");
        let mut app = DurableApp::new(
            Box::new(EchoApp::new()),
            Wal::open(&path, SyncPolicy::OsDecides).unwrap(),
        );
        let env = Envelope::v1(
            ClientId::new(1),
            RequestId::new(7),
            NodeId::new(2),
            Bytes::from_static(b"cmd"),
        );
        app.execute(RingId::new(3), &env);
        app.execute(RingId::new(4), &env);
        // Group commit: nothing on disk until the batch boundary.
        assert_eq!(
            Wal::replay::<WalRecord>(&path).unwrap().len(),
            0,
            "records staged, not written, before flush"
        );
        app.flush();
        let records: Vec<WalRecord> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ring, RingId::new(3));
        assert_eq!(records[1].env, env);
        drop(app);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
