//! Durability for delivered commands: a [`ServiceApp`] decorator that
//! appends every executed envelope to a real write-ahead log.
//!
//! The WAL records the replica's *delivered sequence* — the deterministic
//! merge of its subscribed rings — which is exactly what must agree
//! across the replicas of a partition. Tests replay the files to check
//! agreement, and operators can audit a node's history offline.
//!
//! ## Group commit
//!
//! Envelopes are staged in memory as they execute and hit the file in one
//! buffered write plus a single `fdatasync` when the host signals the end
//! of a delivered batch ([`ServiceApp::flush`]). Durability semantics: a
//! node killed mid-batch may lose the *tail since the last batch
//! boundary* from its own WAL — never a prefix, never reordered. That is
//! safe because the WAL is an audit/restart accelerator, not the source
//! of truth: the service state is recovered from partition-peer
//! checkpoints plus acceptor retransmission (paper §5.2), which
//! re-derives exactly the lost suffix.
//!
//! ## Rotation and pruning
//!
//! Through the [`DecidedLog`] trait the decorator also drives
//! [`storage::wal::SegmentedWal`]: records carry a monotone delivery
//! position, segments roll at a configured cadence, and once the host
//! reports a checkpoint durable ([`ServiceApp::checkpoint_durable`]) the
//! log prunes every segment wholly below the position marked at snapshot
//! time — closing the "single ever-growing file" caveat without ever
//! touching a segment a restart might still replay.
//!
//! Under the sharded executor each shard owns one `DurableApp` over its
//! own segment directory, so group commits fsync concurrently across
//! shards. Cross-shard commands appear in *every* addressed shard's log
//! (the barrier executes on each), which is correct for an audit log and
//! deliberate: each shard's log is the full delivered stream of the
//! state it owns.

use std::cell::Cell;

use bytes::{Bytes, BytesMut};
use common::error::WireError;
use common::ids::RingId;
use common::value::Envelope;
use common::wire::Wire;
use multiring::{ServiceApp, SnapshotCut};
use storage::wal::{DecidedLog, Wal};

/// One delivered command: the ring it arrived on plus the envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The multicast group the command was delivered from.
    pub ring: RingId,
    /// The client command envelope.
    pub env: Envelope,
}

impl Wire for WalRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.ring.encode(buf);
        self.env.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WalRecord {
            ring: RingId::decode(buf)?,
            env: Envelope::decode(buf)?,
        })
    }
}

/// Wraps a service so every delivered envelope hits the WAL first.
pub struct DurableApp {
    inner: Box<dyn ServiceApp>,
    log: Box<dyn DecidedLog>,
    /// Position of the next staged record (counts this decorator's own
    /// delivered stream).
    pos: u64,
    /// The position the state covered when the last snapshot was cut;
    /// once that checkpoint is durable, records below it are prunable.
    /// `Cell` because the mark is taken inside `&self` snapshot calls.
    ckpt_mark: Cell<u64>,
}

impl DurableApp {
    /// Decorates `inner` with a single-file `wal` (no rotation).
    pub fn new(inner: Box<dyn ServiceApp>, wal: Wal) -> Self {
        Self::with_log(inner, Box::new(wal), 0)
    }

    /// Decorates `inner` with any [`DecidedLog`], resuming the position
    /// counter at `start_pos` (use [`storage::wal::SegmentedWal::end_pos`]
    /// when reopening a rotated directory).
    pub fn with_log(inner: Box<dyn ServiceApp>, log: Box<dyn DecidedLog>, start_pos: u64) -> Self {
        DurableApp {
            inner,
            log,
            pos: start_pos,
            ckpt_mark: Cell::new(start_pos),
        }
    }
}

impl ServiceApp for DurableApp {
    fn execute(&mut self, group: RingId, env: &Envelope) -> Bytes {
        // Stage through WalRecord's own encoder (the clone is refcounted,
        // not a payload copy) so the staged bytes can never drift from
        // what replay expects.
        let pos = self.pos;
        self.pos += 1;
        self.log.stage(pos, &mut |buf| {
            WalRecord {
                ring: group,
                env: env.clone(),
            }
            .encode(buf)
        });
        self.inner.execute(group, env)
    }

    fn flush(&mut self) {
        // One write + one fdatasync for the whole delivered batch. A
        // write failure must not diverge this replica from its peers:
        // execution continues, only durability (and the audit trail) is
        // degraded.
        let _ = self.log.commit();
        self.inner.flush();
    }

    fn snapshot(&self) -> Bytes {
        // Everything staged so far is covered by the snapshot being cut;
        // remember the position so a later durable checkpoint can prune
        // up to (but never past) it.
        self.ckpt_mark.set(self.pos);
        self.inner.snapshot()
    }

    fn snapshot_into(&self, buf: &mut BytesMut) {
        // Same cut-marking contract as `snapshot`.
        self.ckpt_mark.set(self.pos);
        self.inner.snapshot_into(buf);
    }

    fn snapshot_cut(&self) -> Box<dyn SnapshotCut> {
        // Same cut-marking contract as `snapshot`: everything staged so
        // far is covered by the cut being taken now.
        self.ckpt_mark.set(self.pos);
        self.inner.snapshot_cut()
    }

    fn restore(&mut self, state: &Bytes) {
        self.inner.restore(state);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn checkpoint_durable(&mut self) {
        // Best effort, like commit: pruning is an optimization.
        let _ = self.log.prune_below(self.ckpt_mark.get());
        self.inner.checkpoint_durable();
    }

    fn session_probe(&self, session: u64) -> Option<(u64, u64)> {
        self.inner.session_probe(session)
    }

    fn session_ids(&self) -> Vec<u64> {
        self.inner.session_ids()
    }

    fn cached_reply_count(&self) -> usize {
        self.inner.cached_reply_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::ids::{ClientId, NodeId, RequestId};
    use multiring::EchoApp;
    use storage::wal::{SegmentedWal, SyncPolicy};

    fn env(seq: u64) -> Envelope {
        Envelope::v1(
            ClientId::new(1),
            RequestId::new(seq),
            NodeId::new(2),
            Bytes::from_static(b"cmd"),
        )
    }

    #[test]
    fn executed_envelopes_land_in_the_wal() {
        let dir = std::env::temp_dir().join(format!("durable-app-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replica.wal");
        let mut app = DurableApp::new(
            Box::new(EchoApp::new()),
            Wal::open(&path, SyncPolicy::OsDecides).unwrap(),
        );
        let env = env(7);
        app.execute(RingId::new(3), &env);
        app.execute(RingId::new(4), &env);
        // Group commit: nothing on disk until the batch boundary.
        assert_eq!(
            Wal::replay::<WalRecord>(&path).unwrap().len(),
            0,
            "records staged, not written, before flush"
        );
        app.flush();
        let records: Vec<WalRecord> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ring, RingId::new(3));
        assert_eq!(records[1].env, env);
        drop(app);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segmented_log_rotates_prunes_and_resumes_position() {
        let dir = std::env::temp_dir().join(format!(
            "durable-seg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let wal = SegmentedWal::open(&dir, SyncPolicy::OsDecides, 2).unwrap();
            let mut app = DurableApp::with_log(Box::new(EchoApp::new()), Box::new(wal), 0);
            for seq in 0..5 {
                app.execute(RingId::new(0), &env(seq));
            }
            app.flush();
            // The snapshot marks pos 5; once durable, segments wholly
            // below it are pruned (the active segment survives).
            let _ = app.snapshot();
            app.checkpoint_durable();
            let remaining = SegmentedWal::replay::<WalRecord>(&dir).unwrap();
            assert!(
                remaining.iter().all(|(pos, _)| *pos >= 4),
                "pruned records below the checkpoint mark: {:?}",
                remaining.iter().map(|(p, _)| *p).collect::<Vec<_>>()
            );
        }
        // Reopen: positions resume past everything ever written.
        let resume = SegmentedWal::end_pos(&dir).unwrap();
        assert_eq!(resume, 5);
        let wal = SegmentedWal::open(&dir, SyncPolicy::OsDecides, 2).unwrap();
        let mut app = DurableApp::with_log(Box::new(EchoApp::new()), Box::new(wal), resume);
        app.execute(RingId::new(0), &env(99));
        app.flush();
        let records = SegmentedWal::replay::<WalRecord>(&dir).unwrap();
        assert_eq!(records.last().map(|(p, _)| *p), Some(5));
        drop(app);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
