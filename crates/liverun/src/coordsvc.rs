//! `amcoord` — the replicated coordination service (`amcoordd` runtime).
//!
//! Each `amcoordd` replica is one member of a dedicated Ring Paxos ring
//! that serves as the service's replicated log — the stack is
//! self-hosting: the consensus protocol whose deployments amcoord
//! coordinates also orders amcoord's own state changes. No new consensus
//! code exists here; a replica is
//!
//! * one [`ringpaxos::live::spawn_tcp_member`] node (the log),
//! * one [`coord::CoordState`] applied in decided order (the state),
//! * a framed-TCP front end speaking [`common::wire::coord`] to clients
//!   (liverun nodes, CLIs, fellow replicas).
//!
//! Mutating operations are proposed to the ring tagged with the serving
//! replica and a sequence number; when the decision comes back around,
//! *every* replica applies it and the proposer answers its waiting
//! client. Reads are answered from applied state (the Zookeeper
//! consistency model). Watch events fan out to every connection that sent
//! [`CoordOp::WatchAll`].
//!
//! **Sessions.** TTL liveness is tracked per replica off the *applied*
//! keep-alive stream (every replica sees every keep-alive, so any replica
//! can time any session against its own clock). When a TTL lapses, the
//! observing replica proposes [`CoordOp::ExpireSession`] carrying the
//! refresh counter it saw — a keep-alive racing through the log wins the
//! CAS and the session survives.
//!
//! **The bootstrap ring.** The one ring amcoord cannot coordinate through
//! itself is its own: members gossip deterministic, epoch-guarded
//! reconfigurations ([`CoordOp::InstallConfig`]) to each other instead.
//! This mirrors Zookeeper's statically configured ensemble (§7.1): the
//! replica list is fixed at launch, and losing a minority only costs the
//! gossiped failover hop.
//!
//! **Durability & restart-in-place.** With a `wal_dir`, a replica's
//! decided log is group-committed through a rotated
//! [`storage::wal::SegmentedWal`] (bounded `seg-*.wal` files under
//! `amcoord-<id>.walseg/`, guarded by writer locks) and its applied
//! [`CoordState`] is checkpointed every
//! [`CoordServerConfig::checkpoint_every`] applied records via
//! [`storage::CheckpointFile`]. Each successful periodic checkpoint also
//! *prunes* the log: closed segments whose records all sit below the
//! checkpoint cursor are deleted, so checkpoints bound replay **and**
//! rotation bounds disk. Boot follows Zookeeper's snapshot + log-replay
//! recipe: load the latest checkpoint, replay the
//! WAL suffix at or beyond its cursor, spawn the ring member with the
//! recovered delivery cursor, then — before serving clients — fetch a
//! [`CoordOp::SnapshotRequest`] snapshot from a live peer and install it
//! if it is ahead (the jump is checkpointed before the learner cursor
//! moves, so a crash never leaves a hole between checkpoint and log). A
//! sweep-time watchdog repeats the peer fetch if the learner ever blocks
//! on a gap the ring will not re-circulate. One caveat remains: the
//! acceptor's *vote* log is volatile, so safety across a restart leans on
//! the surviving majority's intact logs (the usual minority-failure
//! assumption), not on the restarted replica's own promises.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use common::error::{Error, Result};
use common::ids::{InstanceId, NodeId, RingId, SessionId};
use common::msg::AcceptedEntry;
use common::transport::{encode_frame, FrameBuf};
use common::value::Value;
use common::wire::coord::{CoordCmd, CoordEvent, CoordMsg, CoordOk, CoordOp, CoordReply, OpKind};
use common::wire::Wire;
use coord::{CoordState, Registry, RingConfig};
use ringpaxos::live::{spawn_tcp_member, Delivery, LiveNode};
use ringpaxos::options::RingOptions;
use storage::checkpoint::CheckpointFile;
use storage::wal::{SegmentedWal, SyncPolicy};

use crate::node::{spawn_listener, ListenerHandle};

/// The ring id the ensemble replicates its own log on (a private
/// namespace — this ring never appears in any deployment's registry).
pub const COORD_RING: RingId = RingId::new(0);

/// Static description of one amcoordd ensemble, identical in every
/// replica (like a Zookeeper server list).
#[derive(Clone, Debug)]
pub struct CoordServerConfig {
    /// This replica's id (an index into the address lists).
    pub id: NodeId,
    /// Ring (replica ↔ replica consensus) addresses, one per replica.
    pub ring_addrs: Vec<SocketAddr>,
    /// Client-serving addresses, one per replica.
    pub client_addrs: Vec<SocketAddr>,
    /// Directory for the replica's durable state — the rotated
    /// decided-log segments (`amcoord-<id>.walseg/seg-*.wal`) and the
    /// state checkpoint (`amcoord-<id>.ckpt`). `None` disables
    /// durability (a restarted replica then relies entirely on peer
    /// catch-up).
    pub wal_dir: Option<PathBuf>,
    /// How often the replica sweeps for lapsed sessions.
    pub session_check: Duration,
    /// Write a `CoordState` checkpoint every this many applied log
    /// records (0 disables checkpointing; replay then walks the whole
    /// WAL). Only meaningful with `wal_dir`.
    pub checkpoint_every: u64,
}

impl CoordServerConfig {
    /// A localhost ensemble of `n` replicas with sequential ports from
    /// `base_port` (ring ports first, then client ports); `id` names this
    /// replica.
    pub fn localhost(id: u32, n: u16, base_port: u16) -> Self {
        let ring_addrs = (0..n)
            .map(|i| format!("127.0.0.1:{}", base_port + i).parse().unwrap())
            .collect();
        let client_addrs = (0..n)
            .map(|i| format!("127.0.0.1:{}", base_port + n + i).parse().unwrap())
            .collect();
        CoordServerConfig {
            id: NodeId::new(id),
            ring_addrs,
            client_addrs,
            wal_dir: None,
            session_check: Duration::from_millis(500),
            checkpoint_every: 256,
        }
    }

    /// The replica ids, in ring order.
    pub fn members(&self) -> Vec<NodeId> {
        (0..self.ring_addrs.len() as u32).map(NodeId::new).collect()
    }

    /// This replica's client-serving address.
    ///
    /// # Errors
    ///
    /// Fails if `id` is out of range or the address lists disagree.
    pub fn my_client_addr(&self) -> Result<SocketAddr> {
        self.validate()?;
        Ok(self.client_addrs[self.id.raw() as usize])
    }

    fn validate(&self) -> Result<()> {
        if self.ring_addrs.is_empty() || self.ring_addrs.len() != self.client_addrs.len() {
            return Err(Error::Config(
                "amcoordd needs equal, non-empty ring/client address lists".into(),
            ));
        }
        if self.id.raw() as usize >= self.ring_addrs.len() {
            return Err(Error::Config(format!(
                "amcoordd id {} out of range for {} replicas",
                self.id,
                self.ring_addrs.len()
            )));
        }
        Ok(())
    }
}

/// Write half of one client connection (bounded, never blocks the loop).
#[derive(Clone)]
struct ConnWriter {
    tx: Sender<CoordReply>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<CoordReply>(4096);
        std::thread::spawn(move || {
            let mut stream = stream;
            while let Ok(reply) = rx.recv() {
                if stream.write_all(&encode_frame(&reply)).is_err() {
                    break;
                }
            }
            // Close the *socket*, not just our fd: the reader thread
            // holds a clone, and the client must observe EOF (and
            // reconnect with a fresh watch + cache) when this half dies.
            let _ = stream.shutdown(std::net::Shutdown::Both);
        });
        ConnWriter { tx }
    }

    /// Queues a frame; false when the connection's queue is full (stalled
    /// client). Correlated replies may shed — the client times out and
    /// retries — but a dropped *watch event* must kill the connection,
    /// or the client's config cache would go silently stale forever.
    #[must_use]
    fn send(&self, reply: CoordReply) -> bool {
        self.tx.try_send(reply).is_ok()
    }
}

struct ConnState {
    writer: ConnWriter,
    watch_all: bool,
}

enum SrvEvent {
    /// A client connection opened.
    Conn(u64, ConnWriter),
    /// A frame arrived on a connection.
    Msg(u64, CoordMsg),
    /// A connection closed.
    Gone(u64),
    /// The replicated log decided a value at an instance.
    Deliver(Delivery),
    /// Our own consensus ring reconfigured; gossip it to the peers.
    Gossip(common::wire::coord::RingConfigWire),
    /// A gap-watchdog peer fetch finished (off-thread — the fetch can
    /// block seconds and must not stall serving), `None` if no peer
    /// answered.
    CatchUp(Option<PeerSnapshot>),
    /// Stop the replica.
    Shutdown,
}

/// Adopts a peer's view of the ensemble's own consensus ring and
/// re-admits `me` if that view no longer contains it (the survivors
/// detected our death and reconfigured around us). Both steps are
/// epoch-guarded local CASes whose RingChanged events the gossip feed
/// relays to the peers.
fn rejoin_ensemble_ring(
    ring_registry: &Registry,
    me: NodeId,
    peer_ring: Option<common::wire::coord::RingConfigWire>,
) {
    let Some(wire) = peer_ring else { return };
    let _ = ring_registry.install_config(wire);
    if let Ok(cur) = ring_registry.ring(COORD_RING) {
        if !cur.contains(me) {
            let _ = ring_registry.rejoin(COORD_RING, me, true);
        }
    }
}

/// Writes a checkpoint of the applied state if the cadence marked one
/// due. Failures (full disk, torn rename target) leave `due` set so the
/// next applied record retries; the WAL remains authoritative either
/// way. On success the decided log is pruned: segments wholly below the
/// durably checkpointed cursor can never be needed by a replay again.
fn checkpoint_if_due(
    durable: &mut ReplicaDurability,
    live: &LiveNode,
    since_ckpt: &mut u64,
    due: &mut bool,
) {
    if !*due {
        return;
    }
    let Some(slot) = &durable.ckpt else {
        *since_ckpt = 0;
        *due = false;
        return;
    };
    if slot
        .save(durable.applied.raw(), &durable.state.snapshot())
        .is_ok()
    {
        *since_ckpt = 0;
        *due = false;
        live.prune_decided_log(durable.applied);
    }
}

/// Installs a peer snapshot into `durable` if it is ahead. The jump is
/// checkpointed durably *before* the state and learner cursor move:
/// subsequent WAL appends continue from the new cursor, so a replay must
/// never have to cross the hole between the old cursor and the snapshot.
///
/// Returns `Ok(true)` when our state is now at least as current as the
/// peer's answer (installed, or we were already ahead). `Ok(false)`
/// means the peer is ahead but its snapshot did not decode (version
/// skew, corruption) — the caller must keep trying, **not** conclude it
/// caught up.
fn install_snapshot(
    durable: &mut ReplicaDurability,
    live: &LiveNode,
    peer_applied: u64,
    bytes: &bytes::Bytes,
) -> Result<bool> {
    if peer_applied <= durable.applied.raw() {
        return Ok(true);
    }
    let Ok(state) = CoordState::decode_snapshot(&mut bytes.clone()) else {
        return Ok(false);
    };
    if let Some(slot) = &durable.ckpt {
        slot.save(peer_applied, bytes)?;
        // The jump is durable: everything below it is checkpoint-covered,
        // so rotated log segments below the new cursor can go.
        live.prune_decided_log(InstanceId::new(peer_applied));
    }
    durable.state = state;
    durable.applied = InstanceId::new(peer_applied);
    live.set_delivery_cursor(durable.applied);
    Ok(true)
}

/// Handle to one running amcoordd replica.
pub struct CoordServerHandle {
    tx: Sender<SrvEvent>,
    join: Option<JoinHandle<()>>,
    listener: Option<ListenerHandle>,
    client_addr: SocketAddr,
}

impl CoordServerHandle {
    /// The address clients connect to.
    pub fn client_addr(&self) -> SocketAddr {
        self.client_addr
    }

    /// Stops the replica: closes the listener, stops the loop (which
    /// stops the ring member), joins the loop thread.
    pub fn shutdown(mut self) {
        if let Some(l) = self.listener.take() {
            l.stop();
        }
        let _ = self.tx.send(SrvEvent::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// The decided-log segment directory of replica `id` under `dir`. The
/// log is rotated: bounded `seg-<first-instance>.wal` files, closed
/// segments wholly below the checkpoint cursor deleted on each periodic
/// checkpoint (checkpoints bound *replay*; rotation bounds *disk*).
pub fn wal_seg_dir(dir: &std::path::Path, id: NodeId) -> PathBuf {
    dir.join(format!("amcoord-{}.walseg", id.raw()))
}

/// The checkpoint path of replica `id` under `dir`.
pub fn checkpoint_path(dir: &std::path::Path, id: NodeId) -> PathBuf {
    dir.join(format!("amcoord-{}.ckpt", id.raw()))
}

/// Replays one decided-log record into `state`, advancing `applied`.
/// Records below the cursor (already covered by a checkpoint or a peer
/// snapshot) are skipped; non-[`CoordCmd`] payloads (no-ops, skips)
/// advance the cursor without touching state. Events are discarded —
/// nobody is watching a replica that has not started serving.
///
/// Returns `false` on a **hole**: a record *beyond* the cursor. The log
/// is contiguous in normal operation, but a peer-snapshot install jumps
/// the cursor past instances this replica never logged; if the
/// checkpoint recording that jump is later lost (corrupt slot falls
/// back to whole-log replay), crossing the hole would silently build
/// divergent state. The caller must stop replaying — a consistent
/// prefix plus peer catch-up is correct, a gapped replay is not.
#[must_use]
fn apply_log_entry(
    state: &mut CoordState,
    applied: &mut InstanceId,
    inst: InstanceId,
    value: &Value,
) -> bool {
    if inst < *applied {
        return true;
    }
    if inst > *applied {
        return false;
    }
    if let Some(bytes) = value.payload() {
        let mut raw = bytes.clone();
        if let Ok(cmd) = CoordCmd::decode(&mut raw) {
            let _ = state.apply(&cmd.op);
        }
    }
    *applied = inst.plus(value.instance_span());
    true
}

/// A peer's answer to the catch-up RPC.
struct PeerSnapshot {
    /// The peer's applied log cursor.
    applied: u64,
    /// The peer's view of the ensemble's own consensus ring.
    ensemble_ring: Option<common::wire::coord::RingConfigWire>,
    /// The encoded `CoordState` at `applied`.
    state: bytes::Bytes,
}

/// Fetches a [`CoordOk::Snapshot`] from **every** reachable peer
/// (waiting up to `timeout` per peer) and keeps the one with the
/// highest applied cursor — judging "caught up" against whichever peer
/// happens to answer first could adopt a *behind* peer's view and stop
/// looking (e.g. two freshly restarted replicas electing each other's
/// empty state while the one up-to-date peer is transiently
/// unreachable). The ensemble-ring view is taken from the
/// highest-epoch answer; installs of both are guarded anyway.
fn fetch_peer_snapshot(peers: &[SocketAddr], timeout: Duration) -> Option<PeerSnapshot> {
    let mut best: Option<PeerSnapshot> = None;
    for addr in peers {
        let Some(snap) = fetch_one_snapshot(*addr, timeout) else {
            continue;
        };
        match &mut best {
            None => best = Some(snap),
            Some(b) => {
                if snap
                    .ensemble_ring
                    .as_ref()
                    .map(|c| c.epoch)
                    .cmp(&b.ensemble_ring.as_ref().map(|c| c.epoch))
                    .is_gt()
                {
                    b.ensemble_ring = snap.ensemble_ring.clone();
                }
                if snap.applied > b.applied {
                    b.applied = snap.applied;
                    b.state = snap.state;
                }
            }
        }
    }
    best
}

/// One peer's catch-up answer, or `None` if unreachable/unresponsive.
fn fetch_one_snapshot(addr: SocketAddr, timeout: Duration) -> Option<PeerSnapshot> {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) else {
        return None;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let frame = encode_frame(&CoordMsg {
        req: 1,
        op: CoordOp::SnapshotRequest,
    });
    if stream.write_all(&frame).is_err() {
        return None;
    }
    let mut buf = FrameBuf::new();
    let mut chunk = [0u8; 64 * 1024];
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => {
                buf.extend(&chunk[..n]);
                loop {
                    match buf.try_next::<CoordReply>() {
                        Ok(Some(CoordReply::Ok {
                            req: 1,
                            body:
                                CoordOk::Snapshot {
                                    applied,
                                    ensemble_ring,
                                    state,
                                },
                        })) => {
                            return Some(PeerSnapshot {
                                applied,
                                ensemble_ring,
                                state,
                            })
                        }
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => return None,
                    }
                }
            }
        }
    }
    None
}

/// Everything the server loop needs to drive durable state.
struct ReplicaDurability {
    state: CoordState,
    applied: InstanceId,
    ckpt: Option<CheckpointFile>,
    checkpoint_every: u64,
}

/// Starts one amcoordd replica of `config`.
///
/// With a `wal_dir`, boot is the recovery path: latest checkpoint + WAL
/// suffix are replayed into the state machine, the ring member comes up
/// at the recovered delivery cursor, and a live peer's snapshot is
/// fetched (and installed if ahead) *before* the client listener binds —
/// a restarted replica never serves reads older than what the ensemble
/// committed while it was down, and never needs a fresh ensemble.
///
/// # Errors
///
/// Fails if the configuration is inconsistent, a listener cannot bind or
/// the WAL cannot open (e.g. another live process holds its lock).
pub fn start_coord_server(config: CoordServerConfig) -> Result<CoordServerHandle> {
    config.validate()?;
    let me = config.id;
    let members = config.members();

    // The ensemble's own ring lives in a local registry seeded from the
    // static replica list; InstallConfig gossip keeps replicas aligned
    // across failovers (see module docs).
    let ring_registry = Registry::new();
    ring_registry.register_ring(RingConfig::new(
        COORD_RING,
        members.clone(),
        members.clone(),
    )?)?;

    let ring_addr_map: HashMap<NodeId, SocketAddr> = members
        .iter()
        .copied()
        .zip(config.ring_addrs.iter().copied())
        .collect();

    // Durable recovery: checkpoint, then the WAL suffix at/beyond its
    // cursor (Zookeeper's snapshot + log replay, §7.1 analogue).
    let mut durable = ReplicaDurability {
        state: CoordState::new(),
        applied: InstanceId::ZERO,
        ckpt: None,
        checkpoint_every: config.checkpoint_every,
    };
    let wal: Option<Box<dyn storage::wal::DecidedLog>> = match &config.wal_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let seg_dir = wal_seg_dir(dir, me);
            // Open (taking the directory's writer lock) *before* reading
            // anything: a previous owner still flushing its final group
            // commit would otherwise race our replay to the log tail
            // (open refuses a live holder and steals only dead-pid
            // locks). Segments roll every `checkpoint_every` records so
            // each periodic checkpoint retires roughly one segment.
            let roll_every = if config.checkpoint_every > 0 {
                config.checkpoint_every
            } else {
                4096
            };
            let wal = SegmentedWal::open(&seg_dir, SyncPolicy::EveryWrite, roll_every)?;
            let slot = CheckpointFile::new(checkpoint_path(dir, me));
            if let Some((cursor, bytes)) = slot.load() {
                if let Ok(st) = CoordState::decode_snapshot(&mut bytes.clone()) {
                    durable.state = st;
                    durable.applied = InstanceId::new(cursor);
                }
                // A corrupt checkpoint falls back to whole-log replay.
            }
            for (_, rec) in SegmentedWal::replay::<AcceptedEntry>(&seg_dir)? {
                if !apply_log_entry(
                    &mut durable.state,
                    &mut durable.applied,
                    rec.inst,
                    &rec.value,
                ) {
                    break; // hole: stop at the consistent prefix
                }
            }
            durable.ckpt = Some(slot);
            Some(Box::new(wal))
        }
        None => None,
    };

    // Per-process metrics registry. Restart-in-place semantics: the
    // monotonic apply counter is re-seeded from the recovered delivery
    // cursor (it survives the restart the same way the state does),
    // while volatile gauges start from zero.
    let obs = common::obs::Obs::for_node(me.raw());
    obs.reset_gauges();
    obs.counter("coord_applied").seed(durable.applied.raw());

    let opts = RingOptions {
        heartbeat_interval: Duration::from_millis(25),
        failure_timeout: Duration::from_millis(400),
        proposal_retry: Duration::from_millis(300),
        obs: obs.clone(),
        ..RingOptions::default()
    };
    let live = Arc::new(spawn_tcp_member(
        me,
        COORD_RING,
        ring_registry.clone(),
        &ring_addr_map,
        opts,
        wal,
        durable.applied,
    )?);

    // Catch the tail up from a live peer before serving: everything the
    // ensemble decided while this replica was down is in some peer's
    // applied state, and the ring will not re-circulate old decisions.
    let peer_clients: Vec<SocketAddr> = config
        .client_addrs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i as u32 != me.raw())
        .map(|(_, a)| *a)
        .collect();
    // If no peer answers (whole-ensemble restart, transient blip), the
    // sweep keeps retrying the fetch until one does — without this, an
    // idle ensemble would never trigger the gap watchdog (no new
    // decisions → no buffered gap) and a behind replica could serve
    // stale reads indefinitely.
    let mut catchup_needed = !peer_clients.is_empty();
    let peer_ring = match fetch_peer_snapshot(&peer_clients, Duration::from_secs(2)) {
        Some(snap) => {
            match install_snapshot(&mut durable, &live, snap.applied, &snap.state) {
                // Caught up only if we are now at least as current as
                // the answering peer — an undecodable snapshot from an
                // ahead peer must keep the sweep retrying.
                Ok(current) => catchup_needed = !current,
                Err(e) => {
                    // The ring member is already running; leaving it up
                    // would hold its port and WAL lock for the life of
                    // the process even though this start failed.
                    live.stop();
                    return Err(e);
                }
            }
            snap.ensemble_ring
        }
        None => None,
    };

    let (tx, rx) = unbounded::<SrvEvent>();

    // Delivery pump: decided log entries into the server loop.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let live = Arc::clone(&live);
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("amcoord-pump-{}", me.raw()))
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    if let Ok(d) = live.recv_delivery(Duration::from_millis(200)) {
                        if tx.send(SrvEvent::Deliver(d)).is_err() {
                            return;
                        }
                    }
                }
            })
            .map_err(Error::Io)?;
    }

    // Gossip feed: watch our own registry for coord-ring epoch bumps.
    {
        let watch = ring_registry.watch();
        let tx = tx.clone();
        std::thread::Builder::new()
            .name(format!("amcoord-gossip-{}", me.raw()))
            .spawn(move || {
                while let Ok(event) = watch.recv() {
                    if let CoordEvent::RingChanged { cfg } = event {
                        if cfg.ring == COORD_RING && tx.send(SrvEvent::Gossip(cfg)).is_err() {
                            return;
                        }
                    }
                }
            })
            .map_err(Error::Io)?;
    }

    // Rejoin the ensemble's own consensus ring if the survivors
    // reconfigured this replica out while it was down: adopt their
    // (newer-epoch) view, then re-admit ourselves with the same
    // deterministic local CAS data rings use. The RingChanged events
    // flow through the gossip feed just armed above, so the survivors
    // install the rejoined config and their coordinator re-runs Phase 1
    // around us.
    rejoin_ensemble_ring(&ring_registry, me, peer_ring);

    let client_addr = config.client_addrs[me.raw() as usize];
    let (client_addr, listener) =
        match TcpListener::bind(client_addr).and_then(|l| Ok((l.local_addr()?, l))) {
            Ok(pair) => pair,
            Err(e) => {
                // See the install_snapshot error path above — and stop
                // the pump *first*: with the node loop gone its delivery
                // channel disconnects, recv_delivery returns instantly,
                // and the `!stop` loop would hot-spin forever.
                stop.store(true, Ordering::SeqCst);
                live.stop();
                return Err(Error::Io(e));
            }
        };
    let tx_conns = tx.clone();
    let next_conn = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let listener = spawn_listener(
        listener,
        format!("amcoord-clients-{}", me.raw()),
        move |stream| {
            let conn = next_conn.fetch_add(1, Ordering::SeqCst);
            spawn_conn_reader(conn, stream, tx_conns.clone());
        },
    );

    let session_check = config.session_check;
    let loop_tx = tx.clone();
    let join = std::thread::Builder::new()
        .name(format!("amcoord-srv-{}", me.raw()))
        .spawn(move || {
            server_loop(
                me,
                live,
                ring_registry,
                rx,
                loop_tx,
                peer_clients,
                session_check,
                durable,
                catchup_needed,
                obs,
            );
            stop.store(true, Ordering::SeqCst);
        })
        .map_err(Error::Io)?;

    Ok(CoordServerHandle {
        tx,
        join: Some(join),
        listener: Some(listener),
        client_addr,
    })
}

/// Reads [`CoordMsg`] frames off one accepted client connection.
fn spawn_conn_reader(conn: u64, mut stream: TcpStream, tx: Sender<SrvEvent>) {
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let writer = match stream.try_clone() {
            Ok(w) => ConnWriter::new(w),
            Err(_) => return,
        };
        if tx.send(SrvEvent::Conn(conn, writer)).is_err() {
            return;
        }
        let mut buf = FrameBuf::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    buf.extend(&chunk[..n]);
                    loop {
                        match buf.try_next::<CoordMsg>() {
                            Ok(Some(msg)) => {
                                if tx.send(SrvEvent::Msg(conn, msg)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return, // corrupt stream: drop it
                        }
                    }
                }
            }
        }
        let _ = tx.send(SrvEvent::Gone(conn));
    });
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn server_loop(
    me: NodeId,
    live: Arc<LiveNode>,
    ring_registry: Registry,
    rx: Receiver<SrvEvent>,
    self_tx: Sender<SrvEvent>,
    peer_clients: Vec<SocketAddr>,
    session_check: Duration,
    mut durable: ReplicaDurability,
    mut catchup_needed: bool,
    obs: common::obs::Obs,
) {
    let coord_applied = obs.counter("coord_applied");
    let session_count = obs.gauge("session_count");
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    /// A replicated command this replica proposed for a waiting client.
    struct Pending {
        conn: u64,
        req: u64,
        at: Instant,
    }
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    // Command sequence numbers become ValueIds in the replicated log and
    // the ring dedups by id, so they must never repeat across replica
    // incarnations (a restarted replica re-proposing seq 1 would see its
    // command silently swallowed). Wall-clock microseconds since the
    // epoch are monotone across restarts for any realistic downtime.
    let mut next_cmd: u64 = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(1);
    // Wall-clock session liveness, driven by *applied* keep-alives.
    // Sessions recovered from the checkpoint/WAL/peer snapshot get a
    // fresh grace stamp: their owners may well be alive and
    // keep-alive'ing — expiring them at boot because *we* never saw a
    // keep-alive would churn every ephemeral in the system.
    let mut session_seen: HashMap<SessionId, Instant> = durable
        .state
        .sessions()
        .map(|(id, _)| (id, Instant::now()))
        .collect();
    // Sessions with an expiry proposal in flight (don't re-propose every
    // sweep).
    let mut expiring: HashSet<SessionId> = HashSet::new();
    let mut gossip_conns: HashMap<SocketAddr, TcpStream> = HashMap::new();
    let mut next_sweep = Instant::now() + session_check;
    // Applied records since the last checkpoint, and whether the cadence
    // says one is due (written right after the pending apply lands).
    let mut since_ckpt: u64 = 0;
    let mut next_ckpt_due = false;
    // When the learner first reported being blocked on a delivery gap,
    // and whether a watchdog fetch is already out.
    let mut gap_since: Option<Instant> = None;
    let mut catchup_inflight = false;

    loop {
        let sleep = next_sweep
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(200));
        let event = match rx.recv_timeout(sleep) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match event {
            None => {}
            Some(SrvEvent::Shutdown) => break,
            Some(SrvEvent::Conn(conn, writer)) => {
                conns.insert(
                    conn,
                    ConnState {
                        writer,
                        watch_all: false,
                    },
                );
            }
            Some(SrvEvent::Gone(conn)) => {
                conns.remove(&conn);
                pending.retain(|_, p| p.conn != conn);
            }
            Some(SrvEvent::Msg(conn, CoordMsg { req, op })) => match op.kind() {
                OpKind::Local => {
                    if let CoordOp::InstallConfig { cfg } = &op {
                        let _ = ring_registry.install_config(cfg.clone());
                    }
                    if let Some(c) = conns.get_mut(&conn) {
                        if matches!(op, CoordOp::WatchAll) {
                            c.watch_all = true;
                        }
                        let _ = c.writer.send(CoordReply::Ok {
                            req,
                            body: common::wire::coord::CoordOk::Unit,
                        });
                    }
                }
                OpKind::Read => {
                    if matches!(op, CoordOp::SnapshotRequest) {
                        // The catch-up RPC: served from applied state
                        // with *this* replica's log position and its
                        // view of the ensemble's own ring (the state
                        // machine itself has neither).
                        if let Some(c) = conns.get(&conn) {
                            let _ = c.writer.send(CoordReply::Ok {
                                req,
                                body: CoordOk::Snapshot {
                                    applied: durable.applied.raw(),
                                    ensemble_ring: ring_registry
                                        .ring(COORD_RING)
                                        .ok()
                                        .map(|c| c.to_wire()),
                                    state: durable.state.snapshot(),
                                },
                            });
                        }
                        continue;
                    }
                    if matches!(op, CoordOp::Stats) {
                        // Metrics live in the process, not the replicated
                        // state machine: answer from the local registry.
                        if let Some(c) = conns.get(&conn) {
                            let _ = c.writer.send(CoordReply::Ok {
                                req,
                                body: CoordOk::Stats(obs.snapshot()),
                            });
                        }
                        continue;
                    }
                    // Reads never mutate state or emit events.
                    let (result, _) = durable.state.apply(&op);
                    if let Some(c) = conns.get(&conn) {
                        let _ = c.writer.send(reply_of(req, result));
                    }
                }
                OpKind::Replicate => {
                    next_cmd += 1;
                    let seq = next_cmd;
                    let cmd = CoordCmd {
                        origin: me,
                        seq,
                        op,
                    };
                    pending.insert(
                        seq,
                        Pending {
                            conn,
                            req,
                            at: Instant::now(),
                        },
                    );
                    if live.propose(Value::app(me, seq, cmd.to_bytes())).is_err() {
                        pending.remove(&seq);
                        if let Some(c) = conns.get(&conn) {
                            let _ = c.writer.send(CoordReply::Err {
                                req,
                                reason: "replica shutting down".into(),
                            });
                        }
                    }
                }
            },
            Some(SrvEvent::Deliver(d)) => {
                if d.inst < durable.applied {
                    // A straggler from before a snapshot install: the
                    // installed state already covers it.
                    continue;
                }
                if d.inst > durable.applied {
                    // A hole: deliveries were lost between learner and
                    // loop (bounded-channel overflow under extreme
                    // load). Never cross it silently — skipped ops would
                    // diverge this replica and then be *checkpointed*.
                    // Park until a peer snapshot jumps the cursor.
                    catchup_needed = true;
                    continue;
                }
                durable.applied = d.inst.plus(d.value.instance_span());
                coord_applied.inc();
                since_ckpt += 1;
                if durable.checkpoint_every > 0 && since_ckpt >= durable.checkpoint_every {
                    // Periodic checkpoint (after the apply below, see the
                    // end of this arm): replay after a restart is
                    // snapshot + WAL suffix, not the whole history.
                    next_ckpt_due = true;
                }
                let value = d.value;
                let applied_op = value.payload().and_then(|bytes| {
                    let mut raw = bytes.clone();
                    CoordCmd::decode(&mut raw).ok() // foreign payloads are cursor-only
                });
                let Some(cmd) = applied_op else {
                    checkpoint_if_due(&mut durable, &live, &mut since_ckpt, &mut next_ckpt_due);
                    continue; // no-op / skip filler
                };
                let (result, events) = durable.state.apply(&cmd.op);
                checkpoint_if_due(&mut durable, &live, &mut since_ckpt, &mut next_ckpt_due);
                track_sessions(
                    &cmd.op,
                    &result,
                    &durable.state,
                    &mut session_seen,
                    &mut expiring,
                );
                if cmd.origin == me {
                    if let Some(p) = pending.remove(&cmd.seq) {
                        if let Some(c) = conns.get(&p.conn) {
                            let _ = c.writer.send(reply_of(p.req, result));
                        }
                    }
                }
                if !events.is_empty() {
                    // A watcher whose queue overflows is disconnected on
                    // the spot: its cache would otherwise miss this event
                    // and serve stale configuration forever. Reconnecting
                    // re-arms the watch and clears the client's cache.
                    let mut stalled = Vec::new();
                    for (id, c) in conns.iter().filter(|(_, c)| c.watch_all) {
                        for e in &events {
                            if !c.writer.send(CoordReply::Event(e.clone())) {
                                stalled.push(*id);
                                break;
                            }
                        }
                    }
                    for id in stalled {
                        conns.remove(&id);
                        pending.retain(|_, p| p.conn != id);
                    }
                }
            }
            Some(SrvEvent::Gossip(cfg)) => {
                for addr in &peer_clients {
                    gossip_config(&mut gossip_conns, *addr, &cfg);
                }
            }
            Some(SrvEvent::CatchUp(snap)) => {
                catchup_inflight = false;
                let Some(snap) = snap else { continue };
                let before = durable.applied;
                let peer_applied = snap.applied;
                let outcome = install_snapshot(&mut durable, &live, peer_applied, &snap.state);
                if matches!(outcome, Ok(true)) {
                    // At least as current as the answering peer: a
                    // pending boot catch-up is satisfied. (Ok(false) —
                    // an ahead peer whose snapshot did not decode —
                    // keeps the sweep retrying.)
                    catchup_needed = false;
                }
                if outcome.is_ok() && durable.applied > before {
                    // install_snapshot wrote a checkpoint at the new
                    // cursor; restart the periodic cadence from it.
                    since_ckpt = 0;
                    next_ckpt_due = false;
                    for (id, _) in durable.state.sessions() {
                        session_seen.entry(id).or_insert_with(Instant::now);
                    }
                    // The install jumped state without per-op events, so
                    // connected watchers' caches are silently behind.
                    // Disconnect them: reconnecting re-arms the watch and
                    // clears the client cache (the same contract the
                    // overflow path relies on).
                    let watching: Vec<u64> = conns
                        .iter()
                        .filter(|(_, c)| c.watch_all)
                        .map(|(id, _)| *id)
                        .collect();
                    for id in watching {
                        conns.remove(&id);
                        pending.retain(|_, p| p.conn != id);
                    }
                    // Proposals whose decisions the jump skipped will
                    // never be answered by the Deliver arm (stragglers
                    // below the cursor are dropped). Fail the waiting
                    // clients now instead of letting them ride out the
                    // 10 s stale sweep — every registry mutation is
                    // idempotent or epoch/version-guarded, so a retry
                    // against the caught-up state is safe.
                    for (_, p) in pending.drain() {
                        if let Some(c) = conns.get(&p.conn) {
                            let _ = c.writer.send(CoordReply::Err {
                                req: p.req,
                                reason: "state jumped by snapshot catch-up; retry".into(),
                            });
                        }
                    }
                    // In-flight expiry markers are stale the same way: a
                    // session whose CAS loss only the snapshot reflects
                    // would otherwise stay marked forever and never be
                    // re-proposed for expiry (an immortal session). The
                    // sweep re-proposes under the CAS guard, so clearing
                    // is always safe.
                    expiring.clear();
                }
                // A long partition can also have cost us our ring
                // membership; heal that the same way a restart does.
                rejoin_ensemble_ring(&ring_registry, me, snap.ensemble_ring);
            }
        }

        if Instant::now() >= next_sweep {
            next_sweep = Instant::now() + session_check;
            let now = Instant::now();
            session_count.set(durable.state.sessions().count() as i64);
            // Gap watchdog: a learner blocked on decisions it fully
            // missed (they circulated while this replica was down or
            // partitioned) will never heal from the ring alone — old
            // decisions are not re-sent. A persistent gap is resolved
            // the same way boot catch-up is: install a live peer's
            // snapshot and jump the cursor past the hole. The fetch runs
            // on its own thread (connects + reply wait can block for
            // seconds; stalling this loop would make the replica appear
            // dead to its clients exactly while it tries to heal) and
            // comes back as [`SrvEvent::CatchUp`]. An unanswered *boot*
            // catch-up also retries here: on an idle ensemble no new
            // decision would ever surface a buffered gap, yet the
            // replica may still be behind.
            if live.first_buffered().is_some() || catchup_needed {
                let since = *gap_since.get_or_insert(now);
                if !catchup_inflight
                    && now.duration_since(since) >= session_check.max(Duration::from_millis(500))
                {
                    gap_since = Some(now);
                    let peers = peer_clients.clone();
                    let tx = self_tx.clone();
                    // Armed only if the thread actually started: a
                    // failed spawn sends no CatchUp, and a stuck
                    // `catchup_inflight` would disarm healing forever.
                    catchup_inflight = std::thread::Builder::new()
                        .name(format!("amcoord-catchup-{}", me.raw()))
                        .spawn(move || {
                            let snap = fetch_peer_snapshot(&peers, Duration::from_secs(2));
                            let _ = tx.send(SrvEvent::CatchUp(snap));
                        })
                        .is_ok();
                }
            } else {
                gap_since = None;
            }
            let overdue: Vec<(SessionId, u64)> = durable
                .state
                .sessions()
                .filter(|(id, s)| {
                    !expiring.contains(id)
                        && session_seen.get(id).is_none_or(|at| {
                            now.duration_since(*at) > Duration::from_millis(s.ttl_ms)
                        })
                })
                .map(|(id, s)| (id, s.refresh_seq))
                .collect();
            for (session, seen_refresh) in overdue {
                next_cmd += 1;
                let cmd = CoordCmd {
                    origin: me,
                    seq: next_cmd,
                    op: CoordOp::ExpireSession {
                        session,
                        seen_refresh,
                    },
                };
                if live
                    .propose(Value::app(me, next_cmd, cmd.to_bytes()))
                    .is_ok()
                {
                    expiring.insert(session);
                }
            }
            // Stale pendings (e.g. the ring lost quorum): fail the client
            // so it can retry another replica rather than hang.
            let stale: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.at.elapsed() > Duration::from_secs(10))
                .map(|(seq, _)| *seq)
                .collect();
            for seq in stale {
                if let Some(p) = pending.remove(&seq) {
                    if let Some(c) = conns.get(&p.conn) {
                        let _ = c.writer.send(CoordReply::Err {
                            req: p.req,
                            reason: "command not decided in time".into(),
                        });
                    }
                }
            }
        }
    }
    live.stop();
}

fn reply_of(req: u64, result: coord::state::ApplyResult) -> CoordReply {
    match result {
        Ok(body) => CoordReply::Ok { req, body },
        Err(reason) => CoordReply::Err { req, reason },
    }
}

/// Keeps the wall-clock liveness table in step with the applied command
/// stream.
fn track_sessions(
    op: &CoordOp,
    result: &coord::state::ApplyResult,
    state: &CoordState,
    session_seen: &mut HashMap<SessionId, Instant>,
    expiring: &mut HashSet<SessionId>,
) {
    match (op, result) {
        (CoordOp::OpenSession { .. }, Ok(common::wire::coord::CoordOk::Session(id))) => {
            session_seen.insert(*id, Instant::now());
        }
        (CoordOp::KeepAlive { session }, Ok(_)) => {
            session_seen.insert(*session, Instant::now());
        }
        (CoordOp::CloseSession { session }, _) => {
            expiring.remove(session);
            session_seen.remove(session);
        }
        (CoordOp::ExpireSession { session, .. }, _) => {
            expiring.remove(session);
            if state.session(*session).is_some() {
                // A racing keep-alive won the CAS: the session is alive.
                // Count the survival as a sighting — treating it as
                // "never seen" would re-propose expiry immediately and
                // could race the next keep-alive to a false positive.
                session_seen.insert(*session, Instant::now());
            } else {
                session_seen.remove(session);
            }
        }
        _ => {}
    }
}

/// An in-process amcoordd ensemble — the coordination-service
/// counterpart of [`Deployment`](crate::Deployment): launches `n`
/// replicas over localhost TCP and drives the same kill /
/// restart-in-place orchestration for coord nodes that `Deployment`
/// drives for data nodes. A restart reuses the replica's original
/// `wal_dir`, so it comes back through the checkpoint + WAL + peer
/// catch-up recovery path and rejoins its original ensemble.
pub struct CoordEnsemble {
    configs: Vec<CoordServerConfig>,
    replicas: Vec<Option<CoordServerHandle>>,
}

impl CoordEnsemble {
    /// Launches one replica per entry of `configs` (all describing the
    /// same ensemble, differing only in `id`).
    ///
    /// # Errors
    ///
    /// Fails if any replica fails to start; already-started replicas are
    /// shut down.
    pub fn launch(configs: Vec<CoordServerConfig>) -> Result<Self> {
        let mut replicas: Vec<Option<CoordServerHandle>> = Vec::new();
        for config in &configs {
            match start_coord_server(config.clone()) {
                Ok(h) => replicas.push(Some(h)),
                Err(e) => {
                    for h in replicas.into_iter().flatten() {
                        h.shutdown();
                    }
                    return Err(e);
                }
            }
        }
        Ok(CoordEnsemble { configs, replicas })
    }

    /// A localhost ensemble of `n` replicas on sequential ports from
    /// `base_port`, persisting replica state under `wal_dir` when given.
    ///
    /// # Errors
    ///
    /// Fails if a replica cannot start (port in use, WAL locked).
    pub fn localhost(n: u16, base_port: u16, wal_dir: Option<&std::path::Path>) -> Result<Self> {
        let configs = (0..n)
            .map(|id| {
                let mut c = CoordServerConfig::localhost(u32::from(id), n, base_port);
                c.wal_dir = wal_dir.map(std::path::Path::to_path_buf);
                c
            })
            .collect();
        Self::launch(configs)
    }

    /// The replica client addresses, in id order (dead replicas included
    /// — clients rotate past them).
    pub fn client_addrs(&self) -> Vec<SocketAddr> {
        self.configs
            .iter()
            .filter_map(|c| c.my_client_addr().ok())
            .collect()
    }

    fn slot(&self, id: u32) -> Result<usize> {
        if (id as usize) < self.replicas.len() {
            Ok(id as usize)
        } else {
            Err(Error::Config(format!("no amcoordd replica {id}")))
        }
    }

    /// Kills replica `id`: its threads stop and its sockets close. The
    /// replica's WAL lock is verified released before returning, so a
    /// restart-in-place never races the dying replica for the log file.
    ///
    /// # Errors
    ///
    /// Fails if the replica is unknown, already dead, or its WAL lock
    /// outlives the shutdown.
    pub fn kill(&mut self, id: u32) -> Result<()> {
        let i = self.slot(id)?;
        let handle = self.replicas[i]
            .take()
            .ok_or_else(|| Error::Config(format!("amcoordd replica {id} is not running")))?;
        handle.shutdown();
        if let Some(dir) = &self.configs[i].wal_dir {
            // Both the directory-level lock and the active segment's
            // per-file lock must be gone before a restart-in-place may
            // race the dying replica for the log.
            let seg_dir = wal_seg_dir(dir, NodeId::new(id));
            let locks_left = || -> Vec<PathBuf> {
                let mut left: Vec<PathBuf> = std::fs::read_dir(&seg_dir)
                    .into_iter()
                    .flatten()
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "lock"))
                    .collect();
                left.sort();
                left
            };
            let deadline = Instant::now() + Duration::from_secs(5);
            while !locks_left().is_empty() {
                if Instant::now() >= deadline {
                    return Err(Error::Storage(format!(
                        "amcoordd replica {id} wal locks {:?} survived shutdown",
                        locks_left()
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        Ok(())
    }

    /// Restarts a killed replica in place: same id, same addresses, same
    /// `wal_dir` — the durable-recovery boot path (checkpoint + WAL
    /// replay + peer catch-up) brings it back into its original
    /// ensemble serving everything committed while it was down.
    ///
    /// # Errors
    ///
    /// Fails if the replica is unknown, still running, or fails to boot.
    pub fn restart(&mut self, id: u32) -> Result<()> {
        let i = self.slot(id)?;
        if self.replicas[i].is_some() {
            return Err(Error::Config(format!(
                "amcoordd replica {id} is still running"
            )));
        }
        self.replicas[i] = Some(start_coord_server(self.configs[i].clone())?);
        Ok(())
    }

    /// True when replica `id` is currently running.
    pub fn is_running(&self, id: u32) -> bool {
        self.slot(id)
            .map(|i| self.replicas[i].is_some())
            .unwrap_or(false)
    }

    /// Stops every running replica.
    pub fn shutdown(self) {
        for h in self.replicas.into_iter().flatten() {
            h.shutdown();
        }
    }
}

/// Sends an [`CoordOp::InstallConfig`] to a peer replica over a lazily
/// maintained connection (fire-and-forget; the next gossip retries).
fn gossip_config(
    conns: &mut HashMap<SocketAddr, TcpStream>,
    addr: SocketAddr,
    cfg: &common::wire::coord::RingConfigWire,
) {
    let frame = encode_frame(&CoordMsg {
        req: 0,
        op: CoordOp::InstallConfig { cfg: cfg.clone() },
    });
    for _attempt in 0..2 {
        if let std::collections::hash_map::Entry::Vacant(e) = conns.entry(addr) {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    e.insert(s);
                }
                Err(_) => return,
            }
        }
        let ok = conns
            .get_mut(&addr)
            .map(|s| s.write_all(&frame).is_ok())
            .unwrap_or(false);
        if ok {
            return;
        }
        conns.remove(&addr);
    }
}
