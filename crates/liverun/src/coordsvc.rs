//! `amcoord` — the replicated coordination service (`amcoordd` runtime).
//!
//! Each `amcoordd` replica is one member of a dedicated Ring Paxos ring
//! that serves as the service's replicated log — the stack is
//! self-hosting: the consensus protocol whose deployments amcoord
//! coordinates also orders amcoord's own state changes. No new consensus
//! code exists here; a replica is
//!
//! * one [`ringpaxos::live::spawn_tcp_member`] node (the log),
//! * one [`coord::CoordState`] applied in decided order (the state),
//! * a framed-TCP front end speaking [`common::wire::coord`] to clients
//!   (liverun nodes, CLIs, fellow replicas).
//!
//! Mutating operations are proposed to the ring tagged with the serving
//! replica and a sequence number; when the decision comes back around,
//! *every* replica applies it and the proposer answers its waiting
//! client. Reads are answered from applied state (the Zookeeper
//! consistency model). Watch events fan out to every connection that sent
//! [`CoordOp::WatchAll`].
//!
//! **Sessions.** TTL liveness is tracked per replica off the *applied*
//! keep-alive stream (every replica sees every keep-alive, so any replica
//! can time any session against its own clock). When a TTL lapses, the
//! observing replica proposes [`CoordOp::ExpireSession`] carrying the
//! refresh counter it saw — a keep-alive racing through the log wins the
//! CAS and the session survives.
//!
//! **The bootstrap ring.** The one ring amcoord cannot coordinate through
//! itself is its own: members gossip deterministic, epoch-guarded
//! reconfigurations ([`CoordOp::InstallConfig`]) to each other instead.
//! This mirrors Zookeeper's statically configured ensemble (§7.1): the
//! replica list is fixed at launch, and losing a minority only costs the
//! gossiped failover hop.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use common::error::{Error, Result};
use common::ids::{NodeId, RingId, SessionId};
use common::transport::{encode_frame, FrameBuf};
use common::value::Value;
use common::wire::coord::{CoordCmd, CoordEvent, CoordMsg, CoordOp, CoordReply, OpKind};
use common::wire::Wire;
use coord::{CoordState, Registry, RingConfig};
use ringpaxos::live::{spawn_tcp_member, LiveNode};
use ringpaxos::options::RingOptions;
use storage::wal::{SyncPolicy, Wal};

use crate::node::{spawn_listener, ListenerHandle};

/// The ring id the ensemble replicates its own log on (a private
/// namespace — this ring never appears in any deployment's registry).
pub const COORD_RING: RingId = RingId::new(0);

/// Static description of one amcoordd ensemble, identical in every
/// replica (like a Zookeeper server list).
#[derive(Clone, Debug)]
pub struct CoordServerConfig {
    /// This replica's id (an index into the address lists).
    pub id: NodeId,
    /// Ring (replica ↔ replica consensus) addresses, one per replica.
    pub ring_addrs: Vec<SocketAddr>,
    /// Client-serving addresses, one per replica.
    pub client_addrs: Vec<SocketAddr>,
    /// Directory for the replica's log WAL (`None` disables it).
    pub wal_dir: Option<PathBuf>,
    /// How often the replica sweeps for lapsed sessions.
    pub session_check: Duration,
}

impl CoordServerConfig {
    /// A localhost ensemble of `n` replicas with sequential ports from
    /// `base_port` (ring ports first, then client ports); `id` names this
    /// replica.
    pub fn localhost(id: u32, n: u16, base_port: u16) -> Self {
        let ring_addrs = (0..n)
            .map(|i| format!("127.0.0.1:{}", base_port + i).parse().unwrap())
            .collect();
        let client_addrs = (0..n)
            .map(|i| format!("127.0.0.1:{}", base_port + n + i).parse().unwrap())
            .collect();
        CoordServerConfig {
            id: NodeId::new(id),
            ring_addrs,
            client_addrs,
            wal_dir: None,
            session_check: Duration::from_millis(500),
        }
    }

    /// The replica ids, in ring order.
    pub fn members(&self) -> Vec<NodeId> {
        (0..self.ring_addrs.len() as u32).map(NodeId::new).collect()
    }

    /// This replica's client-serving address.
    ///
    /// # Errors
    ///
    /// Fails if `id` is out of range or the address lists disagree.
    pub fn my_client_addr(&self) -> Result<SocketAddr> {
        self.validate()?;
        Ok(self.client_addrs[self.id.raw() as usize])
    }

    fn validate(&self) -> Result<()> {
        if self.ring_addrs.is_empty() || self.ring_addrs.len() != self.client_addrs.len() {
            return Err(Error::Config(
                "amcoordd needs equal, non-empty ring/client address lists".into(),
            ));
        }
        if self.id.raw() as usize >= self.ring_addrs.len() {
            return Err(Error::Config(format!(
                "amcoordd id {} out of range for {} replicas",
                self.id,
                self.ring_addrs.len()
            )));
        }
        Ok(())
    }
}

/// Write half of one client connection (bounded, never blocks the loop).
#[derive(Clone)]
struct ConnWriter {
    tx: Sender<CoordReply>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<CoordReply>(4096);
        std::thread::spawn(move || {
            let mut stream = stream;
            while let Ok(reply) = rx.recv() {
                if stream.write_all(&encode_frame(&reply)).is_err() {
                    break;
                }
            }
            // Close the *socket*, not just our fd: the reader thread
            // holds a clone, and the client must observe EOF (and
            // reconnect with a fresh watch + cache) when this half dies.
            let _ = stream.shutdown(std::net::Shutdown::Both);
        });
        ConnWriter { tx }
    }

    /// Queues a frame; false when the connection's queue is full (stalled
    /// client). Correlated replies may shed — the client times out and
    /// retries — but a dropped *watch event* must kill the connection,
    /// or the client's config cache would go silently stale forever.
    #[must_use]
    fn send(&self, reply: CoordReply) -> bool {
        self.tx.try_send(reply).is_ok()
    }
}

struct ConnState {
    writer: ConnWriter,
    watch_all: bool,
}

enum SrvEvent {
    /// A client connection opened.
    Conn(u64, ConnWriter),
    /// A frame arrived on a connection.
    Msg(u64, CoordMsg),
    /// A connection closed.
    Gone(u64),
    /// The replicated log decided a value.
    Deliver(Value),
    /// Our own consensus ring reconfigured; gossip it to the peers.
    Gossip(common::wire::coord::RingConfigWire),
    /// Stop the replica.
    Shutdown,
}

/// Handle to one running amcoordd replica.
pub struct CoordServerHandle {
    tx: Sender<SrvEvent>,
    join: Option<JoinHandle<()>>,
    listener: Option<ListenerHandle>,
    client_addr: SocketAddr,
}

impl CoordServerHandle {
    /// The address clients connect to.
    pub fn client_addr(&self) -> SocketAddr {
        self.client_addr
    }

    /// Stops the replica: closes the listener, stops the loop (which
    /// stops the ring member), joins the loop thread.
    pub fn shutdown(mut self) {
        if let Some(l) = self.listener.take() {
            l.stop();
        }
        let _ = self.tx.send(SrvEvent::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Starts one amcoordd replica of `config`.
///
/// # Errors
///
/// Fails if the configuration is inconsistent, a listener cannot bind or
/// the WAL cannot open.
pub fn start_coord_server(config: CoordServerConfig) -> Result<CoordServerHandle> {
    config.validate()?;
    let me = config.id;
    let members = config.members();

    // The ensemble's own ring lives in a local registry seeded from the
    // static replica list; InstallConfig gossip keeps replicas aligned
    // across failovers (see module docs).
    let ring_registry = Registry::new();
    ring_registry.register_ring(RingConfig::new(
        COORD_RING,
        members.clone(),
        members.clone(),
    )?)?;

    let ring_addr_map: HashMap<NodeId, SocketAddr> = members
        .iter()
        .copied()
        .zip(config.ring_addrs.iter().copied())
        .collect();
    let wal = match &config.wal_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            Some(Wal::open(
                dir.join(format!("amcoord-{}.wal", me.raw())),
                SyncPolicy::EveryWrite,
            )?)
        }
        None => None,
    };
    let opts = RingOptions {
        heartbeat_interval: Duration::from_millis(25),
        failure_timeout: Duration::from_millis(400),
        proposal_retry: Duration::from_millis(300),
        ..RingOptions::default()
    };
    let live = Arc::new(spawn_tcp_member(
        me,
        COORD_RING,
        ring_registry.clone(),
        &ring_addr_map,
        opts,
        wal,
    )?);

    let (tx, rx) = unbounded::<SrvEvent>();

    // Delivery pump: decided log entries into the server loop.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let live = Arc::clone(&live);
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("amcoord-pump-{}", me.raw()))
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    if let Ok(d) = live.recv_delivery(Duration::from_millis(200)) {
                        if tx.send(SrvEvent::Deliver(d.value)).is_err() {
                            return;
                        }
                    }
                }
            })
            .map_err(Error::Io)?;
    }

    // Gossip feed: watch our own registry for coord-ring epoch bumps.
    {
        let watch = ring_registry.watch();
        let tx = tx.clone();
        std::thread::Builder::new()
            .name(format!("amcoord-gossip-{}", me.raw()))
            .spawn(move || {
                while let Ok(event) = watch.recv() {
                    if let CoordEvent::RingChanged { cfg } = event {
                        if cfg.ring == COORD_RING && tx.send(SrvEvent::Gossip(cfg)).is_err() {
                            return;
                        }
                    }
                }
            })
            .map_err(Error::Io)?;
    }

    let client_addr = config.client_addrs[me.raw() as usize];
    let listener = TcpListener::bind(client_addr)?;
    let client_addr = listener.local_addr()?;
    let tx_conns = tx.clone();
    let next_conn = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let listener = spawn_listener(
        listener,
        format!("amcoord-clients-{}", me.raw()),
        move |stream| {
            let conn = next_conn.fetch_add(1, Ordering::SeqCst);
            spawn_conn_reader(conn, stream, tx_conns.clone());
        },
    );

    let peer_clients: Vec<SocketAddr> = config
        .client_addrs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i as u32 != me.raw())
        .map(|(_, a)| *a)
        .collect();
    let session_check = config.session_check;
    let join = std::thread::Builder::new()
        .name(format!("amcoord-srv-{}", me.raw()))
        .spawn(move || {
            server_loop(me, live, ring_registry, rx, peer_clients, session_check);
            stop.store(true, Ordering::SeqCst);
        })
        .map_err(Error::Io)?;

    Ok(CoordServerHandle {
        tx,
        join: Some(join),
        listener: Some(listener),
        client_addr,
    })
}

/// Reads [`CoordMsg`] frames off one accepted client connection.
fn spawn_conn_reader(conn: u64, mut stream: TcpStream, tx: Sender<SrvEvent>) {
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let writer = match stream.try_clone() {
            Ok(w) => ConnWriter::new(w),
            Err(_) => return,
        };
        if tx.send(SrvEvent::Conn(conn, writer)).is_err() {
            return;
        }
        let mut buf = FrameBuf::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    buf.extend(&chunk[..n]);
                    loop {
                        match buf.try_next::<CoordMsg>() {
                            Ok(Some(msg)) => {
                                if tx.send(SrvEvent::Msg(conn, msg)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return, // corrupt stream: drop it
                        }
                    }
                }
            }
        }
        let _ = tx.send(SrvEvent::Gone(conn));
    });
}

fn server_loop(
    me: NodeId,
    live: Arc<LiveNode>,
    ring_registry: Registry,
    rx: Receiver<SrvEvent>,
    peer_clients: Vec<SocketAddr>,
    session_check: Duration,
) {
    let mut state = CoordState::new();
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    /// A replicated command this replica proposed for a waiting client.
    struct Pending {
        conn: u64,
        req: u64,
        at: Instant,
    }
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    // Command sequence numbers become ValueIds in the replicated log and
    // the ring dedups by id, so they must never repeat across replica
    // incarnations (a restarted replica re-proposing seq 1 would see its
    // command silently swallowed). Wall-clock microseconds since the
    // epoch are monotone across restarts for any realistic downtime.
    let mut next_cmd: u64 = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(1);
    // Wall-clock session liveness, driven by *applied* keep-alives.
    let mut session_seen: HashMap<SessionId, Instant> = HashMap::new();
    // Sessions with an expiry proposal in flight (don't re-propose every
    // sweep).
    let mut expiring: HashSet<SessionId> = HashSet::new();
    let mut gossip_conns: HashMap<SocketAddr, TcpStream> = HashMap::new();
    let mut next_sweep = Instant::now() + session_check;

    loop {
        let sleep = next_sweep
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(200));
        let event = match rx.recv_timeout(sleep) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match event {
            None => {}
            Some(SrvEvent::Shutdown) => break,
            Some(SrvEvent::Conn(conn, writer)) => {
                conns.insert(
                    conn,
                    ConnState {
                        writer,
                        watch_all: false,
                    },
                );
            }
            Some(SrvEvent::Gone(conn)) => {
                conns.remove(&conn);
                pending.retain(|_, p| p.conn != conn);
            }
            Some(SrvEvent::Msg(conn, CoordMsg { req, op })) => match op.kind() {
                OpKind::Local => {
                    if let CoordOp::InstallConfig { cfg } = &op {
                        let _ = ring_registry.install_config(cfg.clone());
                    }
                    if let Some(c) = conns.get_mut(&conn) {
                        if matches!(op, CoordOp::WatchAll) {
                            c.watch_all = true;
                        }
                        let _ = c.writer.send(CoordReply::Ok {
                            req,
                            body: common::wire::coord::CoordOk::Unit,
                        });
                    }
                }
                OpKind::Read => {
                    // Reads never mutate state or emit events.
                    let (result, _) = state.apply(&op);
                    if let Some(c) = conns.get(&conn) {
                        let _ = c.writer.send(reply_of(req, result));
                    }
                }
                OpKind::Replicate => {
                    next_cmd += 1;
                    let seq = next_cmd;
                    let cmd = CoordCmd {
                        origin: me,
                        seq,
                        op,
                    };
                    pending.insert(
                        seq,
                        Pending {
                            conn,
                            req,
                            at: Instant::now(),
                        },
                    );
                    if live.propose(Value::app(me, seq, cmd.to_bytes())).is_err() {
                        pending.remove(&seq);
                        if let Some(c) = conns.get(&conn) {
                            let _ = c.writer.send(CoordReply::Err {
                                req,
                                reason: "replica shutting down".into(),
                            });
                        }
                    }
                }
            },
            Some(SrvEvent::Deliver(value)) => {
                let Some(bytes) = value.payload() else {
                    continue; // no-op / skip filler
                };
                let mut raw = bytes.clone();
                let Ok(cmd) = CoordCmd::decode(&mut raw) else {
                    continue; // foreign payload; not ours to apply
                };
                let (result, events) = state.apply(&cmd.op);
                track_sessions(&cmd.op, &result, &state, &mut session_seen, &mut expiring);
                if cmd.origin == me {
                    if let Some(p) = pending.remove(&cmd.seq) {
                        if let Some(c) = conns.get(&p.conn) {
                            let _ = c.writer.send(reply_of(p.req, result));
                        }
                    }
                }
                if !events.is_empty() {
                    // A watcher whose queue overflows is disconnected on
                    // the spot: its cache would otherwise miss this event
                    // and serve stale configuration forever. Reconnecting
                    // re-arms the watch and clears the client's cache.
                    let mut stalled = Vec::new();
                    for (id, c) in conns.iter().filter(|(_, c)| c.watch_all) {
                        for e in &events {
                            if !c.writer.send(CoordReply::Event(e.clone())) {
                                stalled.push(*id);
                                break;
                            }
                        }
                    }
                    for id in stalled {
                        conns.remove(&id);
                        pending.retain(|_, p| p.conn != id);
                    }
                }
            }
            Some(SrvEvent::Gossip(cfg)) => {
                for addr in &peer_clients {
                    gossip_config(&mut gossip_conns, *addr, &cfg);
                }
            }
        }

        if Instant::now() >= next_sweep {
            next_sweep = Instant::now() + session_check;
            let now = Instant::now();
            let overdue: Vec<(SessionId, u64)> = state
                .sessions()
                .filter(|(id, s)| {
                    !expiring.contains(id)
                        && session_seen.get(id).is_none_or(|at| {
                            now.duration_since(*at) > Duration::from_millis(s.ttl_ms)
                        })
                })
                .map(|(id, s)| (id, s.refresh_seq))
                .collect();
            for (session, seen_refresh) in overdue {
                next_cmd += 1;
                let cmd = CoordCmd {
                    origin: me,
                    seq: next_cmd,
                    op: CoordOp::ExpireSession {
                        session,
                        seen_refresh,
                    },
                };
                if live
                    .propose(Value::app(me, next_cmd, cmd.to_bytes()))
                    .is_ok()
                {
                    expiring.insert(session);
                }
            }
            // Stale pendings (e.g. the ring lost quorum): fail the client
            // so it can retry another replica rather than hang.
            let stale: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.at.elapsed() > Duration::from_secs(10))
                .map(|(seq, _)| *seq)
                .collect();
            for seq in stale {
                if let Some(p) = pending.remove(&seq) {
                    if let Some(c) = conns.get(&p.conn) {
                        let _ = c.writer.send(CoordReply::Err {
                            req: p.req,
                            reason: "command not decided in time".into(),
                        });
                    }
                }
            }
        }
    }
    live.stop();
}

fn reply_of(req: u64, result: coord::state::ApplyResult) -> CoordReply {
    match result {
        Ok(body) => CoordReply::Ok { req, body },
        Err(reason) => CoordReply::Err { req, reason },
    }
}

/// Keeps the wall-clock liveness table in step with the applied command
/// stream.
fn track_sessions(
    op: &CoordOp,
    result: &coord::state::ApplyResult,
    state: &CoordState,
    session_seen: &mut HashMap<SessionId, Instant>,
    expiring: &mut HashSet<SessionId>,
) {
    match (op, result) {
        (CoordOp::OpenSession { .. }, Ok(common::wire::coord::CoordOk::Session(id))) => {
            session_seen.insert(*id, Instant::now());
        }
        (CoordOp::KeepAlive { session }, Ok(_)) => {
            session_seen.insert(*session, Instant::now());
        }
        (CoordOp::CloseSession { session }, _) => {
            expiring.remove(session);
            session_seen.remove(session);
        }
        (CoordOp::ExpireSession { session, .. }, _) => {
            expiring.remove(session);
            if state.session(*session).is_some() {
                // A racing keep-alive won the CAS: the session is alive.
                // Count the survival as a sighting — treating it as
                // "never seen" would re-propose expiry immediately and
                // could race the next keep-alive to a false positive.
                session_seen.insert(*session, Instant::now());
            } else {
                session_seen.remove(session);
            }
        }
        _ => {}
    }
}

/// Sends an [`CoordOp::InstallConfig`] to a peer replica over a lazily
/// maintained connection (fire-and-forget; the next gossip retries).
fn gossip_config(
    conns: &mut HashMap<SocketAddr, TcpStream>,
    addr: SocketAddr,
    cfg: &common::wire::coord::RingConfigWire,
) {
    let frame = encode_frame(&CoordMsg {
        req: 0,
        op: CoordOp::InstallConfig { cfg: cfg.clone() },
    });
    for _attempt in 0..2 {
        if let std::collections::hash_map::Entry::Vacant(e) = conns.entry(addr) {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    e.insert(s);
                }
                Err(_) => return,
            }
        }
        let ok = conns
            .get_mut(&addr)
            .map(|s| s.write_all(&frame).is_ok())
            .unwrap_or(false);
        if ok {
            return;
        }
        conns.remove(&addr);
    }
}
