//! Integration tests for the replicated coordination service: a real
//! 3-replica `amcoordd` ensemble (in this process, over localhost TCP)
//! serving [`coord::Registry`] clients through the remote backend.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use bytes::Bytes;
use common::ids::{NodeId, RingId};
use common::wire::coord::CoordEvent;
use coord::{CoordClientOptions, Registry, RingConfig};
use liverun::coordsvc::{start_coord_server, CoordEnsemble, CoordServerConfig, CoordServerHandle};

/// Ports 6000..8300 — below the Linux ephemeral range (32768+) so an
/// outgoing connection's source port can never steal a listener bind,
/// and disjoint from every other test binary's range (multiproc holds
/// 9000.., end_to_end 15200.., live_deployment 20000..). Each test in
/// this file passes its own index; a 3-replica ensemble uses 6 ports.
fn base_port(test: u16) -> u16 {
    6000 + (std::process::id() % 70) as u16 * 32 + test * 8
}

fn start_ensemble(n: u16, base: u16) -> (Vec<CoordServerHandle>, Vec<SocketAddr>) {
    let mut handles = Vec::new();
    for id in 0..n {
        let config = CoordServerConfig::localhost(u32::from(id), n, base);
        handles.push(start_coord_server(config).expect("replica starts"));
    }
    let addrs = handles.iter().map(|h| h.client_addr()).collect();
    (handles, addrs)
}

fn wait_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

fn nodes(ids: &[u32]) -> Vec<NodeId> {
    ids.iter().map(|i| NodeId::new(*i)).collect()
}

#[test]
fn ensemble_replicates_writes_and_pushes_watches() {
    let (handles, addrs) = start_ensemble(3, base_port(0));
    // Two clients on *different* replicas.
    let a = Registry::connect(&addrs[..1], CoordClientOptions::default()).unwrap();
    let b = Registry::connect(&addrs[1..2], CoordClientOptions::default()).unwrap();
    let watch_a = a.watch();

    // A write through A becomes visible to B (replicated, then applied on
    // B's replica).
    a.register_ring(RingConfig::new(RingId::new(7), nodes(&[0, 1, 2]), nodes(&[0, 1, 2])).unwrap())
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || b.ring(RingId::new(7)).is_ok()),
        "write through replica 0 must reach replica 1"
    );

    // A CAS election through B; A learns the new epoch through its watch.
    let epoch = b.ring(RingId::new(7)).unwrap().epoch();
    b.elect_coordinator(RingId::new(7), NodeId::new(1), epoch)
        .unwrap()
        .expect("first election wins");
    // The same CAS from the stale epoch loses against replicated state.
    let lost = b
        .elect_coordinator(RingId::new(7), NodeId::new(2), epoch)
        .unwrap();
    assert!(lost.is_err(), "stale-epoch writer must be rejected");

    let saw_epoch_bump = wait_until(Duration::from_secs(10), || {
        watch_a.try_iter().any(|e| {
            matches!(
                &e,
                CoordEvent::RingChanged { cfg }
                    if cfg.ring == RingId::new(7) && cfg.coordinator == NodeId::new(1)
            )
        })
    });
    assert!(saw_epoch_bump, "watcher on replica 0 must see the election");
    assert!(
        wait_until(Duration::from_secs(10), || {
            a.ring(RingId::new(7))
                .map(|cfg| cfg.coordinator() == NodeId::new(1))
                .unwrap_or(false)
        }),
        "A's cached config must follow the watch"
    );

    // Versioned meta CAS across replicas.
    let v = a
        .set_meta_cas("scheme", Bytes::from_static(b"one"), 0)
        .unwrap();
    assert!(b
        .set_meta_cas("scheme", Bytes::from_static(b"two"), 0)
        .is_err());
    b.set_meta_cas("scheme", Bytes::from_static(b"two"), v)
        .unwrap();

    drop(a);
    drop(b);
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn session_expiry_drops_ephemeral_entries() {
    let (handles, addrs) = start_ensemble(3, base_port(1));
    let short = CoordClientOptions {
        session_ttl: Duration::from_millis(600),
        ..CoordClientOptions::default()
    };
    let transient = Registry::connect(&addrs[..1], short).unwrap();
    let observer = Registry::connect(&addrs[2..], CoordClientOptions::default()).unwrap();
    let events = observer.watch();

    transient
        .announce("nodes/9", Bytes::from_static(b"127.0.0.1:1"))
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            observer
                .ephemerals("nodes/")
                .iter()
                .any(|e| e.key == "nodes/9")
        }),
        "announcement must replicate"
    );

    // While the client lives, keep-alives hold the session open well past
    // its TTL.
    std::thread::sleep(Duration::from_millis(1500));
    assert!(
        observer
            .ephemerals("nodes/")
            .iter()
            .any(|e| e.key == "nodes/9"),
        "kept-alive session must not expire"
    );

    // Kill the client (keep-alives stop): the TTL lapses, the ensemble
    // expires the session, the ephemeral disappears everywhere and the
    // watcher hears about it.
    drop(transient);
    assert!(
        wait_until(Duration::from_secs(15), || observer
            .ephemerals("nodes/")
            .is_empty()),
        "ephemeral must vanish after its session's TTL"
    );
    let saw_down = events.try_iter().any(
        |e| matches!(&e, CoordEvent::EphemeralChanged { key, alive: false } if key == "nodes/9"),
    );
    assert!(saw_down, "watcher must see the ephemeral go down");

    drop(observer);
    for h in handles {
        h.shutdown();
    }
}

/// The tentpole of amcoordd durability: a replica killed and restarted
/// **in the same data dir** rejoins its *original* ensemble (no fresh
/// ensemble, no id change) and serves coordination reads that include
/// operations committed while it was down — recovered via checkpoint +
/// WAL replay plus the peer-snapshot catch-up RPC.
#[test]
fn replica_restart_in_place_serves_ops_committed_while_down() {
    let dir = std::env::temp_dir().join(format!("amcoord-rip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut ensemble =
        CoordEnsemble::localhost(3, base_port(3), Some(&dir)).expect("ensemble launches");
    let addrs = ensemble.client_addrs();

    // A client pinned to the replicas that will survive.
    let client = Registry::connect(&addrs[..2], CoordClientOptions::default()).unwrap();
    client
        .register_ring(
            RingConfig::new(RingId::new(1), nodes(&[0, 1, 2]), nodes(&[0, 1, 2])).unwrap(),
        )
        .unwrap();
    client
        .set_meta_cas("pre-kill", Bytes::from_static(b"a"), 0)
        .unwrap();

    ensemble.kill(2).expect("replica 2 dies cleanly");
    assert!(!ensemble.is_running(2));

    // Ops committed while replica 2 is down — the restart must surface
    // ALL of them, whether they land in its WAL (they cannot) or come
    // back via the peer catch-up snapshot.
    client
        .register_ring(RingConfig::new(RingId::new(2), nodes(&[7, 8]), nodes(&[7, 8])).unwrap())
        .unwrap();
    let v = client
        .set_meta_cas("during-downtime", Bytes::from_static(b"b"), 0)
        .unwrap();
    client
        .set_meta_cas("during-downtime", Bytes::from_static(b"c"), v)
        .unwrap();

    // Restart in place: same id, same ports, same wal dir.
    ensemble.restart(2).expect("replica 2 restarts in place");

    // A client pinned to ONLY the restarted replica: everything above
    // must be visible there, including the CAS version history.
    let pinned = Registry::connect(&addrs[2..], CoordClientOptions::default()).unwrap();
    assert!(
        wait_until(Duration::from_secs(20), || {
            pinned.ring(RingId::new(1)).is_ok()
                && pinned.ring(RingId::new(2)).is_ok()
                && pinned.meta_versioned("during-downtime") == Some((2, Bytes::from_static(b"c")))
                && pinned.meta("pre-kill") == Some(Bytes::from_static(b"a"))
        }),
        "restarted replica must serve ops committed while it was down"
    );

    // And it must have rejoined the *ensemble* (not just recovered
    // state): a write proposed through the restarted replica commits.
    assert!(
        wait_until(Duration::from_secs(20), || {
            pinned
                .set_meta_cas("post-restart", Bytes::from_static(b"d"), 0)
                .is_ok()
        }),
        "restarted replica must replicate writes through its ring again"
    );
    assert!(
        wait_until(Duration::from_secs(10), || {
            client.meta("post-restart") == Some(Bytes::from_static(b"d"))
        }),
        "write through the restarted replica must reach the survivors"
    );

    drop(client);
    drop(pinned);
    ensemble.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Observability across restart-in-place (the stale-gauge regression):
/// a restarted replica must come back with its monotonic apply counter
/// seeded from the recovered delivery cursor — never below what it had
/// reported before the kill — while volatile gauges describe only the
/// new incarnation (re-derived from recovered state, not leaked from
/// the dead process's last levels).
#[test]
fn restart_in_place_preserves_counters_and_resets_gauges() {
    let dir = std::env::temp_dir().join(format!("amcoord-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut ensemble =
        CoordEnsemble::localhost(3, base_port(4), Some(&dir)).expect("ensemble launches");
    let addrs = ensemble.client_addrs();
    let client = Registry::connect(&addrs[..2], CoordClientOptions::default()).unwrap();
    let pinned = Registry::connect(&addrs[2..], CoordClientOptions::default()).unwrap();

    const WRITES: u64 = 12;
    for i in 0..WRITES {
        client
            .set_meta_cas(format!("obs-{i}"), Bytes::from_static(b"x"), 0)
            .unwrap();
    }

    // Replica 2 applied every write, and its sweep published the
    // session gauge (both clients hold replicated sessions).
    assert!(
        wait_until(Duration::from_secs(20), || {
            pinned
                .node_stats()
                .map(|s| {
                    s.counter("coord_applied").unwrap_or(0) >= WRITES
                        && s.gauge("session_count").unwrap_or(0) > 0
                })
                .unwrap_or(false)
        }),
        "replica 2 must report applies and live sessions before the kill"
    );
    let before = pinned.node_stats().expect("pre-kill stats");
    let applied_before = before.counter("coord_applied").unwrap();

    ensemble.kill(2).expect("replica 2 dies cleanly");
    drop(pinned);
    // Writes committed during the downtime. The survivors' ring stalls
    // until failure detection reconfigures the dead member out, so
    // retry past that window; a committed-but-unanswered attempt shows
    // up as the key existing.
    for i in 0..8 {
        let key = format!("down-{i}");
        assert!(
            wait_until(Duration::from_secs(20), || {
                client
                    .set_meta_cas(&key, Bytes::from_static(b"x"), 0)
                    .is_ok()
                    || client.meta(&key).is_some()
            }),
            "downtime write {key} must commit on the surviving majority"
        );
    }
    ensemble.restart(2).expect("replica 2 restarts in place");

    let pinned = Registry::connect(&addrs[2..], CoordClientOptions::default())
        .expect("restarted replica serves clients");
    // The monotonic counter survives the incarnation change: it is
    // seeded from the checkpoint + WAL-replay cursor, which covers at
    // least everything the dead process had reported applying.
    assert!(
        wait_until(Duration::from_secs(20), || {
            pinned
                .node_stats()
                .map(|s| s.counter("coord_applied").unwrap_or(0) >= applied_before)
                .unwrap_or(false)
        }),
        "restarted replica's apply counter regressed below its pre-kill value ({applied_before})"
    );
    // Volatile gauges are re-derived, not recovered: the session gauge
    // climbs back only as the sweep re-observes the (replicated)
    // session table of the new incarnation.
    assert!(
        wait_until(Duration::from_secs(20), || {
            pinned
                .node_stats()
                .map(|s| s.gauge("session_count").unwrap_or(0) > 0)
                .unwrap_or(false)
        }),
        "restarted replica must re-publish the session gauge from recovered state"
    );
    // And the counter keeps counting: a post-restart write lands.
    let after = pinned
        .node_stats()
        .expect("post-restart stats")
        .counter("coord_applied")
        .unwrap();
    client
        .set_meta_cas("post-restart-obs", Bytes::from_static(b"y"), 0)
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(20), || {
            pinned
                .node_stats()
                .map(|s| s.counter("coord_applied").unwrap_or(0) > after)
                .unwrap_or(false)
        }),
        "restarted replica's apply counter must keep advancing"
    );

    drop(pinned);
    drop(client);
    ensemble.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_and_ensemble_survive_replica_failure() {
    let (mut handles, addrs) = start_ensemble(3, base_port(2));
    // This client starts on replica 0's address.
    let client = Registry::connect(&addrs, CoordClientOptions::default()).unwrap();
    client
        .register_ring(RingConfig::new(RingId::new(1), nodes(&[5, 6]), nodes(&[5, 6])).unwrap())
        .unwrap();

    // Kill replica 0 — the replica the client is connected to AND the
    // coordinator of the ensemble's own consensus ring. The survivors
    // must reconfigure their ring (local CAS + gossip), and the client
    // must fail over to another replica.
    handles.remove(0).shutdown();

    let ok = wait_until(Duration::from_secs(20), || {
        client
            .ensure_ring(RingConfig::new(RingId::new(2), nodes(&[7, 8]), nodes(&[7, 8])).unwrap())
            .is_ok()
    });
    assert!(ok, "writes must succeed after replica 0 dies");

    // Reads of pre-kill state still answer (replicated, not lost with the
    // dead replica).
    assert!(
        wait_until(Duration::from_secs(10), || client
            .ring(RingId::new(1))
            .is_ok()),
        "pre-kill state must survive"
    );

    drop(client);
    for h in handles {
        h.shutdown();
    }
}

/// WAL rotation: the decided log is segmented, periodic checkpoints
/// delete segments wholly below the checkpoint cursor (bounding disk,
/// not just replay), and a replica restarted **over the rotated
/// directory** — early segments gone — still recovers everything via
/// checkpoint + surviving-suffix replay.
#[test]
fn wal_rotation_prunes_segments_and_restart_recovers_over_rotated_dir() {
    use liverun::coordsvc::wal_seg_dir;
    use storage::wal::SegmentedWal;

    let dir = std::env::temp_dir().join(format!("amcoord-rot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Tiny checkpoint cadence: segments roll every 8 records and every
    // checkpoint prunes, so a few dozen writes produce real rotation.
    let configs: Vec<CoordServerConfig> = (0..3)
        .map(|id| {
            let mut c = CoordServerConfig::localhost(id, 3, base_port(5));
            c.wal_dir = Some(dir.clone());
            c.checkpoint_every = 8;
            c
        })
        .collect();
    let mut ensemble = CoordEnsemble::launch(configs).expect("ensemble launches");
    let addrs = ensemble.client_addrs();
    let client = Registry::connect(&addrs[..2], CoordClientOptions::default()).unwrap();

    // Enough replicated writes to roll through many segments (plus the
    // session/keep-alive traffic riding the same log).
    for i in 0..80 {
        client
            .set_meta_cas(format!("rot-{i}"), Bytes::from_static(b"x"), 0)
            .unwrap();
    }
    let seg_dir = wal_seg_dir(&dir, NodeId::new(2));
    assert!(
        wait_until(Duration::from_secs(20), || {
            let segs = SegmentedWal::segments(&seg_dir);
            // Rotation happened AND pruning bounded the directory: with
            // ~80+ records at 8 per segment, an unpruned log would hold
            // 10+ segments.
            !segs.is_empty() && segs.len() <= 4 && first_seg_pos(&segs) > 0
        }),
        "checkpoints must prune rotated segments (left: {:?})",
        SegmentedWal::segments(&seg_dir)
    );

    // Kill replica 2 and restart it over the rotated directory: the
    // deleted prefix is covered by its checkpoint; replay walks only the
    // surviving suffix.
    ensemble.kill(2).expect("replica 2 dies cleanly");
    let v = client
        .set_meta_cas("rot-during-downtime", Bytes::from_static(b"y"), 0)
        .unwrap();
    ensemble
        .restart(2)
        .expect("replica 2 restarts over rotation");

    let pinned = Registry::connect(&addrs[2..], CoordClientOptions::default()).unwrap();
    assert!(
        wait_until(Duration::from_secs(20), || {
            pinned.meta("rot-0") == Some(Bytes::from_static(b"x"))
                && pinned.meta("rot-79") == Some(Bytes::from_static(b"x"))
                && pinned.meta_versioned("rot-during-downtime")
                    == Some((v, Bytes::from_static(b"y")))
        }),
        "restart over a rotated dir must serve the full history"
    );

    drop(pinned);
    drop(client);
    ensemble.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn first_seg_pos(segs: &[std::path::PathBuf]) -> u64 {
    segs.first()
        .and_then(|p| p.file_name()?.to_str())
        .and_then(|n| n.strip_prefix("seg-")?.strip_suffix(".wal")?.parse().ok())
        .unwrap_or(0)
}
