//! The multi-process failover end-to-end: a real cluster of OS processes
//! — a 3-replica `amcoordd` ensemble plus one `amcastd` process per data
//! node — exercising the full §7.1 deployment shape:
//!
//! * every node bootstraps its configuration from amcoord (idempotent
//!   concurrent seeding) and advertises an ephemeral liveness entry;
//! * SIGKILLing the ring coordinator drives a *cross-process* membership
//!   change: the survivor's failure report flows through `amcoordd`, the
//!   other nodes learn the new epoch via watches, and the dead node's
//!   session TTL expires its advertisement;
//! * reads stay linearizable before and after the kill (reads are
//!   ordered commands: a read observing v implies every later read does);
//! * the killed node restarts *in place* — same WAL directory, the lock
//!   left by the SIGKILLed pid is stolen deterministically — rejoins
//!   through amcoord and serves fresh state;
//! * an `amcoordd` replica is SIGKILLed and restarted in place — same
//!   `--wal-dir`, checkpoint + WAL replay + peer catch-up — and must
//!   rejoin its original ensemble serving coordination state committed
//!   while it was down, with linearizable data-path reads throughout.
//!
//! A watchdog aborts the whole test hard if anything wedges, so a hung
//! cluster fails CI fast instead of stalling the runner.

use std::io::Write as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use bytes::Bytes;
use common::ids::{ClientId, NodeId, RingId};
use coord::{CoordClientOptions, Registry};
use liverun::config::{generate_localhost_mrpstore, with_coord, with_executor_shards};
use liverun::{ClientOptions, DeploymentConfig, StoreClient};

/// Kills its children on drop so a failing assertion never leaks
/// processes into the CI runner.
struct Cluster {
    children: Vec<(String, Child)>,
}

impl Cluster {
    fn new() -> Self {
        Cluster {
            children: Vec::new(),
        }
    }

    fn spawn(&mut self, name: &str, mut cmd: Command) {
        let child = cmd
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        self.children.push((name.to_string(), child));
    }

    fn kill(&mut self, name: &str) {
        let (_, child) = self
            .children
            .iter_mut()
            .find(|(n, _)| n == name)
            .expect("known child");
        let _ = child.kill();
        let _ = child.wait();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn wait_until(what: &str, deadline: Duration, mut check: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn coordinator_kill_and_restart_through_amcoordd() {
    // Hard watchdog: a wedged cluster must fail fast, not hang the runner.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(240));
        eprintln!("multiproc_failover: watchdog fired, aborting");
        std::process::abort();
    });

    // Ports 9000..15000 — below the Linux ephemeral range (32768+) so an
    // outgoing connection's source port can never steal a listener bind,
    // and disjoint from every other test binary's range.
    let base = 9000 + (std::process::id() % 300) as u16 * 20;
    let coord_ring: Vec<SocketAddr> = (0..3)
        .map(|i| format!("127.0.0.1:{}", base + i).parse().unwrap())
        .collect();
    let coord_serve: Vec<SocketAddr> = (0..3)
        .map(|i| format!("127.0.0.1:{}", base + 3 + i).parse().unwrap())
        .collect();
    let ring_list = coord_ring
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let serve_list = coord_serve
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");

    let dir = std::env::temp_dir().join(format!("amcast-mpf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal_dir = dir.join("wal");

    // amcoordd replicas run durable: their decided log and periodic
    // CoordState checkpoints land under coord_wal, enabling the
    // SIGKILL → restart-in-place phase at the end of this test. The tiny
    // checkpoint cadence makes sure the restart exercises checkpoint
    // load + WAL suffix replay, not just one of the two.
    let coord_wal = dir.join("coord_wal");
    let amcoordd = |id: u32| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_amcoordd"));
        cmd.args([
            "--id",
            &id.to_string(),
            "--ring",
            &ring_list,
            "--serve",
            &serve_list,
            "--session-check-ms",
            "250",
            "--wal-dir",
            coord_wal.to_str().unwrap(),
            "--checkpoint-every",
            "8",
        ]);
        cmd
    };
    let mut cluster = Cluster::new();
    for id in 0..3u32 {
        cluster.spawn(&format!("amcoordd-{id}"), amcoordd(id));
    }

    // One partition of three replicas: ring 0 (members 0,1,2) carries the
    // partition's commands, ring 1 is the global ring.
    // CI runs this smoke as a matrix over EXECUTOR_SHARDS={1,4}: the
    // cross-process failover semantics must hold for the inline runtime
    // and for the sharded executor alike.
    let shards: u32 = std::env::var("EXECUTOR_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let doc = with_executor_shards(
        &with_coord(
            &generate_localhost_mrpstore(1, 3, base + 8, wal_dir.to_str()),
            &coord_serve,
            Duration::from_millis(1200),
        ),
        shards,
    );
    let config_path = dir.join("deployment.toml");
    let mut f = std::fs::File::create(&config_path).unwrap();
    f.write_all(doc.as_bytes()).unwrap();
    drop(f);
    let config = DeploymentConfig::parse(&doc).unwrap();

    // Observe the cluster through our own coordination client; its
    // session opening doubles as "the ensemble's ring has formed".
    let registry = Registry::connect(&coord_serve, CoordClientOptions::default())
        .expect("amcoordd ensemble reachable");

    for id in 0..3u32 {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_amcastd"));
        cmd.args([
            "run",
            "--config",
            config_path.to_str().unwrap(),
            "--node",
            &id.to_string(),
        ]);
        cluster.spawn(&format!("amcastd-{id}"), cmd);
    }
    wait_until(
        "all nodes to advertise themselves",
        Duration::from_secs(30),
        || registry.ephemerals("nodes/").len() == 3,
    );
    let ring0 = RingId::new(0);
    let before = registry.ring(ring0).expect("ring 0 seeded");
    assert_eq!(before.coordinator(), NodeId::new(0));

    let mut store = StoreClient::connect(
        &config,
        ClientId::new(1),
        ClientOptions {
            timeout: Duration::from_secs(10),
            retry_every: Duration::from_secs(1),
            ..ClientOptions::default()
        },
    )
    .expect("store client connects");

    // Linearizable reads before the kill: a write followed by a read
    // (both ordered commands) observes the write.
    store
        .insert("k", Bytes::from_static(b"v1"))
        .expect("insert v1");
    assert_eq!(
        store.read("k").expect("read v1"),
        Some(Bytes::from_static(b"v1"))
    );

    // ---- Pipelined v2 exactly-once through the SIGKILL ----
    // Fill the session's sliding window with non-idempotent counter
    // increments, SIGKILL the ring coordinator while they are in
    // flight, and keep the pipeline full through the cross-process
    // failover. Every re-send the client fires while the ring
    // reconfigures is deduplicated by the replicated session table, so
    // the counter must land on *exactly* the number submitted.
    use common::wire::Wire as _;
    let add = mrpstore::KvCommand::Add {
        key: "hits".into(),
        delta: 1,
    }
    .to_bytes();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    for _ in 0..8 {
        store.raw().submit(ring0, add.clone()).expect("submit");
        submitted += 1;
    }

    // SIGKILL the coordinator of ring 0 (node 0) mid-pipeline.
    // Membership change must flow through amcoordd: survivors report the
    // failure, the service CASes the config, watches spread the new
    // epoch.
    cluster.kill("amcastd-0");

    while submitted < 40 {
        if store.raw().poll_reply(Duration::from_millis(250)).is_some() {
            completed += 1;
        }
        if store.raw().submit(ring0, add.clone()).is_ok() {
            submitted += 1;
        }
    }
    let drain_end = Instant::now() + Duration::from_secs(60);
    while completed < submitted && Instant::now() < drain_end {
        if store.raw().poll_reply(Duration::from_millis(500)).is_some() {
            completed += 1;
        }
    }
    assert_eq!(
        completed, submitted,
        "every pipelined request completes through the failover"
    );
    assert_eq!(
        store.add("hits", 0).expect("read counter"),
        submitted,
        "non-idempotent increments executed exactly once across the SIGKILL"
    );

    wait_until(
        "amcoordd to remove node 0 from ring 0",
        Duration::from_secs(30),
        || {
            registry
                .ring(ring0)
                .map(|cfg| !cfg.contains(NodeId::new(0)) && cfg.coordinator() != NodeId::new(0))
                .unwrap_or(false)
        },
    );
    // The killed process's session TTL lapses: its advertisement is gone.
    wait_until(
        "node 0's ephemeral entry to expire",
        Duration::from_secs(30),
        || {
            !registry
                .ephemerals("nodes/")
                .iter()
                .any(|e| e.key == "nodes/0")
        },
    );

    // Linearizable reads after the kill.
    store
        .insert("k", Bytes::from_static(b"v2"))
        .expect("insert v2");
    assert_eq!(
        store.read("k").expect("read v2"),
        Some(Bytes::from_static(b"v2"))
    );

    // Restart node 0 in place: same WAL dir (the SIGKILLed pid's lock is
    // stolen), recovery path, rejoin through amcoordd.
    {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_amcastd"));
        cmd.args([
            "run",
            "--config",
            config_path.to_str().unwrap(),
            "--node",
            "0",
            "--restart",
        ]);
        cluster.spawn("amcastd-0r", cmd);
    }
    wait_until(
        "node 0 to rejoin ring 0 through amcoordd",
        Duration::from_secs(30),
        || {
            registry
                .ring(ring0)
                .map(|cfg| cfg.contains(NodeId::new(0)))
                .unwrap_or(false)
                && registry
                    .ephemerals("nodes/")
                    .iter()
                    .any(|e| e.key == "nodes/0")
        },
    );

    // The recovered replica answers with up-to-date state.
    let cmd = mrpstore::KvCommand::Read { key: "k".into() };
    let end = Instant::now() + Duration::from_secs(45);
    loop {
        match store
            .raw()
            .request_from(ring0, cmd.to_bytes(), NodeId::new(0))
        {
            Ok(raw) => {
                let resp = mrpstore::KvResponse::decode(&mut raw.clone()).expect("decodes");
                assert_eq!(
                    resp,
                    mrpstore::KvResponse::Value(Some(Bytes::from_static(b"v2")))
                );
                break;
            }
            Err(_) if Instant::now() < end => continue,
            Err(e) => panic!("recovered replica never answered: {e}"),
        }
    }

    // ---- amcoordd durability: SIGKILL a replica, restart in place ----
    // The ensemble must tolerate the loss (majority survives), commit
    // coordination state while the replica is down, and re-admit the
    // replica after a same-dir restart serving that state.
    cluster.kill("amcoordd-1");

    // A coordination write committed during the downtime. The client may
    // be connected to the killed replica, so retry around the failover.
    let mut during_version = 0;
    wait_until(
        "coord write to commit during amcoordd downtime",
        Duration::from_secs(30),
        || match registry.set_meta_cas("during-coord-downtime", Bytes::from_static(b"x"), 0) {
            Ok(v) => {
                during_version = v;
                true
            }
            Err(_) => false,
        },
    );
    // Linearizable data-path reads while the coord replica is down.
    store
        .insert("k", Bytes::from_static(b"v3"))
        .expect("insert v3");
    assert_eq!(
        store.read("k").expect("read v3"),
        Some(Bytes::from_static(b"v3"))
    );

    // Restart in place: same id, same ports, same --wal-dir. The lock
    // left by the SIGKILLed pid is stolen; checkpoint + WAL replay +
    // peer catch-up bring the replica back into its original ensemble.
    cluster.spawn("amcoordd-1r", amcoordd(1));

    // A client pinned to ONLY the restarted replica: serving a session
    // at all proves its ring rejoined (OpenSession replicates through
    // the log, so its applied cursor is advancing again), and the read
    // below proves catch-up surfaced state committed while it was down.
    let pinned = Registry::connect(&coord_serve[1..2], CoordClientOptions::default())
        .expect("restarted amcoordd replica serves clients");
    wait_until(
        "restarted amcoordd to serve ops committed while it was down",
        Duration::from_secs(30),
        || {
            pinned.meta_versioned("during-coord-downtime")
                == Some((during_version, Bytes::from_static(b"x")))
        },
    );

    // Data path is still linearizable with the recovered replica serving.
    store
        .insert("k", Bytes::from_static(b"v4"))
        .expect("insert v4");
    assert_eq!(
        store.read("k").expect("read v4"),
        Some(Bytes::from_static(b"v4"))
    );

    // ---- Stats plane after both failovers (the CI live-e2e guard) ----
    // Every amcastd node — including the SIGKILLed-and-restarted one —
    // must answer a StatsRequest, report zero decision-payload bytes
    // (decisions stayed id-only through two reconfigurations), and show
    // a delivery cursor that still advances: a committed write must bump
    // executed_cmds on every node, not just the one serving the client.
    let baseline: Vec<u64> = config
        .nodes
        .iter()
        .map(|n| {
            let snap = liverun::fetch_stats(n.client_addr, Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("stats from node {}: {e}", n.id));
            assert_eq!(
                snap.counter("decision_payload_bytes"),
                Some(0),
                "node {} circulated payload bytes in decisions",
                n.id
            );
            snap.counter("executed_cmds").unwrap_or(0)
        })
        .collect();
    store
        .insert("k", Bytes::from_static(b"v5"))
        .expect("insert v5");
    wait_until(
        "every node's delivery cursor to advance past the failovers",
        Duration::from_secs(30),
        || {
            config.nodes.iter().zip(&baseline).all(|(n, before)| {
                liverun::fetch_stats(n.client_addr, Duration::from_secs(5))
                    .map(|s| s.counter("executed_cmds").unwrap_or(0) > *before)
                    .unwrap_or(false)
            })
        },
    );
    // The restarted amcoordd replica serves its own per-process registry
    // through the replicated protocol: the apply counter was re-seeded
    // from the recovered cursor, so it is nonzero immediately.
    let coord_stats = pinned
        .node_stats()
        .expect("restarted amcoordd serves stats");
    assert!(
        coord_stats.counter("coord_applied").unwrap_or(0) > 0,
        "restarted amcoordd lost its recovered apply counter"
    );

    drop(pinned);
    drop(store);
    drop(registry);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}
