//! Integration tests: whole deployments over localhost TCP.

use std::time::Duration;

use bytes::Bytes;
use common::ids::ClientId;
use common::wire::Wire;
use liverun::config::generate_localhost_mrpstore;
use liverun::{ClientOptions, Deployment, DeploymentConfig, StoreClient};
use mrpstore::KvResponse;

fn client_opts() -> ClientOptions {
    ClientOptions {
        timeout: Duration::from_secs(20),
        retry_every: Duration::from_secs(2),
    }
}

/// Ports 20000..26000 — disjoint from tests/end_to_end.rs (28000..34000)
/// so parallel test binaries never collide.
fn base_port(offset: u16) -> u16 {
    20000 + (std::process::id() % 150) as u16 * 40 + offset
}

#[test]
fn mrpstore_put_get_scan_over_tcp() {
    let wal_dir = std::env::temp_dir().join(format!("liverun-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let text = generate_localhost_mrpstore(2, 2, base_port(0), wal_dir.to_str());
    let config = DeploymentConfig::parse(&text).unwrap();
    let deployment = Deployment::launch(config.clone()).unwrap();

    let mut client = StoreClient::connect(&config, ClientId::new(1), client_opts()).unwrap();
    for i in 0..20 {
        let r = client
            .insert(&format!("key{i:03}"), Bytes::from(vec![i as u8]))
            .unwrap();
        assert_eq!(r, KvResponse::Ok, "insert key{i:03}");
    }
    for i in 0..20 {
        let v = client.read(&format!("key{i:03}")).unwrap();
        assert_eq!(v, Some(Bytes::from(vec![i as u8])), "read key{i:03}");
    }
    // Cross-partition scan via the global ring: every key from both
    // partitions, merged in order.
    let entries = client.scan("key", "").unwrap();
    assert_eq!(entries.len(), 20);
    assert_eq!(entries[0].0, "key000");
    assert_eq!(entries[19].0, "key019");

    deployment.shutdown();

    // Replicas of the same partition must have recorded identical
    // delivered sequences in their WALs (nodes 0,1 = partition 0; nodes
    // 2,3 = partition 1 in the generated layout).
    for pair in [[0u32, 1u32], [2, 3]] {
        let replay = |n: u32| -> Vec<liverun::WalRecord> {
            storage::wal::Wal::replay(wal_dir.join(format!("node-{n}.wal"))).unwrap()
        };
        let a = replay(pair[0]);
        let b = replay(pair[1]);
        assert!(!a.is_empty(), "node {} executed nothing", pair[0]);
        assert_eq!(a, b, "nodes {pair:?} diverged");
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// A replica is killed mid-run, the service stays available, and after a
/// restart the replica recovers (checkpoint fetch + acceptor catch-up)
/// and serves up-to-date, linearizable reads.
#[test]
fn replica_restart_recovers_and_serves_fresh_reads() {
    use common::ids::{NodeId, RingId};
    use mrpstore::Partitioning;

    let text = generate_localhost_mrpstore(2, 3, base_port(20), None);
    let config = DeploymentConfig::parse(&text).unwrap();
    let mut deployment = Deployment::launch(config.clone()).unwrap();
    let mut client = StoreClient::connect(&config, ClientId::new(7), client_opts()).unwrap();

    // Choose keys owned by partition 0 (nodes 0..3) and partition 1.
    let scheme = Partitioning::Hash { partitions: 2 };
    let p0_key: String = (0..)
        .map(|i| format!("alpha{i}"))
        .find(|k| scheme.partition_of(k).raw() == 0)
        .unwrap();

    for i in 0..10 {
        assert_eq!(
            client
                .insert(&format!("pre{i:02}"), Bytes::from_static(b"v1"))
                .unwrap(),
            KvResponse::Ok
        );
    }
    assert_eq!(
        client.insert(&p0_key, Bytes::from_static(b"old")).unwrap(),
        KvResponse::Ok
    );

    // Kill one replica of partition 0 (node 2 is in ring 0 + global).
    let victim = NodeId::new(2);
    deployment.kill(victim).unwrap();

    // The service must stay available (2-of-3 majority per ring after
    // failure detection removes the dead member) — keep writing, and
    // overwrite the probe key so recovery must catch up to see it.
    for i in 0..10 {
        assert_eq!(
            client
                .insert(&format!("mid{i:02}"), Bytes::from_static(b"v2"))
                .unwrap(),
            KvResponse::Ok,
            "write during downtime {i}"
        );
    }
    assert_eq!(
        client.update(&p0_key, Bytes::from_static(b"new")).unwrap(),
        KvResponse::Ok
    );

    // Restart: the replica rejoins its rings and recovers from partition
    // peers + acceptor retransmission (paper §5.2).
    deployment.restart(victim).unwrap();
    client.raw().reconnect(victim).unwrap();

    // A read answered by the *recovered replica itself* must reflect the
    // update that happened while it was down: reads are ordered through
    // consensus after the write, so anything stale would violate
    // linearizability.
    let ring0 = RingId::new(0);
    let raw = client
        .raw()
        .request_from(
            ring0,
            mrpstore::KvCommand::Read {
                key: p0_key.clone(),
            }
            .to_bytes(),
            victim,
        )
        .unwrap();
    let reply = KvResponse::decode(&mut raw.clone()).unwrap();
    assert_eq!(
        reply,
        KvResponse::Value(Some(Bytes::from_static(b"new"))),
        "recovered replica must serve the post-crash value"
    );

    // And the whole keyspace is intact.
    let entries = client.scan("", "").unwrap();
    assert_eq!(entries.len(), 21, "10 pre + 10 mid + probe key");

    deployment.shutdown();
}
