//! Integration tests: whole deployments over localhost TCP.

use std::time::Duration;

use bytes::Bytes;
use common::ids::ClientId;
use common::wire::Wire;
use liverun::config::generate_localhost_mrpstore;
use liverun::{ClientOptions, Deployment, DeploymentConfig, StoreClient};
use mrpstore::KvResponse;

fn client_opts() -> ClientOptions {
    ClientOptions {
        timeout: Duration::from_secs(20),
        retry_every: Duration::from_secs(2),
        ..ClientOptions::default()
    }
}

/// Ports 20000..26000 — disjoint from tests/end_to_end.rs (28000..34000)
/// so parallel test binaries never collide.
fn base_port(offset: u16) -> u16 {
    20000 + (std::process::id() % 150) as u16 * 40 + offset
}

#[test]
fn mrpstore_put_get_scan_over_tcp() {
    let wal_dir = std::env::temp_dir().join(format!("liverun-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let text = generate_localhost_mrpstore(2, 2, base_port(0), wal_dir.to_str());
    let config = DeploymentConfig::parse(&text).unwrap();
    let deployment = Deployment::launch(config.clone()).unwrap();

    let mut client = StoreClient::connect(&config, ClientId::new(1), client_opts()).unwrap();
    for i in 0..20 {
        let r = client
            .insert(&format!("key{i:03}"), Bytes::from(vec![i as u8]))
            .unwrap();
        assert_eq!(r, KvResponse::Ok, "insert key{i:03}");
    }
    for i in 0..20 {
        let v = client.read(&format!("key{i:03}")).unwrap();
        assert_eq!(v, Some(Bytes::from(vec![i as u8])), "read key{i:03}");
    }
    // Cross-partition scan via the global ring: every key from both
    // partitions, merged in order.
    let entries = client.scan("key", "").unwrap();
    assert_eq!(entries.len(), 20);
    assert_eq!(entries[0].0, "key000");
    assert_eq!(entries[19].0, "key019");

    deployment.shutdown();

    // Replicas of the same partition must have recorded identical
    // delivered sequences in their WALs (nodes 0,1 = partition 0; nodes
    // 2,3 = partition 1 in the generated layout). With the default
    // `executor_shards = 1` the whole stream lives in shard 0's
    // segment directory.
    use common::ids::NodeId;
    for pair in [[0u32, 1u32], [2, 3]] {
        let replay = |n: u32| -> Vec<(u64, liverun::WalRecord)> {
            storage::wal::SegmentedWal::replay(liverun::shard_wal_dir(&wal_dir, NodeId::new(n), 0))
                .unwrap()
        };
        let a = replay(pair[0]);
        let b = replay(pair[1]);
        assert!(!a.is_empty(), "node {} executed nothing", pair[0]);
        assert_eq!(a, b, "nodes {pair:?} diverged");
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Satellite of the rotated-WAL port: a durable deployment with an
/// aggressive segment-roll cadence rotates its delivered-command logs,
/// prunes them at checkpoint cuts, and a killed replica restarts in
/// place *over the rotated directory*, resuming its position counter
/// past everything ever written.
#[test]
fn restart_in_place_over_rotated_wal_dir() {
    use common::ids::NodeId;
    use storage::wal::SegmentedWal;

    let wal_dir = std::env::temp_dir().join(format!("liverun-rotwal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let text = generate_localhost_mrpstore(1, 3, base_port(100), wal_dir.to_str()).replacen(
        "[deployment]\n",
        "[deployment]\nwal_roll_every = 8\n",
        1,
    );
    let config = DeploymentConfig::parse(&text).unwrap();
    assert_eq!(config.wal_roll_every, 8);
    let mut deployment = Deployment::launch(config.clone()).unwrap();
    let mut client = StoreClient::connect(&config, ClientId::new(11), client_opts()).unwrap();

    for i in 0..40 {
        assert_eq!(
            client
                .insert(&format!("rot{i:02}"), Bytes::from(vec![i as u8]))
                .unwrap(),
            KvResponse::Ok
        );
    }

    // The roll cadence (8) is far below the delivered count, so the log
    // must have rotated: either several segments survive, or pruning
    // already dropped the oldest ones and the first surviving segment
    // starts past position 0 (segment names carry their first position).
    let victim = NodeId::new(2);
    let victim_dir = liverun::shard_wal_dir(&wal_dir, victim, 0);
    let segments = SegmentedWal::segments(&victim_dir);
    let first_pos = segments
        .first()
        .and_then(|p| {
            p.file_name()?
                .to_str()?
                .strip_prefix("seg-")?
                .strip_suffix(".wal")?
                .parse::<u64>()
                .ok()
        })
        .unwrap_or(0);
    assert!(
        segments.len() > 1 || first_pos > 0,
        "wal never rotated: {segments:?}"
    );
    let pre_end = SegmentedWal::end_pos(&victim_dir).unwrap();
    assert!(pre_end > 0);

    deployment.kill(victim).unwrap();
    for i in 0..10 {
        assert_eq!(
            client
                .insert(&format!("mid{i:02}"), Bytes::from(vec![i as u8]))
                .unwrap(),
            KvResponse::Ok
        );
    }
    deployment.restart(victim).unwrap();
    client.raw().reconnect(victim).unwrap();

    // The recovered replica serves fresh reads...
    let raw = client
        .raw()
        .request_from(
            common::ids::RingId::new(0),
            mrpstore::KvCommand::Read {
                key: "mid09".into(),
            }
            .to_bytes(),
            victim,
        )
        .unwrap();
    assert_eq!(
        KvResponse::decode(&mut raw.clone()).unwrap(),
        KvResponse::Value(Some(Bytes::from(vec![9]))),
        "recovered replica must serve post-crash writes"
    );
    deployment.shutdown();

    // ...and its reopened log resumed *past* the pre-kill positions:
    // strictly increasing, never reusing a position.
    let records = SegmentedWal::replay::<liverun::WalRecord>(&victim_dir).unwrap();
    let positions: Vec<u64> = records.iter().map(|(p, _)| *p).collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "positions must stay strictly monotone across the restart"
    );
    assert!(
        positions.last().copied().unwrap_or(0) >= pre_end,
        "restarted writer resumed below its pre-kill end position"
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// A replica is killed mid-run, the service stays available, and after a
/// restart the replica recovers (checkpoint fetch + acceptor catch-up)
/// and serves up-to-date, linearizable reads.
#[test]
fn replica_restart_recovers_and_serves_fresh_reads() {
    use common::ids::{NodeId, RingId};
    use mrpstore::Partitioning;

    let text = generate_localhost_mrpstore(2, 3, base_port(20), None);
    let config = DeploymentConfig::parse(&text).unwrap();
    let mut deployment = Deployment::launch(config.clone()).unwrap();
    let mut client = StoreClient::connect(&config, ClientId::new(7), client_opts()).unwrap();

    // Choose keys owned by partition 0 (nodes 0..3) and partition 1.
    let scheme = Partitioning::Hash { partitions: 2 };
    let p0_key: String = (0..)
        .map(|i| format!("alpha{i}"))
        .find(|k| scheme.partition_of(k).raw() == 0)
        .unwrap();

    for i in 0..10 {
        assert_eq!(
            client
                .insert(&format!("pre{i:02}"), Bytes::from_static(b"v1"))
                .unwrap(),
            KvResponse::Ok
        );
    }
    assert_eq!(
        client.insert(&p0_key, Bytes::from_static(b"old")).unwrap(),
        KvResponse::Ok
    );

    // Kill one replica of partition 0 (node 2 is in ring 0 + global).
    let victim = NodeId::new(2);
    deployment.kill(victim).unwrap();

    // The service must stay available (2-of-3 majority per ring after
    // failure detection removes the dead member) — keep writing, and
    // overwrite the probe key so recovery must catch up to see it.
    for i in 0..10 {
        assert_eq!(
            client
                .insert(&format!("mid{i:02}"), Bytes::from_static(b"v2"))
                .unwrap(),
            KvResponse::Ok,
            "write during downtime {i}"
        );
    }
    assert_eq!(
        client.update(&p0_key, Bytes::from_static(b"new")).unwrap(),
        KvResponse::Ok
    );

    // Restart: the replica rejoins its rings and recovers from partition
    // peers + acceptor retransmission (paper §5.2).
    deployment.restart(victim).unwrap();
    client.raw().reconnect(victim).unwrap();

    // A read answered by the *recovered replica itself* must reflect the
    // update that happened while it was down: reads are ordered through
    // consensus after the write, so anything stale would violate
    // linearizability.
    let ring0 = RingId::new(0);
    let raw = client
        .raw()
        .request_from(
            ring0,
            mrpstore::KvCommand::Read {
                key: p0_key.clone(),
            }
            .to_bytes(),
            victim,
        )
        .unwrap();
    let reply = KvResponse::decode(&mut raw.clone()).unwrap();
    assert_eq!(
        reply,
        KvResponse::Value(Some(Bytes::from_static(b"new"))),
        "recovered replica must serve the post-crash value"
    );

    // And the whole keyspace is intact.
    let entries = client.scan("", "").unwrap();
    assert_eq!(entries.len(), 21, "10 pre + 10 mid + probe key");

    deployment.shutdown();
}

/// The protocol-v2 exactly-once acceptance: a non-idempotent counter is
/// incremented through a pipelined session while the serving ring
/// coordinator is killed mid-pipeline; the client retries through the
/// failover, yet every increment executes exactly once on **every**
/// replica — including one that is itself killed and restarted in place
/// afterwards (the session table rides the app snapshot).
#[test]
fn exactly_once_counter_across_coordinator_kill_and_restart() {
    use common::ids::{NodeId, RingId};
    use mrpstore::{KvCommand, KvResponse, Partitioning};

    let text = generate_localhost_mrpstore(2, 3, base_port(40), None);
    let config = DeploymentConfig::parse(&text).unwrap();
    let mut deployment = Deployment::launch(config.clone()).unwrap();
    let mut client = StoreClient::connect(
        &config,
        ClientId::new(3),
        ClientOptions {
            timeout: Duration::from_secs(30),
            // Aggressive retries on purpose: under v1 this would
            // over-count; under v2 the session table dedups them.
            retry_every: Duration::from_millis(300),
            ..ClientOptions::default()
        },
    )
    .unwrap();

    // A counter key owned by partition 0 (nodes 0..=2, ring 0 — whose
    // coordinator is node 0, the kill victim).
    let scheme = Partitioning::Hash { partitions: 2 };
    let key: String = (0..)
        .map(|i| format!("ctr{i}"))
        .find(|k| scheme.partition_of(k).raw() == 0)
        .unwrap();
    let ring0 = RingId::new(0);
    let add = KvCommand::Add {
        key: key.clone(),
        delta: 1,
    }
    .to_bytes();

    // Fill the window, then kill the coordinator mid-pipeline.
    let mut submitted = 0u64;
    let mut completed = 0u64;
    for _ in 0..8 {
        client.raw().submit(ring0, add.clone()).expect("submit");
        submitted += 1;
    }
    deployment.kill(NodeId::new(0)).unwrap();
    let dump_rings = |deployment: &Deployment| {
        for r in [0u16, 1, 2] {
            eprintln!(
                "ring {r}: {:?}",
                deployment.registry().ring(RingId::new(r)).map(|c| (
                    c.members().to_vec(),
                    c.coordinator(),
                    c.epoch()
                ))
            );
        }
    };

    // Keep the pipeline full through the failover, then drain.
    while submitted < 32 {
        if client
            .raw()
            .poll_reply(Duration::from_millis(250))
            .is_some()
        {
            completed += 1;
        }
        if client.raw().submit(ring0, add.clone()).is_ok() {
            submitted += 1;
        }
    }
    let drain_end = std::time::Instant::now() + Duration::from_secs(60);
    while completed < submitted && std::time::Instant::now() < drain_end {
        if client
            .raw()
            .poll_reply(Duration::from_millis(500))
            .is_some()
        {
            completed += 1;
        }
    }
    if completed < submitted {
        dump_rings(&deployment);
    }
    assert_eq!(
        completed,
        submitted,
        "every pipelined request completes (client state: {:?})",
        client.raw().stats()
    );

    // Exactly-once on every *surviving* replica of the partition: each
    // answers the same count from its own state machine.
    let read = KvCommand::Read { key: key.clone() }.to_bytes();
    for replica in [1u32, 2] {
        let raw = client
            .raw()
            .request_from(ring0, read.clone(), NodeId::new(replica))
            .unwrap();
        assert_eq!(
            KvResponse::decode(&mut raw.clone()).unwrap(),
            KvResponse::Value(Some(Bytes::copy_from_slice(&submitted.to_le_bytes()))),
            "replica {replica} executed each increment exactly once"
        );
    }

    // Restart the killed replica in place; it recovers state (and the
    // session dedup table, which rides the snapshot) from its partition
    // peers. More increments land exactly once, and the *recovered*
    // replica agrees on the total.
    deployment.restart(NodeId::new(0)).unwrap();
    client.raw().reconnect(NodeId::new(0)).unwrap();
    let total = submitted + 5;
    for _ in 0..5 {
        client.add(&key, 1).expect("post-restart add");
    }
    let raw = client
        .raw()
        .request_from(ring0, read.clone(), NodeId::new(0))
        .unwrap();
    assert_eq!(
        KvResponse::decode(&mut raw.clone()).unwrap(),
        KvResponse::Value(Some(Bytes::copy_from_slice(&total.to_le_bytes()))),
        "restarted replica recovered the exactly-once counter"
    );

    deployment.shutdown();
}

/// The stats plane end to end: a 3-node deployment answers
/// `StatsRequest` on every node, and the per-node pipeline counters
/// reconcile with the submitted command count — each command is
/// proposed by exactly one node and executed by all three, so per-node
/// proposal counts *sum* to the (common) per-node executed count.
#[test]
fn stats_plane_reports_per_node_pipeline_counts() {
    use std::time::Instant;

    let text = generate_localhost_mrpstore(1, 3, base_port(80), None);
    let config = DeploymentConfig::parse(&text).unwrap();
    let deployment = Deployment::launch(config.clone()).unwrap();
    let mut client = StoreClient::connect(&config, ClientId::new(9), client_opts()).unwrap();

    const N: u64 = 24;
    for i in 0..N {
        assert_eq!(
            client
                .insert(&format!("obs{i:02}"), Bytes::from(vec![i as u8]))
                .unwrap(),
            KvResponse::Ok
        );
    }

    // Every replica applies the same totally-ordered log, so executed
    // counts converge to one common value ≥ N (session-control traffic
    // may add a few commands on top of the client's). Poll: the replica
    // that answered the client runs a beat ahead of its peers.
    let deadline = Instant::now() + Duration::from_secs(10);
    let snaps = loop {
        let snaps: Vec<common::obs::ObsSnapshot> = config
            .nodes
            .iter()
            .map(|n| liverun::fetch_stats(n.client_addr, Duration::from_secs(5)).expect("stats"))
            .collect();
        let execs: Vec<u64> = snaps
            .iter()
            .map(|s| s.counter("executed_cmds").unwrap_or(0))
            .collect();
        if execs.iter().all(|&e| e >= N && e == execs[0]) {
            break snaps;
        }
        assert!(
            Instant::now() < deadline,
            "per-node executed counts never converged: {execs:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };

    let proposed: u64 = snaps
        .iter()
        .map(|s| s.counter("proposed_cmds").unwrap_or(0))
        .sum();
    assert_eq!(
        proposed,
        snaps[0].counter("executed_cmds").unwrap(),
        "per-node proposal counts sum to the common executed count"
    );
    for snap in &snaps {
        assert!(
            snap.counter("instances_decided").unwrap_or(0) > 0,
            "node {} decided nothing",
            snap.node
        );
        assert_eq!(
            snap.counter("decision_payload_bytes"),
            Some(0),
            "node {} circulated payload bytes in decisions",
            snap.node
        );
    }

    deployment.shutdown();
}

/// The multi-partition fan-out completion rule under a replica kill
/// mid-fanout: a scan multicast on the global ring completes once one
/// replica of *every* partition answered — a dead replica of a
/// partition must not wedge it as long as a sibling survives.
#[test]
fn fanout_completes_despite_replica_kill_mid_fanout() {
    use common::ids::NodeId;

    let text = generate_localhost_mrpstore(2, 2, base_port(60), None);
    let config = DeploymentConfig::parse(&text).unwrap();
    let mut deployment = Deployment::launch(config.clone()).unwrap();

    let mut setup = StoreClient::connect(&config, ClientId::new(4), client_opts()).unwrap();
    for i in 0..16 {
        assert_eq!(
            setup
                .insert(&format!("fan{i:02}"), Bytes::from(vec![i as u8]))
                .unwrap(),
            KvResponse::Ok
        );
    }

    // Run the scan on its own thread and kill a partition-1 replica
    // while it is in flight: the fan-out must complete from the
    // surviving replicas (one answer per partition), retrying through
    // the global ring's reconfiguration if the kill interrupts it.
    let cfg = config.clone();
    let scanner = std::thread::spawn(move || {
        let mut c = StoreClient::connect(
            &cfg,
            ClientId::new(5),
            ClientOptions {
                timeout: Duration::from_secs(30),
                retry_every: Duration::from_millis(300),
                ..ClientOptions::default()
            },
        )
        .unwrap();
        c.scan("fan", "")
    });
    std::thread::sleep(Duration::from_millis(20));
    deployment.kill(NodeId::new(3)).unwrap();
    let entries = scanner.join().expect("scanner thread").expect("scan");
    assert_eq!(entries.len(), 16, "scan merged both partitions");

    // And a scan issued after the kill (deterministically one replica
    // down) still completes: partition 1's surviving replica answers.
    let entries = setup.scan("fan", "").unwrap();
    assert_eq!(entries.len(), 16);

    deployment.shutdown();
}

/// Credit-based backpressure end to end: a node driven into proposal
/// backlog shrinks the session window via `CreditGrant` (overload
/// degrades into queueing at the client), and the window re-expands once
/// the backlog drains — with every pipelined request completing exactly
/// once and no typed-error storm.
///
/// The overload is made deterministic through the config: a long batch
/// delay with count/byte seals out of reach keeps submitted envelopes
/// sitting in the batcher, and `credit_backlog_high = 4` trips the
/// controller as soon as a handful are pending.
#[test]
fn overload_shrinks_credit_window_and_drain_restores_it() {
    use common::ids::RingId;
    use mrpstore::KvCommand;
    use std::time::Instant;

    // Replace the generator's batching line outright: the hand-parsed
    // TOML lets a later duplicate key win, so prepending would be inert.
    let text = generate_localhost_mrpstore(1, 3, base_port(160), None).replacen(
        "batch_max = 64\nbatch_delay_ms = 2\n",
        "batch_max = 10000\nbatch_max_bytes = 1048576\nbatch_delay_ms = 150\n\
         client_window = 64\ncredit_min_window = 1\ncredit_backlog_high = 4\n",
        1,
    );
    let config = DeploymentConfig::parse(&text).unwrap();
    assert_eq!(config.credit_backlog_high, 4);
    assert_eq!(config.batch_delay, Duration::from_millis(150));
    let deployment = Deployment::launch(config.clone()).unwrap();
    let mut client = StoreClient::connect(&config, ClientId::new(31), client_opts()).unwrap();

    let ring0 = RingId::new(0);
    let add = KvCommand::Add {
        key: "pressure".into(),
        delta: 1,
    }
    .to_bytes();

    // Pipeline hard: keep the window full so envelopes pile up in the
    // batcher faster than the 150 ms seal cadence drains them.
    const TOTAL: u64 = 96;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut min_window = usize::MAX;
    while submitted < TOTAL {
        client.raw().submit(ring0, add.clone()).expect("submit");
        submitted += 1;
        if client.raw().poll_reply(Duration::ZERO).is_some() {
            completed += 1;
        }
        min_window = min_window.min(client.raw().current_window());
    }
    let drain_end = Instant::now() + Duration::from_secs(60);
    while completed < submitted && Instant::now() < drain_end {
        if client
            .raw()
            .poll_reply(Duration::from_millis(250))
            .is_some()
        {
            completed += 1;
        }
        min_window = min_window.min(client.raw().current_window());
    }
    assert_eq!(
        completed,
        submitted,
        "every pipelined request completes despite the clamp (client state: {:?})",
        client.raw().stats()
    );
    assert!(
        min_window <= 16,
        "overload never clamped the window (min observed: {min_window})"
    );

    // Backlog drained: the controller climbs back additively. Keep
    // pumping so the client sees the grants.
    let expand_end = Instant::now() + Duration::from_secs(10);
    while client.raw().current_window() < 64 && Instant::now() < expand_end {
        let _ = client.raw().poll_reply(Duration::from_millis(100));
    }
    assert_eq!(
        client.raw().current_window(),
        64,
        "window re-expands to the full grant after the backlog drains"
    );

    // Exactly-once under the clamp: the counter saw each increment once —
    // no retry was re-executed, none was lost.
    let raw = client
        .raw()
        .request(
            ring0,
            KvCommand::Read {
                key: "pressure".into(),
            }
            .to_bytes(),
        )
        .unwrap();
    assert_eq!(
        KvResponse::decode(&mut raw.clone()).unwrap(),
        KvResponse::Value(Some(Bytes::copy_from_slice(&TOTAL.to_le_bytes()))),
        "each clamped-pipeline increment executed exactly once"
    );

    deployment.shutdown();
}

/// The sharded runtime under the exactly-once acceptance: with
/// `executor_shards = 4` a replica is killed mid-run and restarted in
/// place. The recovered node must agree with its peers on the
/// non-idempotent counter (session table and state ride the checkpoint —
/// no lost and no double-executed increment), serve cross-shard scans,
/// and resume each of its per-shard WAL cursors monotonically.
#[test]
fn sharded_executor_restart_in_place_is_exactly_once() {
    use common::ids::{NodeId, RingId};
    use liverun::config::with_executor_shards;
    use mrpstore::{KvCommand, Partitioning};
    use storage::wal::SegmentedWal;

    let wal_dir = std::env::temp_dir().join(format!("liverun-shardwal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let text = with_executor_shards(
        &generate_localhost_mrpstore(2, 3, base_port(120), wal_dir.to_str()),
        4,
    );
    let config = DeploymentConfig::parse(&text).unwrap();
    assert_eq!(config.executor_shards, 4);
    let mut deployment = Deployment::launch(config.clone()).unwrap();
    let mut client = StoreClient::connect(&config, ClientId::new(21), client_opts()).unwrap();

    // A counter key owned by partition 0, incremented through the v2
    // session — the non-idempotent probe for double-execution.
    let scheme = Partitioning::Hash { partitions: 2 };
    let key: String = (0..)
        .map(|i| format!("sctr{i}"))
        .find(|k| scheme.partition_of(k).raw() == 0)
        .unwrap();
    for _ in 0..8 {
        client.add(&key, 1).unwrap();
    }
    // Spread writes across every executor shard of both partitions.
    for i in 0..24 {
        assert_eq!(
            client
                .insert(&format!("sh{i:02}"), Bytes::from(vec![i as u8]))
                .unwrap(),
            KvResponse::Ok
        );
    }

    let victim = NodeId::new(2);
    let pre_ends: Vec<u64> = (0..4)
        .map(|k| SegmentedWal::end_pos(liverun::shard_wal_dir(&wal_dir, victim, k)).unwrap())
        .collect();
    deployment.kill(victim).unwrap();

    // Increments and writes continue while the replica is down.
    for _ in 0..7 {
        client.add(&key, 1).unwrap();
    }
    deployment.restart(victim).unwrap();
    client.raw().reconnect(victim).unwrap();

    // Post-restart increments land exactly once.
    for _ in 0..5 {
        client.add(&key, 1).unwrap();
    }

    // Cross-shard barrier after recovery: the scan merges every shard of
    // every partition (and, being Route::All, lands one post-restart
    // record in every shard WAL of the recovered node).
    let entries = client.scan("sh", "").unwrap();
    assert_eq!(entries.len(), 24, "scan merged all executor shards");

    // The *recovered* replica answers the counter total from its own
    // sharded state. Ring delivery is totally ordered, so the victim
    // answering this read (proposed after the scan) proves it has
    // dispatched the scan to all four of its executor shards; shutdown
    // then joins the shard threads, flushing their WALs.
    let total: u64 = 8 + 7 + 5;
    let read = KvCommand::Read { key: key.clone() }.to_bytes();
    let raw = client
        .raw()
        .request_from(RingId::new(0), read, victim)
        .unwrap();
    assert_eq!(
        KvResponse::decode(&mut raw.clone()).unwrap(),
        KvResponse::Value(Some(Bytes::copy_from_slice(&total.to_le_bytes()))),
        "restarted sharded replica must recover the exactly-once counter"
    );

    deployment.shutdown();

    // Every shard WAL cursor resumed past its pre-kill end — positions
    // stay strictly monotone per shard, never reused.
    for (k, pre_end) in pre_ends.iter().enumerate() {
        let dir = liverun::shard_wal_dir(&wal_dir, victim, k);
        let positions: Vec<u64> = SegmentedWal::replay::<liverun::WalRecord>(&dir)
            .unwrap()
            .iter()
            .map(|(p, _)| *p)
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "shard {k} positions must stay strictly monotone across restart"
        );
        assert!(
            positions.last().copied().unwrap_or(0) >= *pre_end,
            "shard {k} cursor resumed below its pre-kill end"
        );
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Live key-range migration under load: a range moves from partition 0
/// to partition 1 (freeze → chunked install → cutover) while a writer
/// hammers a non-idempotent counter inside the moving range. Exactly
/// once must hold across the cutover — every acknowledged increment
/// applied, none applied twice — and clients must re-route themselves:
/// the writer mid-flight (through `Busy` backoff and `Moved` refresh)
/// and a fresh client that still routes by the boot-time map.
#[test]
fn live_range_migration_is_exactly_once_and_reroutes() {
    let text = liverun::config::with_range_partitioning(&generate_localhost_mrpstore(
        2,
        2,
        base_port(200),
        None,
    ));
    let config = DeploymentConfig::parse(&text).unwrap();
    assert!(config.range_partitioned);
    let deployment = Deployment::launch(config.clone()).unwrap();

    // Boot scheme: two ranges split at "n" — keys "g…" live on
    // partition 0. Seed ordinary entries inside the range that will
    // move, plus some outside it.
    let mut admin = StoreClient::connect(&config, ClientId::new(21), client_opts()).unwrap();
    for i in 0..10 {
        assert_eq!(
            admin
                .insert(&format!("g{i:02}"), Bytes::from(vec![i as u8]))
                .unwrap(),
            KvResponse::Ok
        );
    }
    assert_eq!(
        admin.insert("q-stays", Bytes::from_static(b"p1")).unwrap(),
        KvResponse::Ok
    );

    // Writer thread: 60 exactly-once increments of a counter inside the
    // moving range, concurrent with the migration. Each returned value
    // is the counter after that increment.
    let writer_config = config.clone();
    let writer = std::thread::spawn(move || {
        let mut client =
            StoreClient::connect(&writer_config, ClientId::new(23), client_opts()).unwrap();
        (0..60)
            .map(|_| {
                let v = client.add("gcnt", 1).unwrap();
                std::thread::sleep(Duration::from_millis(5));
                v
            })
            .collect::<Vec<u64>>()
    });

    // Move "g".."h" (the seeded keys and the live counter) to
    // partition 1 mid-workload.
    std::thread::sleep(Duration::from_millis(60));
    let version = admin.migrate_range("g", "h", 1).unwrap();
    assert_eq!(version, 1);

    let returns = writer.join().unwrap();
    // Exactly once across freeze, Busy retries and the cutover: the
    // single writer saw every value 1..=60 exactly once, in order.
    assert_eq!(returns, (1..=60).collect::<Vec<u64>>());

    // The admin client cut over its own map at the migration; reads of
    // shipped entries go straight to the new owner.
    assert_eq!(admin.map_version(), 1);
    for i in 0..10 {
        assert_eq!(
            admin.read(&format!("g{i:02}")).unwrap(),
            Some(Bytes::from(vec![i as u8])),
            "shipped entry g{i:02} lost in migration"
        );
    }
    assert_eq!(
        admin.read("q-stays").unwrap(),
        Some(Bytes::from_static(b"p1"))
    );

    // A fresh client still routes by the boot-time map; its first touch
    // of the moved range answers `Moved`, and the client re-routes by
    // itself — no manual intervention.
    let mut stale = StoreClient::connect(&config, ClientId::new(22), client_opts()).unwrap();
    assert_eq!(stale.map_version(), 0);
    assert_eq!(stale.add("gcnt", 1).unwrap(), 61);
    assert_eq!(stale.map_version(), 1);

    // Scans across the moved boundary merge each key exactly once.
    let entries = admin.scan("g", "h").unwrap();
    assert_eq!(entries.len(), 11, "10 seeded entries plus the counter");

    deployment.shutdown();
}
