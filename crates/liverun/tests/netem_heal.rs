//! Region-partition heal over a shaped (netem) geo deployment.
//!
//! A 3-region, 3-replica MRP-Store runs under the paper's EC2 latency
//! matrix (scaled to 5% so CI pays milliseconds, not WAN seconds). A
//! client in eu-west-1 pipelines non-idempotent counter increments
//! while us-west-2 is cut off by a directional netem partition: the
//! surviving majority must keep ordering (progress during the
//! partition), the client must keep landing increments exactly once
//! through its failover re-sends, and after the heal the counter must
//! equal the number of acknowledged increments — a double-executed
//! re-send would overshoot, a lost one undershoot. Finally the stats
//! plane of the shaped nodes must show the shaping itself:
//! `netem_delay_ms` accumulating and `netem_dropped` counting the
//! partition cuts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::ids::ClientId;
use liverun::config::{generate_localhost_mrpstore, with_geo};
use liverun::{fetch_stats, ClientOptions, Deployment, DeploymentConfig, StoreClient};
use mrpstore::KvResponse;

/// Ports 36000+ — disjoint from the other liverun test binaries
/// (live_deployment at 20000.., end_to_end at 28000..).
fn base_port() -> u16 {
    36000 + (std::process::id() % 90) as u16 * 40
}

#[test]
fn partition_heal_keeps_exactly_once() {
    let base = generate_localhost_mrpstore(1, 3, base_port(), None);
    let doc = with_geo(
        &base,
        &[
            ("eu-west-1", &[0]),
            ("us-east-1", &[1]),
            ("us-west-2", &[2]),
        ],
        5,
    );
    let config = DeploymentConfig::parse(&doc).unwrap();
    let deployment = Deployment::launch(config.clone()).unwrap();
    let netem = deployment.netem().expect("geo deployment has netem");

    // The client lives in eu-west-1: every link it uses is shaped, and
    // partitioning us-west-2 cuts its route to node 2 as well.
    let client_config = deployment.config_from("eu-west-1").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let acked = Arc::new(AtomicU64::new(0));
    let acked2 = Arc::clone(&acked);
    let worker = std::thread::spawn(move || {
        let mut client = StoreClient::connect(
            &client_config,
            ClientId::new(901),
            ClientOptions {
                timeout: Duration::from_secs(30),
                retry_every: Duration::from_millis(500),
                ..ClientOptions::default()
            },
        )
        .unwrap();
        let mut acks = 0u64;
        while !stop2.load(Ordering::SeqCst) {
            // Non-idempotent increment; the client re-sends one logical
            // request until acknowledged and the replicated session
            // table deduplicates, so every ack is exactly one bump.
            match client.add("ctr", 1) {
                Ok(_) => {
                    acks += 1;
                    acked2.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => panic!("increment never landed: {e}"),
            }
        }
        // Read through the same route (its front is a replica that just
        // acknowledged, hence has applied everything it acked).
        let value = client
            .read("ctr")
            .unwrap()
            .map(|b| u64::from_le_bytes(b.as_ref().try_into().unwrap()))
            .unwrap_or(0);
        (acks, value)
    });

    let settle = Duration::from_millis(1500);
    std::thread::sleep(settle);

    // Cut us-west-2 off. Node 2 is alive but unreachable: the surviving
    // eu-west-1/us-east-1 majority must reconfigure and keep ordering —
    // acknowledged increments must keep arriving *during* the partition.
    netem.partition("us-west-2");
    std::thread::sleep(Duration::from_millis(500));
    let at_cut = acked.load(Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(2500));
    let in_partition = acked.load(Ordering::SeqCst);
    assert!(
        in_partition > at_cut,
        "no progress during the partition (stuck at {at_cut} acks)"
    );

    netem.heal("us-west-2");
    std::thread::sleep(settle);

    stop.store(true, Ordering::SeqCst);
    let (acks, counter) = worker.join().unwrap();
    assert!(acks > 0, "client made no progress at all");
    assert_eq!(
        counter, acks,
        "exactly-once violated: {acks} acknowledged increments, counter at {counter}"
    );

    // A partitioned-then-healed WAN leaves its fingerprints in the
    // stats plane. Node 0 (eu-west-1) shaped every peer chunk it sent;
    // the partition cut at least one connection somewhere.
    let snap0 = fetch_stats(config.nodes[0].client_addr, Duration::from_secs(5)).unwrap();
    assert!(
        snap0.counter("netem_delay_ms").unwrap_or(0) > 0,
        "node 0 sent through shaped links, delay must accumulate"
    );
    let dropped: u64 = config
        .nodes
        .iter()
        .map(|n| {
            fetch_stats(n.client_addr, Duration::from_secs(5))
                .map(|s| s.counter("netem_dropped").unwrap_or(0))
                .unwrap_or(0)
        })
        .sum();
    assert!(dropped > 0, "the partition must have cut connections");

    // Sanity: the store still serves reads after all that.
    let mut check = StoreClient::connect(
        &config,
        ClientId::new(902),
        ClientOptions {
            timeout: Duration::from_secs(20),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    assert!(matches!(
        check.insert("probe", bytes::Bytes::from_static(b"x")),
        Ok(KvResponse::Ok)
    ));

    deployment.shutdown();
}
