//! Replica checkpoint storage.
//!
//! Replicas periodically serialize their service state and write it
//! synchronously to disk, identified by the checkpoint tuple `k_p`
//! (paper §5.2, Predicate 1). A recovering replica reads its latest
//! durable checkpoint, or installs a newer one fetched from a partition
//! peer.

use bytes::Bytes;
use common::msg::CheckpointTuple;
use common::time::SimTime;

use crate::profile::{DiskTimeline, StorageMode, WriteReceipt};

#[derive(Clone, Debug)]
struct Entry {
    tuple: CheckpointTuple,
    state: Bytes,
    durable_at: SimTime,
}

/// Durable checkpoint store for one replica.
///
/// Keeps the most recent `retain` checkpoints (older ones are garbage
/// collected like the paper's log files).
#[derive(Debug)]
pub struct CheckpointStore {
    disk: DiskTimeline,
    entries: Vec<Entry>,
    retain: usize,
}

impl CheckpointStore {
    /// An empty store writing with `mode`, retaining the last two
    /// checkpoints.
    pub fn new(mode: StorageMode) -> Self {
        CheckpointStore {
            disk: DiskTimeline::new(mode),
            entries: Vec::new(),
            retain: 2,
        }
    }

    /// Saves checkpoint `tuple` with serialized `state` at `now`.
    ///
    /// Returns the write receipt; the checkpoint only counts as taken (for
    /// trim votes) once `receipt.ack_at` passes — checkpoints are written
    /// synchronously in the paper's services.
    pub fn save(&mut self, tuple: CheckpointTuple, state: Bytes, now: SimTime) -> WriteReceipt {
        let receipt = self.disk.write(state.len() + 32, now);
        self.entries.push(Entry {
            tuple,
            state,
            durable_at: receipt.durable_at,
        });
        if self.entries.len() > self.retain {
            let excess = self.entries.len() - self.retain;
            self.entries.drain(..excess);
        }
        receipt
    }

    /// The most recent checkpoint (regardless of durability) — what a
    /// *running* replica advertises to peers.
    pub fn latest(&self) -> Option<(&CheckpointTuple, &Bytes)> {
        self.entries.last().map(|e| (&e.tuple, &e.state))
    }

    /// The most recent checkpoint durable at `now` — what survives a crash.
    pub fn latest_durable(&self, now: SimTime) -> Option<(&CheckpointTuple, &Bytes)> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.durable_at <= now)
            .map(|e| (&e.tuple, &e.state))
    }

    /// The state stored for exactly `tuple`, if still retained.
    pub fn get(&self, tuple: &CheckpointTuple) -> Option<&Bytes> {
        self.entries
            .iter()
            .rev()
            .find(|e| &e.tuple == tuple)
            .map(|e| &e.state)
    }

    /// Simulates a crash at `now`: non-durable checkpoints disappear.
    /// In-memory stores lose everything.
    pub fn crash(&mut self, now: SimTime) {
        if matches!(self.disk.mode(), StorageMode::InMemory) {
            self.entries.clear();
            return;
        }
        self.entries.retain(|e| e.durable_at <= now);
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been checkpointed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DiskProfile;
    use common::ids::{InstanceId, RingId};

    fn tuple(i: u64) -> CheckpointTuple {
        CheckpointTuple::new(vec![(RingId::new(0), InstanceId::new(i))])
    }

    #[test]
    fn save_and_fetch_latest() {
        let mut s = CheckpointStore::new(StorageMode::InMemory);
        s.save(tuple(5), Bytes::from_static(b"five"), SimTime::ZERO);
        s.save(tuple(9), Bytes::from_static(b"nine"), SimTime::ZERO);
        let (t, state) = s.latest().unwrap();
        assert_eq!(t, &tuple(9));
        assert_eq!(state, &Bytes::from_static(b"nine"));
        assert_eq!(s.get(&tuple(5)).unwrap(), &Bytes::from_static(b"five"));
    }

    #[test]
    fn retains_bounded_history() {
        let mut s = CheckpointStore::new(StorageMode::InMemory);
        for i in 0..5 {
            s.save(tuple(i), Bytes::new(), SimTime::ZERO);
        }
        assert_eq!(s.len(), 2);
        assert!(s.get(&tuple(0)).is_none());
        assert!(s.get(&tuple(4)).is_some());
    }

    #[test]
    fn durable_checkpoint_survives_crash() {
        let mut s = CheckpointStore::new(StorageMode::Sync(DiskProfile::ssd()));
        let r = s.save(tuple(1), Bytes::from_static(b"one"), SimTime::ZERO);
        // Crash before the write completes: gone.
        let mut early = CheckpointStore::new(StorageMode::Sync(DiskProfile::ssd()));
        early.save(tuple(1), Bytes::from_static(b"one"), SimTime::ZERO);
        early.crash(SimTime::ZERO);
        assert!(early.is_empty());
        // Crash after: survives.
        s.crash(r.durable_at);
        assert_eq!(s.latest_durable(r.durable_at).unwrap().0, &tuple(1));
    }

    #[test]
    fn latest_durable_skips_in_flight_writes() {
        let mut s = CheckpointStore::new(StorageMode::Sync(DiskProfile::hdd()));
        let r1 = s.save(tuple(1), Bytes::from_static(b"a"), SimTime::ZERO);
        let r2 = s.save(tuple(2), Bytes::from_static(b"b"), r1.ack_at);
        // Between the two flushes, only the first is durable.
        let mid = r1.durable_at;
        assert_eq!(s.latest_durable(mid).unwrap().0, &tuple(1));
        assert_eq!(s.latest_durable(r2.durable_at).unwrap().0, &tuple(2));
    }
}
