//! Replica checkpoint storage.
//!
//! Replicas periodically serialize their service state and write it
//! synchronously to disk, identified by the checkpoint tuple `k_p`
//! (paper §5.2, Predicate 1). A recovering replica reads its latest
//! durable checkpoint, or installs a newer one fetched from a partition
//! peer.
//!
//! Two implementations live here:
//!
//! * [`CheckpointStore`] — the simulator's model (virtual disk timing,
//!   crash semantics);
//! * [`CheckpointFile`] — a real single-slot checkpoint file for live
//!   runtimes (`amcoordd` state snapshots): atomically replaced via
//!   write-temp + `fdatasync` + rename, so a crash mid-save always
//!   leaves either the old or the new checkpoint, never a torn one.

use bytes::{Bytes, BytesMut};
use common::error::Result;
use common::msg::CheckpointTuple;
use common::time::SimTime;
use common::wire::{get_bytes, get_varint, put_varint};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::profile::{DiskTimeline, StorageMode, WriteReceipt};

/// A single-slot durable checkpoint on a real filesystem: `(cursor,
/// state)` where `cursor` is the position in the replicated log the
/// serialized `state` reflects (the next record it will apply). Replay
/// after a restart is `state + log suffix from cursor` instead of the
/// whole history.
#[derive(Debug)]
pub struct CheckpointFile {
    path: PathBuf,
}

impl CheckpointFile {
    /// A checkpoint slot at `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointFile { path: path.into() }
    }

    /// The slot's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replaces the slot with `(cursor, state)`: the bytes go
    /// to `<path>.tmp`, are fsynced, and renamed over the slot. Durable
    /// when this returns.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; the previous checkpoint (if any) is intact.
    pub fn save(&self, cursor: u64, state: &[u8]) -> Result<()> {
        let mut buf = BytesMut::with_capacity(state.len() + 16);
        put_varint(&mut buf, cursor);
        put_varint(&mut buf, state.len() as u64);
        buf.extend_from_slice(state);
        let tmp = {
            let mut p = self.path.as_os_str().to_owned();
            p.push(".tmp");
            PathBuf::from(p)
        };
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Make the rename itself durable (best effort — not every
        // filesystem supports fsync on directories).
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads the slot. Returns `None` when the file is absent *or*
    /// unreadable/corrupt — a recovering replica then falls back to
    /// replaying its log from the beginning, which is slow but correct.
    pub fn load(&self) -> Option<(u64, Bytes)> {
        let raw = std::fs::read(&self.path).ok()?;
        let mut buf = Bytes::from(raw);
        let cursor = get_varint(&mut buf).ok()?;
        let state = get_bytes(&mut buf).ok()?;
        Some((cursor, state))
    }
}

#[derive(Clone, Debug)]
struct Entry {
    tuple: CheckpointTuple,
    state: Bytes,
    durable_at: SimTime,
}

/// Durable checkpoint store for one replica.
///
/// Keeps the most recent `retain` checkpoints (older ones are garbage
/// collected like the paper's log files).
#[derive(Debug)]
pub struct CheckpointStore {
    disk: DiskTimeline,
    entries: Vec<Entry>,
    retain: usize,
}

impl CheckpointStore {
    /// An empty store writing with `mode`, retaining the last two
    /// checkpoints.
    pub fn new(mode: StorageMode) -> Self {
        CheckpointStore {
            disk: DiskTimeline::new(mode),
            entries: Vec::new(),
            retain: 2,
        }
    }

    /// Saves checkpoint `tuple` with serialized `state` at `now`.
    ///
    /// Returns the write receipt; the checkpoint only counts as taken (for
    /// trim votes) once `receipt.ack_at` passes — checkpoints are written
    /// synchronously in the paper's services.
    pub fn save(&mut self, tuple: CheckpointTuple, state: Bytes, now: SimTime) -> WriteReceipt {
        let receipt = self.disk.write(state.len() + 32, now);
        self.entries.push(Entry {
            tuple,
            state,
            durable_at: receipt.durable_at,
        });
        if self.entries.len() > self.retain {
            let excess = self.entries.len() - self.retain;
            self.entries.drain(..excess);
        }
        receipt
    }

    /// The most recent checkpoint (regardless of durability) — what a
    /// *running* replica advertises to peers.
    pub fn latest(&self) -> Option<(&CheckpointTuple, &Bytes)> {
        self.entries.last().map(|e| (&e.tuple, &e.state))
    }

    /// The most recent checkpoint durable at `now` — what survives a crash.
    pub fn latest_durable(&self, now: SimTime) -> Option<(&CheckpointTuple, &Bytes)> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.durable_at <= now)
            .map(|e| (&e.tuple, &e.state))
    }

    /// The state stored for exactly `tuple`, if still retained.
    pub fn get(&self, tuple: &CheckpointTuple) -> Option<&Bytes> {
        self.entries
            .iter()
            .rev()
            .find(|e| &e.tuple == tuple)
            .map(|e| &e.state)
    }

    /// Simulates a crash at `now`: non-durable checkpoints disappear.
    /// In-memory stores lose everything.
    pub fn crash(&mut self, now: SimTime) {
        if matches!(self.disk.mode(), StorageMode::InMemory) {
            self.entries.clear();
            return;
        }
        self.entries.retain(|e| e.durable_at <= now);
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been checkpointed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DiskProfile;
    use common::ids::{InstanceId, RingId};

    fn tuple(i: u64) -> CheckpointTuple {
        CheckpointTuple::new(vec![(RingId::new(0), InstanceId::new(i))])
    }

    #[test]
    fn save_and_fetch_latest() {
        let mut s = CheckpointStore::new(StorageMode::InMemory);
        s.save(tuple(5), Bytes::from_static(b"five"), SimTime::ZERO);
        s.save(tuple(9), Bytes::from_static(b"nine"), SimTime::ZERO);
        let (t, state) = s.latest().unwrap();
        assert_eq!(t, &tuple(9));
        assert_eq!(state, &Bytes::from_static(b"nine"));
        assert_eq!(s.get(&tuple(5)).unwrap(), &Bytes::from_static(b"five"));
    }

    #[test]
    fn retains_bounded_history() {
        let mut s = CheckpointStore::new(StorageMode::InMemory);
        for i in 0..5 {
            s.save(tuple(i), Bytes::new(), SimTime::ZERO);
        }
        assert_eq!(s.len(), 2);
        assert!(s.get(&tuple(0)).is_none());
        assert!(s.get(&tuple(4)).is_some());
    }

    #[test]
    fn durable_checkpoint_survives_crash() {
        let mut s = CheckpointStore::new(StorageMode::Sync(DiskProfile::ssd()));
        let r = s.save(tuple(1), Bytes::from_static(b"one"), SimTime::ZERO);
        // Crash before the write completes: gone.
        let mut early = CheckpointStore::new(StorageMode::Sync(DiskProfile::ssd()));
        early.save(tuple(1), Bytes::from_static(b"one"), SimTime::ZERO);
        early.crash(SimTime::ZERO);
        assert!(early.is_empty());
        // Crash after: survives.
        s.crash(r.durable_at);
        assert_eq!(s.latest_durable(r.durable_at).unwrap().0, &tuple(1));
    }

    #[test]
    fn checkpoint_file_saves_loads_and_replaces() {
        let path = std::env::temp_dir().join(format!("ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let slot = CheckpointFile::new(&path);
        assert!(slot.load().is_none(), "absent slot loads nothing");

        slot.save(17, b"state-a").unwrap();
        assert_eq!(slot.load().unwrap(), (17, Bytes::from_static(b"state-a")));

        // Replacement is whole-slot: the newer checkpoint wins.
        slot.save(40, b"state-b-longer").unwrap();
        assert_eq!(
            slot.load().unwrap(),
            (40, Bytes::from_static(b"state-b-longer"))
        );

        // A corrupt slot (truncated payload) reads as absent, not as an
        // error a recovery path would have to special-case.
        std::fs::write(&path, [0x80]).unwrap();
        assert!(slot.load().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn latest_durable_skips_in_flight_writes() {
        let mut s = CheckpointStore::new(StorageMode::Sync(DiskProfile::hdd()));
        let r1 = s.save(tuple(1), Bytes::from_static(b"a"), SimTime::ZERO);
        let r2 = s.save(tuple(2), Bytes::from_static(b"b"), r1.ack_at);
        // Between the two flushes, only the first is durable.
        let mid = r1.durable_at;
        assert_eq!(s.latest_durable(mid).unwrap().0, &tuple(1));
        assert_eq!(s.latest_durable(r2.durable_at).unwrap().0, &tuple(2));
    }
}
