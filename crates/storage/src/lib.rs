//! Stable storage for Paxos acceptors and service replicas.
//!
//! The paper's acceptors log Phase 1B/2B responses to Berkeley DB before
//! answering, and replicas periodically checkpoint their state (§5). This
//! crate provides both, in two flavours sharing one API:
//!
//! * **Simulated timing** — [`DiskTimeline`] models when a write is
//!   *acknowledged* (the caller may proceed) and when it is *durable*
//!   (survives a crash), for the five storage modes of Figure 3:
//!   in-memory, async/sync × HDD/SSD. Acceptors use the acknowledgement
//!   time to delay their votes; crash injection uses the durability time
//!   to decide what survives.
//! * **Real files** — [`wal::Wal`] is a length-framed append-only log with
//!   optional fsync used by the live runtime and examples.
//!
//! [`AcceptorLog`] is the vote log with trimming (paper §5.1–5.2);
//! [`CheckpointStore`] holds replica checkpoints identified by
//! [`common::msg::CheckpointTuple`]s.

pub mod checkpoint;
pub mod log;
pub mod profile;
pub mod wal;

pub use checkpoint::{CheckpointFile, CheckpointStore};
pub use log::AcceptorLog;
pub use profile::{DiskProfile, DiskTimeline, StorageMode, WriteReceipt};
