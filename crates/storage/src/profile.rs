//! Disk latency/bandwidth profiles and the simulated write timeline.

use common::time::SimTime;
use std::time::Duration;

/// Latency and bandwidth characteristics of one storage device.
///
/// The presets approximate the paper's hardware: 7200-RPM disks and
/// 2014-era SATA SSDs (§8.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskProfile {
    /// Cost of a synchronous flush (seek + rotation for HDDs, FTL program
    /// for SSDs). Paid per write in sync mode only.
    pub flush_latency: Duration,
    /// Sequential write bandwidth, bytes per second.
    pub bandwidth: f64,
    /// How much dirty data the device/page cache absorbs before async
    /// writers start blocking (the paper pre-allocates 15000 × 32 KB
    /// buffers ≈ 480 MB).
    pub max_backlog_bytes: usize,
}

impl DiskProfile {
    /// A 7200-RPM hard disk: ~8 ms per forced flush, ~120 MB/s sequential.
    pub fn hdd() -> Self {
        DiskProfile {
            flush_latency: Duration::from_millis(8),
            bandwidth: 120e6,
            max_backlog_bytes: 480 * 1024 * 1024,
        }
    }

    /// A 2014 SATA SSD: ~1 ms per forced flush, ~350 MB/s sequential.
    pub fn ssd() -> Self {
        DiskProfile {
            flush_latency: Duration::from_millis(1),
            bandwidth: 350e6,
            max_backlog_bytes: 480 * 1024 * 1024,
        }
    }
}

/// The five storage modes evaluated in Figure 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StorageMode {
    /// No persistence: fastest, but nothing survives a crash.
    InMemory,
    /// Writes are acknowledged immediately and flushed in the background
    /// (group flush); unflushed data is lost on a crash.
    Async(DiskProfile),
    /// Every write is flushed before acknowledgement (no batching, per the
    /// paper's setup); everything acknowledged survives a crash.
    Sync(DiskProfile),
}

impl StorageMode {
    /// Human-readable label matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match self {
            StorageMode::InMemory => "In Memory",
            StorageMode::Async(p) if *p == DiskProfile::ssd() => "Async Disk (SSD)",
            StorageMode::Async(_) => "Async Disk",
            StorageMode::Sync(p) if *p == DiskProfile::ssd() => "Sync Disk (SSD)",
            StorageMode::Sync(_) => "Sync Disk",
        }
    }

    /// All five modes in the paper's legend order.
    pub fn all() -> [StorageMode; 5] {
        [
            StorageMode::Sync(DiskProfile::hdd()),
            StorageMode::Sync(DiskProfile::ssd()),
            StorageMode::Async(DiskProfile::hdd()),
            StorageMode::Async(DiskProfile::ssd()),
            StorageMode::InMemory,
        ]
    }
}

/// When a write is acknowledged and when it becomes durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteReceipt {
    /// The caller may proceed at this instant (vote forwarded, client
    /// acknowledged, ...).
    pub ack_at: SimTime,
    /// The data survives crashes at or after this instant.
    /// [`SimTime::MAX`] for in-memory storage.
    pub durable_at: SimTime,
}

/// Simulated timeline of one storage device.
///
/// Tracks device occupancy so concurrent writes serialize, async backlog so
/// sustained overload eventually blocks writers, and produces
/// [`WriteReceipt`]s for crash-survival decisions.
#[derive(Clone, Debug)]
pub struct DiskTimeline {
    mode: StorageMode,
    busy_until: SimTime,
    /// Pending group-commit flush (sync mode): writes issued before the
    /// flush starts share one fsync, like Berkeley DB's group commit.
    pending_flush: Option<(SimTime, SimTime)>,
}

impl DiskTimeline {
    /// A fresh device timeline in `mode`.
    pub fn new(mode: StorageMode) -> Self {
        DiskTimeline {
            mode,
            busy_until: SimTime::ZERO,
            pending_flush: None,
        }
    }

    /// The device's storage mode.
    pub fn mode(&self) -> StorageMode {
        self.mode
    }

    /// Simulates writing `bytes` at `now`.
    pub fn write(&mut self, bytes: usize, now: SimTime) -> WriteReceipt {
        match self.mode {
            StorageMode::InMemory => WriteReceipt {
                ack_at: now,
                durable_at: SimTime::MAX,
            },
            StorageMode::Sync(p) => {
                // Group commit: writes issued before the pending flush
                // starts join it and share one fsync; later writes queue a
                // new flush behind it.
                let done = match self.pending_flush {
                    Some((start, end)) if now <= start => {
                        let end = end + tx(bytes, p.bandwidth);
                        self.pending_flush = Some((start, end));
                        end
                    }
                    Some((_, end)) => {
                        let start = end.max(now);
                        let end = start + p.flush_latency + tx(bytes, p.bandwidth);
                        self.pending_flush = Some((start, end));
                        end
                    }
                    None => {
                        let start = now;
                        let end = start + p.flush_latency + tx(bytes, p.bandwidth);
                        self.pending_flush = Some((start, end));
                        end
                    }
                };
                WriteReceipt {
                    ack_at: done,
                    durable_at: done,
                }
            }
            StorageMode::Async(p) => {
                let start = self.busy_until.max(now);
                let done = start + tx(bytes, p.bandwidth);
                self.busy_until = done;
                // Block the writer only when the dirty backlog exceeds the
                // buffer capacity.
                let backlog_limit = tx(p.max_backlog_bytes, p.bandwidth);
                let backlogged = done.since(now);
                let ack_at = if backlogged > backlog_limit {
                    now + (backlogged - backlog_limit)
                } else {
                    now
                };
                WriteReceipt {
                    ack_at,
                    durable_at: done,
                }
            }
        }
    }
}

fn tx(bytes: usize, bandwidth: f64) -> Duration {
    Duration::from_secs_f64(bytes as f64 / bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_is_instant_and_never_durable() {
        let mut d = DiskTimeline::new(StorageMode::InMemory);
        let r = d.write(32 * 1024, SimTime::from_secs(1));
        assert_eq!(r.ack_at, SimTime::from_secs(1));
        assert_eq!(r.durable_at, SimTime::MAX);
    }

    #[test]
    fn sync_pays_flush_latency_and_groups_commits() {
        let mut d = DiskTimeline::new(StorageMode::Sync(DiskProfile::hdd()));
        let now = SimTime::ZERO;
        let r1 = d.write(1024, now);
        assert!(r1.ack_at.since(now) >= Duration::from_millis(8));
        assert_eq!(r1.ack_at, r1.durable_at);
        // A second write issued at the same instant joins the same flush
        // (group commit): slightly later due to transfer time, but well
        // under a second full flush.
        let r2 = d.write(1024, now);
        assert!(r2.ack_at >= r1.ack_at);
        assert!(r2.ack_at.since(now) < Duration::from_millis(16));
        // A write issued while that flush runs queues a new one.
        let mid = now + Duration::from_millis(4);
        let r3 = d.write(1024, mid);
        assert!(r3.ack_at.since(now) >= Duration::from_millis(16));
    }

    #[test]
    fn async_acks_immediately_until_backlog_fills() {
        let profile = DiskProfile {
            flush_latency: Duration::from_millis(8),
            bandwidth: 1e6,            // 1 MB/s to fill the backlog quickly
            max_backlog_bytes: 10_000, // 10 ms worth of backlog
        };
        let mut d = DiskTimeline::new(StorageMode::Async(profile));
        let now = SimTime::ZERO;
        // First write: immediate ack, durable after bandwidth delay.
        let r = d.write(5_000, now);
        assert_eq!(r.ack_at, now);
        assert_eq!(r.durable_at.since(now), Duration::from_millis(5));
        // Keep writing; once >10 ms of data is dirty, acks lag.
        let r2 = d.write(10_000, now);
        assert!(r2.ack_at > now, "backlog full, writer must block");
        assert_eq!(r2.durable_at.since(now), Duration::from_millis(15));
    }

    #[test]
    fn ssd_flushes_faster_than_hdd() {
        let mut ssd = DiskTimeline::new(StorageMode::Sync(DiskProfile::ssd()));
        let mut hdd = DiskTimeline::new(StorageMode::Sync(DiskProfile::hdd()));
        let a = ssd.write(512, SimTime::ZERO);
        let b = hdd.write(512, SimTime::ZERO);
        assert!(a.ack_at < b.ack_at);
    }

    #[test]
    fn labels_match_paper_legend() {
        let labels: Vec<_> = StorageMode::all().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Sync Disk",
                "Sync Disk (SSD)",
                "Async Disk",
                "Async Disk (SSD)",
                "In Memory"
            ]
        );
    }
}
