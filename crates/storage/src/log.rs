//! The acceptor's vote log with trimming.
//!
//! Before responding to a coordinator with a Phase 1B or Phase 2B message,
//! an acceptor must log its response onto stable storage (paper §5.1). The
//! log also remembers which instances were decided so it can serve
//! retransmission requests from recovering replicas, and it supports
//! *trimming*: deleting everything up to the instance `K_T` computed by the
//! trim protocol (§5.2).

use common::ids::{Ballot, InstanceId};
use common::msg::AcceptedEntry;
use common::time::SimTime;
use common::value::Value;
use std::collections::BTreeMap;

use crate::profile::{DiskTimeline, StorageMode, WriteReceipt};

#[derive(Clone, Debug)]
struct Slot {
    vballot: Ballot,
    value: Value,
    decided: bool,
    durable_at: SimTime,
}

/// One ring's persistent acceptor state: promised ballot, accepted values,
/// decided flags and the trim floor.
#[derive(Debug)]
pub struct AcceptorLog {
    disk: DiskTimeline,
    promised: Ballot,
    promised_durable_at: SimTime,
    slots: BTreeMap<InstanceId, Slot>,
    /// First instance still present; everything below was trimmed.
    trim_floor: InstanceId,
}

impl AcceptorLog {
    /// An empty log backed by storage `mode`.
    pub fn new(mode: StorageMode) -> Self {
        AcceptorLog {
            disk: DiskTimeline::new(mode),
            promised: Ballot::ZERO,
            promised_durable_at: SimTime::ZERO,
            slots: BTreeMap::new(),
            trim_floor: InstanceId::ZERO,
        }
    }

    /// The storage mode this log writes with.
    pub fn mode(&self) -> StorageMode {
        self.disk.mode()
    }

    /// The highest ballot promised so far.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// Records a promise not to accept ballots below `ballot`. Returns the
    /// receipt for the stable-storage write.
    pub fn promise(&mut self, ballot: Ballot, now: SimTime) -> WriteReceipt {
        debug_assert!(ballot >= self.promised);
        self.promised = ballot;
        let receipt = self.disk.write(16, now);
        self.promised_durable_at = receipt.durable_at;
        receipt
    }

    /// Accepts `value` for `inst` at `ballot`, logging the vote. Returns
    /// the write receipt; the caller must not forward its Phase 2B vote
    /// before `receipt.ack_at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ballot` is below the current promise.
    pub fn accept(
        &mut self,
        inst: InstanceId,
        ballot: Ballot,
        value: Value,
        now: SimTime,
    ) -> WriteReceipt {
        debug_assert!(ballot >= self.promised, "accept below promise");
        let receipt = self.disk.write(16 + value.wire_size(), now);
        // Re-accepting an instance (higher ballot after failover) appends
        // to the on-disk log; the slot stays durable from its *first*
        // durable write — a crash between the two flushes must not erase
        // the acceptor's vote entirely.
        let prior_durable = self.slots.get(&inst).map(|s| s.durable_at);
        let durable_at = match prior_durable {
            Some(d) => d.min(receipt.durable_at),
            None => receipt.durable_at,
        };
        self.slots.insert(
            inst,
            Slot {
                vballot: ballot,
                value,
                decided: false,
                durable_at,
            },
        );
        receipt
    }

    /// Marks `inst` as decided with `value` (observed from a circulating
    /// decision). Also used when learning a decision during recovery.
    ///
    /// Decision markers are metadata only — they do not touch the disk.
    /// Durability of the *vote* is what Paxos safety needs; a decided flag
    /// lost in a crash merely makes this acceptor useless for
    /// retransmission until it re-observes decisions (requesters rotate
    /// over acceptors).
    pub fn mark_decided(&mut self, inst: InstanceId, value: Value, now: SimTime) {
        if inst < self.trim_floor {
            return;
        }
        let slot = self.slots.entry(inst).or_insert_with(|| Slot {
            vballot: Ballot::ZERO,
            value: value.clone(),
            decided: false,
            durable_at: now,
        });
        slot.value = value;
        slot.decided = true;
    }

    /// The value accepted for `inst`, if any.
    pub fn accepted(&self, inst: InstanceId) -> Option<(Ballot, &Value)> {
        self.slots.get(&inst).map(|s| (s.vballot, &s.value))
    }

    /// Whether `inst` is known to be decided.
    pub fn is_decided(&self, inst: InstanceId) -> bool {
        self.slots.get(&inst).map(|s| s.decided).unwrap_or(false)
    }

    /// Accepted-but-undecided entries in `[from, to)`, for Phase 1
    /// re-proposals after a coordinator change.
    pub fn accepted_in_range(&self, from: InstanceId, to: InstanceId) -> Vec<AcceptedEntry> {
        if from >= to {
            return Vec::new();
        }
        self.slots
            .range(from..to)
            .filter(|(_, s)| !s.decided)
            .map(|(inst, s)| AcceptedEntry {
                inst: *inst,
                vballot: s.vballot,
                value: s.value.clone(),
            })
            .collect()
    }

    /// Every retained entry in `[from, to)`, decided or not — what an
    /// acceptor reports in its Phase 1B after a coordinator change. The
    /// new coordinator re-proposes the highest-ballot value per instance;
    /// Paxos safety guarantees re-proposing an already decided instance
    /// re-decides the same value.
    pub fn entries_in_range(&self, from: InstanceId, to: InstanceId) -> Vec<AcceptedEntry> {
        let from = from.max(self.trim_floor);
        if from >= to {
            return Vec::new();
        }
        self.slots
            .range(from..to)
            .map(|(inst, s)| AcceptedEntry {
                inst: *inst,
                vballot: s.vballot,
                value: s.value.clone(),
            })
            .collect()
    }

    /// Decided entries in `[from, to)`, for retransmission to recovering
    /// replicas.
    pub fn decided_in_range(&self, from: InstanceId, to: InstanceId) -> Vec<AcceptedEntry> {
        // A recovering replica may legitimately ask for a range that the
        // trim floor has passed entirely; serve it as empty (the reply's
        // `log_start` tells the requester to fetch a newer checkpoint).
        let from = from.max(self.trim_floor);
        if from >= to {
            return Vec::new();
        }
        self.slots
            .range(from..to)
            .filter(|(_, s)| s.decided)
            .map(|(inst, s)| AcceptedEntry {
                inst: *inst,
                vballot: s.vballot,
                value: s.value.clone(),
            })
            .collect()
    }

    /// The highest instance with any entry (accepted or decided).
    pub fn highest_instance(&self) -> Option<InstanceId> {
        self.slots.keys().next_back().copied()
    }

    /// First instance still retained. Requests below this must recover
    /// from a checkpoint instead (the paper's `Trimmed` condition).
    pub fn trim_floor(&self) -> InstanceId {
        self.trim_floor
    }

    /// Deletes every entry with instance `<= upto` (the coordinator's
    /// `Trim` order). Trimming never un-trims: stale orders are ignored.
    pub fn trim(&mut self, upto: InstanceId) {
        let new_floor = upto.next();
        if new_floor <= self.trim_floor {
            return;
        }
        self.slots = self.slots.split_off(&new_floor);
        self.trim_floor = new_floor;
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Simulates a crash at `now`: all entries not yet durable are lost,
    /// as is an unflushed promise. In-memory logs lose everything.
    pub fn crash(&mut self, now: SimTime) {
        if matches!(self.disk.mode(), StorageMode::InMemory) {
            self.slots.clear();
            self.promised = Ballot::ZERO;
            self.trim_floor = InstanceId::ZERO;
            return;
        }
        self.slots.retain(|_, s| s.durable_at <= now);
        if self.promised_durable_at > now {
            self.promised = Ballot::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DiskProfile;
    use common::ids::NodeId;
    use common::value::Value;

    fn val(seq: u64) -> Value {
        Value::app(NodeId::new(1), seq, bytes::Bytes::from_static(b"v"))
    }

    fn b(round: u32) -> Ballot {
        Ballot::new(round, NodeId::new(1))
    }

    #[test]
    fn accept_then_read_back() {
        let mut log = AcceptorLog::new(StorageMode::InMemory);
        log.promise(b(1), SimTime::ZERO);
        log.accept(InstanceId::new(0), b(1), val(0), SimTime::ZERO);
        let (ballot, value) = log.accepted(InstanceId::new(0)).unwrap();
        assert_eq!(ballot, b(1));
        assert_eq!(value, &val(0));
        assert!(!log.is_decided(InstanceId::new(0)));
        log.mark_decided(InstanceId::new(0), val(0), SimTime::ZERO);
        assert!(log.is_decided(InstanceId::new(0)));
    }

    #[test]
    fn sync_mode_delays_ack() {
        let mut log = AcceptorLog::new(StorageMode::Sync(DiskProfile::hdd()));
        let r = log.accept(InstanceId::new(0), b(1), val(0), SimTime::ZERO);
        assert!(r.ack_at.since(SimTime::ZERO) >= std::time::Duration::from_millis(8));
    }

    #[test]
    fn trim_removes_prefix_and_is_monotone() {
        let mut log = AcceptorLog::new(StorageMode::InMemory);
        for i in 0..10 {
            log.accept(InstanceId::new(i), b(1), val(i), SimTime::ZERO);
            log.mark_decided(InstanceId::new(i), val(i), SimTime::ZERO);
        }
        log.trim(InstanceId::new(4));
        assert_eq!(log.trim_floor(), InstanceId::new(5));
        assert_eq!(log.len(), 5);
        assert!(log.accepted(InstanceId::new(4)).is_none());
        assert!(log.accepted(InstanceId::new(5)).is_some());

        // Stale trim order is a no-op.
        log.trim(InstanceId::new(2));
        assert_eq!(log.trim_floor(), InstanceId::new(5));

        let replay = log.decided_in_range(InstanceId::ZERO, InstanceId::new(100));
        assert_eq!(replay.len(), 5);
        assert_eq!(replay[0].inst, InstanceId::new(5));
    }

    #[test]
    fn accepted_in_range_excludes_decided() {
        let mut log = AcceptorLog::new(StorageMode::InMemory);
        log.accept(InstanceId::new(0), b(1), val(0), SimTime::ZERO);
        log.accept(InstanceId::new(1), b(1), val(1), SimTime::ZERO);
        log.mark_decided(InstanceId::new(0), val(0), SimTime::ZERO);
        let open = log.accepted_in_range(InstanceId::ZERO, InstanceId::new(10));
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].inst, InstanceId::new(1));
    }

    #[test]
    fn crash_loses_non_durable_entries() {
        // Async mode: durability lags the ack.
        let profile = DiskProfile {
            flush_latency: std::time::Duration::from_millis(1),
            bandwidth: 1e6, // 1 MB/s: 1 KB takes 1 ms to become durable
            max_backlog_bytes: 1 << 30,
        };
        let mut log = AcceptorLog::new(StorageMode::Async(profile));
        let now = SimTime::ZERO;
        let r = log.accept(InstanceId::new(0), b(1), val(0), now);
        assert_eq!(r.ack_at, now);
        assert!(r.durable_at > now);

        // Crash before the flush completes: the entry is gone.
        log.crash(now);
        assert!(log.accepted(InstanceId::new(0)).is_none());

        // Write again; crash after durability: the entry survives.
        let r = log.accept(InstanceId::new(1), b(1), val(1), now);
        log.crash(r.durable_at);
        assert!(log.accepted(InstanceId::new(1)).is_some());
    }

    #[test]
    fn in_memory_crash_loses_everything() {
        let mut log = AcceptorLog::new(StorageMode::InMemory);
        log.promise(b(3), SimTime::ZERO);
        log.accept(InstanceId::new(0), b(3), val(0), SimTime::ZERO);
        log.crash(SimTime::from_secs(100));
        assert!(log.is_empty());
        assert_eq!(log.promised(), Ballot::ZERO);
    }

    #[test]
    fn decided_below_trim_floor_is_ignored() {
        let mut log = AcceptorLog::new(StorageMode::InMemory);
        log.accept(InstanceId::new(0), b(1), val(0), SimTime::ZERO);
        log.trim(InstanceId::new(5));
        log.mark_decided(InstanceId::new(3), val(3), SimTime::ZERO);
        assert!(log.is_empty());
    }
}
