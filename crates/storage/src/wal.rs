//! A real-file write-ahead log for the live runtime.
//!
//! Frames are length-delimited [`Wire`] records (the same framing the TCP
//! transport uses), appended to a single file with optional fsync. This is
//! the stand-in for the paper's Berkeley DB JE storage.
//!
//! Two append modes are provided:
//!
//! * [`Wal::append`] — one record, one write (and one `fdatasync` under
//!   [`SyncPolicy::EveryWrite`]);
//! * [`Wal::append_buffered`] / [`Wal::commit`] — **group commit**:
//!   records accumulate in memory and [`Wal::commit`] flushes them as one
//!   `write` plus at most one `fdatasync`, amortizing the sync cost over
//!   a whole delivered batch.

use bytes::BytesMut;
use common::error::{Error, Result};
use common::wire::{frame, put_varint, Wire};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Whether appends force data to the platter before returning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every append (the paper's synchronous mode).
    EveryWrite,
    /// Let the OS page cache decide (asynchronous mode).
    OsDecides,
}

/// The advisory lock file guarding `path` against concurrent writers.
pub fn lock_path(path: impl AsRef<Path>) -> PathBuf {
    let mut p = path.as_ref().as_os_str().to_owned();
    p.push(".lock");
    PathBuf::from(p)
}

fn pid_alive(pid: u32) -> bool {
    // Advisory check, good enough for "did the previous owner crash":
    // on Linux a live pid has a /proc entry. Elsewhere, err on the side
    // of stealing — a stale lock must never brick a restart.
    cfg!(target_os = "linux") && Path::new(&format!("/proc/{pid}")).exists()
}

/// Held for the lifetime of a [`Wal`]; removing the file on drop is what
/// makes kill → restart-in-place deterministic (the restarting process
/// must never find its own WAL "busy").
#[derive(Debug)]
struct WalLock {
    path: PathBuf,
}

impl WalLock {
    fn acquire(wal_path: &Path) -> Result<Self> {
        let path = lock_path(wal_path);
        let me = std::process::id();
        // The pid is staged in a private temp file and the lock created
        // by hard-linking it into place: link is atomic create-if-absent
        // *with the content already there*, so no observer can ever read
        // a lock file whose pid has not been written yet (a SIGKILL
        // between create and write used to leave an unparsable lock that
        // bricked every future restart).
        let tmp = {
            let mut p = path.as_os_str().to_owned();
            p.push(format!(".tmp-{me}"));
            PathBuf::from(p)
        };
        std::fs::write(&tmp, me.to_string())?;
        let result = Self::link_into_place(wal_path, &path, &tmp, me);
        let _ = std::fs::remove_file(&tmp);
        result
    }

    fn link_into_place(wal_path: &Path, path: &Path, tmp: &Path, me: u32) -> Result<Self> {
        loop {
            match std::fs::hard_link(tmp, path) {
                Ok(()) => {
                    return Ok(WalLock {
                        path: path.to_path_buf(),
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder: Option<u32> = std::fs::read_to_string(path)
                        .ok()
                        .and_then(|s| s.trim().parse().ok());
                    match holder {
                        // A live owner (possibly ourselves through a
                        // second handle) keeps the lock.
                        Some(pid) if pid == me || pid_alive(pid) => {
                            return Err(Error::Storage(format!(
                                "wal {} is locked by pid {pid}",
                                wal_path.display(),
                            )))
                        }
                        // A crashed owner (SIGKILL skips Drop) left the
                        // file behind, or the content is unreadable
                        // (which atomic creation rules out for any
                        // owner that could still be alive): steal it.
                        // The steal renames the stale file aside —
                        // atomic, so of two racing stealers exactly one
                        // wins; the loser loops and re-reads whatever
                        // lock the winner installed.
                        _ => {
                            let aside = {
                                let mut p = path.as_os_str().to_owned();
                                p.push(format!(".stale-{me}"));
                                PathBuf::from(p)
                            };
                            if std::fs::rename(path, &aside).is_ok() {
                                let _ = std::fs::remove_file(&aside);
                            }
                            continue;
                        }
                    }
                }
                Err(e) => return Err(Error::Io(e)),
            }
        }
    }
}

impl Drop for WalLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An append-only, length-framed log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    appended: u64,
    /// Group-commit staging: framed records awaiting [`Wal::commit`].
    buffered: BytesMut,
    pending_records: u64,
    /// Reused frame-encoding scratch buffer.
    scratch: BytesMut,
    /// Exclusive-writer guard, released (file removed) on drop.
    _lock: WalLock,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, taking the exclusive
    /// writer lock (`<path>.lock`). The lock is released when the `Wal`
    /// drops; a lock left by a *crashed* process (dead pid) is stolen.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened for append or another live
    /// process holds the lock.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let lock = WalLock::acquire(&path)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(Wal {
            file,
            path,
            policy,
            appended: 0,
            buffered: BytesMut::new(),
            pending_records: 0,
            scratch: BytesMut::new(),
            _lock: lock,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; with [`SyncPolicy::EveryWrite`] the record is
    /// durable when this returns.
    pub fn append<T: Wire>(&mut self, record: &T) -> Result<()> {
        // Flush any staged group-commit records first so the file always
        // reflects logical append order, even when the two APIs mix.
        self.commit()?;
        let mut buf = BytesMut::new();
        frame::write(&mut buf, record);
        self.file.write_all(&buf)?;
        if self.policy == SyncPolicy::EveryWrite {
            self.file.sync_data()?;
        }
        self.appended += 1;
        Ok(())
    }

    /// Stages one record for group commit without touching the file. The
    /// record is neither written nor durable until [`Wal::commit`].
    pub fn append_buffered<T: Wire>(&mut self, record: &T) {
        self.append_buffered_with(|buf| record.encode(buf));
    }

    /// Stages one record written by `encode` for group commit — lets
    /// callers frame borrowed data without constructing an owned record.
    pub fn append_buffered_with(&mut self, encode: impl FnOnce(&mut BytesMut)) {
        self.scratch.clear();
        encode(&mut self.scratch);
        put_varint(&mut self.buffered, self.scratch.len() as u64);
        self.buffered.extend_from_slice(&self.scratch);
        self.pending_records += 1;
    }

    /// Group commit: writes every staged record with one `write` and, under
    /// [`SyncPolicy::EveryWrite`], a single `fdatasync` for the whole
    /// batch. No-op when nothing is staged.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; staged records are dropped either way (a
    /// failed WAL write must not diverge the replica from its peers).
    pub fn commit(&mut self) -> Result<()> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        let staged = self.pending_records;
        self.pending_records = 0;
        let result = self.file.write_all(&self.buffered);
        self.buffered.clear();
        result?;
        if self.policy == SyncPolicy::EveryWrite {
            self.file.sync_data()?;
        }
        self.appended += staged;
        Ok(())
    }

    /// Records staged but not yet committed.
    pub fn pending(&self) -> u64 {
        self.pending_records
    }

    /// Forces buffered data to disk.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The file path backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads every record currently in the file (crash recovery replay).
    /// A torn final frame (partial write during a crash) is ignored, as a
    /// real recovery would.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if a *complete* frame fails to decode.
    pub fn replay<T: Wire>(path: impl AsRef<Path>) -> Result<Vec<T>> {
        let mut file = File::open(path.as_ref())?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        // Decode as views of the single read buffer — no per-record copy.
        let mut buf = bytes::Bytes::from(raw);
        let mut out = Vec::new();
        loop {
            match frame::read_from::<T>(&mut buf) {
                Ok(Some(rec)) => out.push(rec),
                Ok(None) => break, // torn tail or clean EOF
                Err(e) => return Err(Error::Wire(e)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::ids::{InstanceId, NodeId};
    use common::msg::AcceptedEntry;
    use common::value::Value;
    use common::Ballot;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wal-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn entry(i: u64) -> AcceptedEntry {
        AcceptedEntry {
            inst: InstanceId::new(i),
            vballot: Ballot::new(1, NodeId::new(1)),
            value: Value::app(NodeId::new(1), i, bytes::Bytes::from_static(b"payload")),
        }
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("append");
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            for i in 0..10 {
                wal.append(&entry(i)).unwrap();
            }
            assert_eq!(wal.appended(), 10);
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[9], entry(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_ignores_torn_tail() {
        let path = tmp("torn");
        {
            let mut wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
            wal.append(&entry(0)).unwrap();
            wal.append(&entry(1)).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn write: chop a few bytes off the end.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();

        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], entry(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_stages_until_commit() {
        let path = tmp("group");
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            for i in 0..5 {
                wal.append_buffered(&entry(i));
            }
            assert_eq!(wal.pending(), 5);
            assert_eq!(wal.appended(), 0, "staged records are not yet written");
            // Nothing on disk before the commit.
            assert_eq!(
                Wal::replay::<AcceptedEntry>(&path).unwrap().len(),
                0,
                "records invisible before commit"
            );
            wal.commit().unwrap();
            assert_eq!(wal.pending(), 0);
            assert_eq!(wal.appended(), 5);
            wal.commit().unwrap(); // idempotent no-op
            assert_eq!(wal.appended(), 5);
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4], entry(4));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffered_with_matches_owned_encoding() {
        let path = tmp("borrowed");
        {
            let mut wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
            let e = entry(3);
            wal.append_buffered_with(|buf| e.encode(buf));
            wal.commit().unwrap();
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![entry(3)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lock_excludes_second_writer_and_releases_on_drop() {
        let path = tmp("lock");
        let wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
        assert!(lock_path(&path).exists());
        // A second writer in this (live) process is refused.
        match Wal::open(&path, SyncPolicy::OsDecides) {
            Err(Error::Storage(msg)) => assert!(msg.contains("locked"), "{msg}"),
            other => panic!("second open must fail with Storage, got {other:?}"),
        }
        drop(wal);
        assert!(
            !lock_path(&path).exists(),
            "lock must be released deterministically on drop"
        );
        // A lock left by a dead pid is stolen, not fatal.
        std::fs::write(lock_path(&path), "999999999").unwrap();
        let wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
        drop(wal);
        // So is an unparsable lock: atomic creation (pid staged before
        // the link) means no *live* owner can have left one, and a
        // stale lock must never brick a restart.
        std::fs::write(lock_path(&path), "not-a-pid").unwrap();
        let wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
        drop(wal);
        assert!(!lock_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = tmp("reopen");
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            wal.append(&entry(0)).unwrap();
        }
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            wal.append(&entry(1)).unwrap();
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
