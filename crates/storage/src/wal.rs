//! A real-file write-ahead log for the live runtime.
//!
//! Frames are length-delimited [`Wire`] records (the same framing the TCP
//! transport uses), appended to a single file with optional fsync. This is
//! the stand-in for the paper's Berkeley DB JE storage.
//!
//! Two append modes are provided:
//!
//! * [`Wal::append`] — one record, one write (and one `fdatasync` under
//!   [`SyncPolicy::EveryWrite`]);
//! * [`Wal::append_buffered`] / [`Wal::commit`] — **group commit**:
//!   records accumulate in memory and [`Wal::commit`] flushes them as one
//!   `write` plus at most one `fdatasync`, amortizing the sync cost over
//!   a whole delivered batch.

use bytes::BytesMut;
use common::error::{Error, Result};
use common::obs::{Counter, Hist, Obs};
use common::wire::{frame, put_varint, Wire};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Cached stats-plane handles for one WAL writer: appended records and
/// the latency of each durable commit (write + fsync — the disk half of
/// every decided instance under synchronous storage).
#[derive(Clone, Debug)]
struct WalInstr {
    appends: Counter,
    commit_nanos: Hist,
}

impl WalInstr {
    fn new(obs: &Obs) -> Self {
        WalInstr {
            appends: obs.counter("wal_appends"),
            commit_nanos: obs.hist("wal_commit_nanos"),
        }
    }
}

/// Whether appends force data to the platter before returning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every append (the paper's synchronous mode).
    EveryWrite,
    /// Let the OS page cache decide (asynchronous mode).
    OsDecides,
}

/// The advisory lock file guarding `path` against concurrent writers.
pub fn lock_path(path: impl AsRef<Path>) -> PathBuf {
    let mut p = path.as_ref().as_os_str().to_owned();
    p.push(".lock");
    PathBuf::from(p)
}

fn pid_alive(pid: u32) -> bool {
    // Advisory check, good enough for "did the previous owner crash":
    // on Linux a live pid has a /proc entry. Elsewhere, err on the side
    // of stealing — a stale lock must never brick a restart.
    cfg!(target_os = "linux") && Path::new(&format!("/proc/{pid}")).exists()
}

/// Held for the lifetime of a [`Wal`]; removing the file on drop is what
/// makes kill → restart-in-place deterministic (the restarting process
/// must never find its own WAL "busy").
#[derive(Debug)]
struct WalLock {
    path: PathBuf,
}

impl WalLock {
    fn acquire(wal_path: &Path) -> Result<Self> {
        let path = lock_path(wal_path);
        let me = std::process::id();
        // The pid is staged in a private temp file and the lock created
        // by hard-linking it into place: link is atomic create-if-absent
        // *with the content already there*, so no observer can ever read
        // a lock file whose pid has not been written yet (a SIGKILL
        // between create and write used to leave an unparsable lock that
        // bricked every future restart).
        let tmp = {
            let mut p = path.as_os_str().to_owned();
            p.push(format!(".tmp-{me}"));
            PathBuf::from(p)
        };
        std::fs::write(&tmp, me.to_string())?;
        let result = Self::link_into_place(wal_path, &path, &tmp, me);
        let _ = std::fs::remove_file(&tmp);
        result
    }

    fn link_into_place(wal_path: &Path, path: &Path, tmp: &Path, me: u32) -> Result<Self> {
        loop {
            match std::fs::hard_link(tmp, path) {
                Ok(()) => {
                    return Ok(WalLock {
                        path: path.to_path_buf(),
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder: Option<u32> = std::fs::read_to_string(path)
                        .ok()
                        .and_then(|s| s.trim().parse().ok());
                    match holder {
                        // A live owner (possibly ourselves through a
                        // second handle) keeps the lock.
                        Some(pid) if pid == me || pid_alive(pid) => {
                            return Err(Error::Storage(format!(
                                "wal {} is locked by pid {pid}",
                                wal_path.display(),
                            )))
                        }
                        // A crashed owner (SIGKILL skips Drop) left the
                        // file behind, or the content is unreadable
                        // (which atomic creation rules out for any
                        // owner that could still be alive): steal it.
                        // The steal renames the stale file aside —
                        // atomic, so of two racing stealers exactly one
                        // wins; the loser loops and re-reads whatever
                        // lock the winner installed.
                        _ => {
                            let aside = {
                                let mut p = path.as_os_str().to_owned();
                                p.push(format!(".stale-{me}"));
                                PathBuf::from(p)
                            };
                            if std::fs::rename(path, &aside).is_ok() {
                                let _ = std::fs::remove_file(&aside);
                            }
                            continue;
                        }
                    }
                }
                Err(e) => return Err(Error::Io(e)),
            }
        }
    }
}

impl Drop for WalLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An append-only, length-framed log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    appended: u64,
    /// Group-commit staging: framed records awaiting [`Wal::commit`].
    buffered: BytesMut,
    pending_records: u64,
    /// Reused frame-encoding scratch buffer.
    scratch: BytesMut,
    /// Stats-plane handles, absent until [`Wal::instrument`].
    instr: Option<WalInstr>,
    /// Exclusive-writer guard, released (file removed) on drop.
    _lock: WalLock,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, taking the exclusive
    /// writer lock (`<path>.lock`). The lock is released when the `Wal`
    /// drops; a lock left by a *crashed* process (dead pid) is stolen.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened for append or another live
    /// process holds the lock.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let lock = WalLock::acquire(&path)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(Wal {
            file,
            path,
            policy,
            appended: 0,
            buffered: BytesMut::new(),
            pending_records: 0,
            scratch: BytesMut::new(),
            instr: None,
            _lock: lock,
        })
    }

    /// Points this writer's metrics (append counts, commit latency) at
    /// `obs`. Without this, the WAL records nothing.
    pub fn instrument(&mut self, obs: &Obs) {
        self.instr = Some(WalInstr::new(obs));
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; with [`SyncPolicy::EveryWrite`] the record is
    /// durable when this returns.
    pub fn append<T: Wire>(&mut self, record: &T) -> Result<()> {
        // Flush any staged group-commit records first so the file always
        // reflects logical append order, even when the two APIs mix.
        self.commit()?;
        let started = self.instr.as_ref().map(|_| Instant::now());
        let mut buf = BytesMut::new();
        frame::write(&mut buf, record);
        self.file.write_all(&buf)?;
        if self.policy == SyncPolicy::EveryWrite {
            self.file.sync_data()?;
        }
        self.appended += 1;
        if let (Some(i), Some(t0)) = (&self.instr, started) {
            i.appends.inc();
            i.commit_nanos
                .record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        Ok(())
    }

    /// Stages one record for group commit without touching the file. The
    /// record is neither written nor durable until [`Wal::commit`].
    pub fn append_buffered<T: Wire>(&mut self, record: &T) {
        self.append_buffered_with(|buf| record.encode(buf));
    }

    /// Stages one record written by `encode` for group commit — lets
    /// callers frame borrowed data without constructing an owned record.
    pub fn append_buffered_with(&mut self, encode: impl FnOnce(&mut BytesMut)) {
        self.scratch.clear();
        encode(&mut self.scratch);
        put_varint(&mut self.buffered, self.scratch.len() as u64);
        self.buffered.extend_from_slice(&self.scratch);
        self.pending_records += 1;
    }

    /// Group commit: writes every staged record with one `write` and, under
    /// [`SyncPolicy::EveryWrite`], a single `fdatasync` for the whole
    /// batch. No-op when nothing is staged.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; staged records are dropped either way (a
    /// failed WAL write must not diverge the replica from its peers).
    pub fn commit(&mut self) -> Result<()> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        let staged = self.pending_records;
        self.pending_records = 0;
        let started = self.instr.as_ref().map(|_| Instant::now());
        let result = self.file.write_all(&self.buffered);
        self.buffered.clear();
        result?;
        if self.policy == SyncPolicy::EveryWrite {
            self.file.sync_data()?;
        }
        self.appended += staged;
        if let (Some(i), Some(t0)) = (&self.instr, started) {
            i.appends.add(staged);
            i.commit_nanos
                .record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        Ok(())
    }

    /// Records staged but not yet committed.
    pub fn pending(&self) -> u64 {
        self.pending_records
    }

    /// Forces buffered data to disk.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The file path backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads every record currently in the file (crash recovery replay).
    /// A torn final frame (partial write during a crash) is ignored, as a
    /// real recovery would.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if a *complete* frame fails to decode.
    pub fn replay<T: Wire>(path: impl AsRef<Path>) -> Result<Vec<T>> {
        let mut file = File::open(path.as_ref())?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        // Decode as views of the single read buffer — no per-record copy.
        let mut buf = bytes::Bytes::from(raw);
        let mut out = Vec::new();
        loop {
            match frame::read_from::<T>(&mut buf) {
                Ok(Some(rec)) => out.push(rec),
                Ok(None) => break, // torn tail or clean EOF
                Err(e) => return Err(Error::Wire(e)),
            }
        }
        Ok(out)
    }
}

/// A sink for a node's *decided log*: records tagged with their log
/// position, group-committed, and (where the backend supports it)
/// prunable below a durable checkpoint cursor. [`Wal`] implements it as
/// a single ever-growing file; [`SegmentedWal`] adds rotation.
pub trait DecidedLog: Send + 'static {
    /// Stages one record at log position `pos` for group commit.
    fn stage(&mut self, pos: u64, encode: &mut dyn FnMut(&mut BytesMut));

    /// Group-commits every staged record (one write, one sync).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; staged records are dropped either way.
    fn commit(&mut self) -> Result<()>;

    /// Deletes storage that only holds records below `pos` (a durable
    /// checkpoint covers them). Returns how many segments were dropped;
    /// backends without rotation return 0.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    fn prune_below(&mut self, _pos: u64) -> Result<usize> {
        Ok(0)
    }

    /// Points the log's metrics at `obs`. Default: records nothing.
    fn instrument(&mut self, _obs: &Obs) {}
}

impl DecidedLog for Wal {
    fn stage(&mut self, _pos: u64, encode: &mut dyn FnMut(&mut BytesMut)) {
        self.append_buffered_with(|buf| encode(buf));
    }

    fn instrument(&mut self, obs: &Obs) {
        Wal::instrument(self, obs);
    }

    fn commit(&mut self) -> Result<()> {
        Wal::commit(self)
    }
}

/// One record of a [`SegmentedWal`] segment: the log position followed
/// by the raw record bytes (the rest of the frame). Self-describing, so
/// pruning can read positions without knowing the record type.
struct PosRecord {
    pos: u64,
    body: bytes::Bytes,
}

impl Wire for PosRecord {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.pos);
        buf.extend_from_slice(&self.body);
    }

    fn decode(buf: &mut bytes::Bytes) -> std::result::Result<Self, common::error::WireError> {
        let pos = common::wire::get_varint(buf)?;
        let body = buf.split_to(buf.len());
        Ok(PosRecord { pos, body })
    }
}

/// A rotated write-ahead log: records land in bounded segment files
/// (`seg-<first-pos>.wal` under one directory), the writer rolls to a
/// fresh segment every `roll_every` records, and [`DecidedLog::prune_below`]
/// deletes closed segments whose records all sit below the given cursor
/// — bounding *disk*, where checkpoints alone only bound replay.
///
/// Each segment is an ordinary [`Wal`] (same framing, same `.lock`
/// writer guard) whose frames carry a position prefix (`PosRecord`),
/// so safety of a prune never depends on in-memory bookkeeping: the
/// candidate segment is re-read and dropped only if every record in it
/// is below the cursor.
#[derive(Debug)]
pub struct SegmentedWal {
    dir: PathBuf,
    policy: SyncPolicy,
    roll_every: u64,
    /// The active segment: its first position, records appended this
    /// incarnation, and the backing file.
    active: Option<(u64, u64, Wal)>,
    /// Records lost because no segment could be opened; surfaced as an
    /// error by the next [`DecidedLog::commit`].
    dropped_since_commit: u64,
    /// Registry handed to each segment's [`Wal`] plus the on-disk
    /// segment-count gauge; absent until [`SegmentedWal::instrument`].
    obs: Option<Obs>,
    /// Directory-level writer guard (`segments.lock`): taking it at open
    /// — before any replay — means a successor never reads the directory
    /// while a live predecessor could still be flushing into it.
    _lock: WalLock,
}

impl SegmentedWal {
    /// Opens (creating if needed) the segment directory. No segment file
    /// is opened until the first [`DecidedLog::stage`]: a reopened log
    /// always starts a *fresh* segment at the next staged position, so
    /// pre-existing segments are immutable from then on.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>, policy: SyncPolicy, roll_every: u64) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let lock = WalLock::acquire(&dir.join("segments"))?;
        Ok(SegmentedWal {
            dir,
            policy,
            roll_every: roll_every.max(1),
            active: None,
            dropped_since_commit: 0,
            obs: None,
            _lock: lock,
        })
    }

    /// Points this log's metrics at `obs`: every segment's append/commit
    /// stats plus a `wal_segments` gauge maintained at rolls and prunes.
    pub fn instrument(&mut self, obs: &Obs) {
        if let Some((_, _, wal)) = &mut self.active {
            wal.instrument(obs);
        }
        obs.gauge("wal_segments")
            .set(Self::segments(&self.dir).len() as i64);
        self.obs = Some(obs.clone());
    }

    /// The directory-level lock file guarding `dir` (for tests and
    /// shutdown checks).
    pub fn dir_lock_path(dir: impl AsRef<Path>) -> PathBuf {
        lock_path(dir.as_ref().join("segments"))
    }

    /// Segment files under `dir`, sorted by first position.
    pub fn segments(dir: impl AsRef<Path>) -> Vec<PathBuf> {
        let mut named: Vec<(u64, PathBuf)> = std::fs::read_dir(dir.as_ref())
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let first = Self::segment_pos(&path)?;
                Some((first, path))
            })
            .collect();
        named.sort();
        named.into_iter().map(|(_, p)| p).collect()
    }

    fn segment_pos(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        name.strip_prefix("seg-")?
            .strip_suffix(".wal")?
            .parse()
            .ok()
    }

    fn segment_path(&self, first: u64) -> PathBuf {
        self.dir.join(format!("seg-{first:020}.wal"))
    }

    /// Replays every record across all segments, in segment order
    /// (skipping torn tails per segment). Returns `(pos, record)` pairs.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if a complete frame fails to decode.
    pub fn replay<T: Wire>(dir: impl AsRef<Path>) -> Result<Vec<(u64, T)>> {
        let mut out = Vec::new();
        for seg in Self::segments(dir) {
            for rec in Wal::replay::<PosRecord>(&seg)? {
                let mut body = rec.body;
                out.push((rec.pos, T::decode(&mut body).map_err(Error::Wire)?));
            }
        }
        Ok(out)
    }

    /// One past the highest position recorded across all segments
    /// (0 for an empty or absent directory). A reopened writer resumes
    /// its position counter here so pruning cutoffs and segment names
    /// stay monotone across restarts.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if a complete frame fails to decode.
    pub fn end_pos(dir: impl AsRef<Path>) -> Result<u64> {
        let mut end = 0;
        for seg in Self::segments(dir) {
            for rec in Wal::replay::<PosRecord>(&seg)? {
                end = end.max(rec.pos + 1);
            }
        }
        Ok(end)
    }

    fn roll_to(&mut self, pos: u64) {
        // Open the next segment, then close (committing) the current one.
        // A same-or-lower position never rolls (see stage), so segment
        // names sort in creation order.
        let mut path = self.segment_path(pos);
        if path.exists() {
            // A reopened log staging the same position again (replayed
            // suffix): keep the old segment immutable, start a sibling
            // one position up — positions inside stay authoritative.
            let mut bump = pos;
            while path.exists() {
                bump += 1;
                path = self.segment_path(bump);
            }
        }
        match Wal::open(&path, self.policy) {
            Ok(mut new) => {
                if let Some((_, _, mut old)) = self.active.take() {
                    let _ = Wal::commit(&mut old);
                }
                if let Some(obs) = &self.obs {
                    new.instrument(obs);
                    // `Wal::open` created the file, so it is already in
                    // the directory listing.
                    obs.gauge("wal_segments")
                        .set(Self::segments(&self.dir).len() as i64);
                }
                self.active = Some((pos, 0, new));
            }
            Err(_) => {
                // Keep appending to the (oversized) current segment and
                // retry the roll on the next stage — a failed open must
                // never silently drop decided records. With no current
                // segment at all, the record is lost; `commit` reports
                // it.
                if self.active.is_none() {
                    self.dropped_since_commit += 1;
                }
            }
        }
    }
}

impl DecidedLog for SegmentedWal {
    fn instrument(&mut self, obs: &Obs) {
        SegmentedWal::instrument(self, obs);
    }

    fn stage(&mut self, pos: u64, encode: &mut dyn FnMut(&mut BytesMut)) {
        let need_roll = match &self.active {
            None => true,
            // Roll only forward: a late record below the active segment's
            // first position stays in the active segment, so no segment
            // ever holds positions above a *later* segment's name.
            Some((first, n, _)) => *n >= self.roll_every && pos > *first,
        };
        if need_roll {
            self.roll_to(pos);
        }
        if let Some((_, n, wal)) = &mut self.active {
            wal.append_buffered_with(|buf| {
                put_varint(buf, pos);
                encode(buf);
            });
            *n += 1;
        }
    }

    fn commit(&mut self) -> Result<()> {
        if self.dropped_since_commit > 0 {
            let n = self.dropped_since_commit;
            self.dropped_since_commit = 0;
            let _ = self.active.as_mut().map(|(_, _, w)| Wal::commit(w));
            return Err(Error::Storage(format!(
                "segmented wal dropped {n} record(s): no segment could be opened"
            )));
        }
        match &mut self.active {
            Some((_, _, wal)) => Wal::commit(wal),
            None => Ok(()),
        }
    }

    fn prune_below(&mut self, pos: u64) -> Result<usize> {
        // Guard the *actual* open file: its name can sit above the
        // active first-position when a roll had to bump past an existing
        // segment name.
        let active_path = self.active.as_ref().map(|(_, _, w)| w.path().to_path_buf());
        let mut dropped = 0usize;
        for seg in Self::segments(&self.dir) {
            if Some(&seg) == active_path.as_ref() {
                continue; // never the open segment
            }
            // Cheap name filter: a roll names the new segment at (or,
            // when bumping past an existing name, slightly above) its
            // first record, so a name below the cursor is a necessary
            // condition for "all records below the cursor" — except for
            // bumped segments, where skipping merely *retains* a
            // prunable segment (conservative, never unsafe). This avoids
            // re-reading the whole surviving log on every checkpoint.
            if Self::segment_pos(&seg).is_none_or(|first| first >= pos) {
                continue;
            }
            // Safety check by content, not by name: drop the segment only
            // if every record in it is below the checkpoint cursor.
            let all_below = match Wal::replay::<PosRecord>(&seg) {
                Ok(records) => !records.is_empty() && records.iter().all(|r| r.pos < pos),
                Err(_) => false, // unreadable: keep it for forensics
            };
            if all_below && std::fs::remove_file(&seg).is_ok() {
                dropped += 1;
            }
        }
        if let Some(obs) = &self.obs {
            if dropped > 0 {
                obs.gauge("wal_segments")
                    .set(Self::segments(&self.dir).len() as i64);
            }
        }
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::ids::{InstanceId, NodeId};
    use common::msg::AcceptedEntry;
    use common::value::Value;
    use common::Ballot;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wal-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn entry(i: u64) -> AcceptedEntry {
        AcceptedEntry {
            inst: InstanceId::new(i),
            vballot: Ballot::new(1, NodeId::new(1)),
            value: Value::app(NodeId::new(1), i, bytes::Bytes::from_static(b"payload")),
        }
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("append");
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            for i in 0..10 {
                wal.append(&entry(i)).unwrap();
            }
            assert_eq!(wal.appended(), 10);
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[9], entry(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_ignores_torn_tail() {
        let path = tmp("torn");
        {
            let mut wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
            wal.append(&entry(0)).unwrap();
            wal.append(&entry(1)).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn write: chop a few bytes off the end.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();

        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], entry(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_stages_until_commit() {
        let path = tmp("group");
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            for i in 0..5 {
                wal.append_buffered(&entry(i));
            }
            assert_eq!(wal.pending(), 5);
            assert_eq!(wal.appended(), 0, "staged records are not yet written");
            // Nothing on disk before the commit.
            assert_eq!(
                Wal::replay::<AcceptedEntry>(&path).unwrap().len(),
                0,
                "records invisible before commit"
            );
            wal.commit().unwrap();
            assert_eq!(wal.pending(), 0);
            assert_eq!(wal.appended(), 5);
            wal.commit().unwrap(); // idempotent no-op
            assert_eq!(wal.appended(), 5);
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4], entry(4));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffered_with_matches_owned_encoding() {
        let path = tmp("borrowed");
        {
            let mut wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
            let e = entry(3);
            wal.append_buffered_with(|buf| e.encode(buf));
            wal.commit().unwrap();
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![entry(3)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lock_excludes_second_writer_and_releases_on_drop() {
        let path = tmp("lock");
        let wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
        assert!(lock_path(&path).exists());
        // A second writer in this (live) process is refused.
        match Wal::open(&path, SyncPolicy::OsDecides) {
            Err(Error::Storage(msg)) => assert!(msg.contains("locked"), "{msg}"),
            other => panic!("second open must fail with Storage, got {other:?}"),
        }
        drop(wal);
        assert!(
            !lock_path(&path).exists(),
            "lock must be released deterministically on drop"
        );
        // A lock left by a dead pid is stolen, not fatal.
        std::fs::write(lock_path(&path), "999999999").unwrap();
        let wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
        drop(wal);
        // So is an unparsable lock: atomic creation (pid staged before
        // the link) means no *live* owner can have left one, and a
        // stale lock must never brick a restart.
        std::fs::write(lock_path(&path), "not-a-pid").unwrap();
        let wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
        drop(wal);
        assert!(!lock_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    fn seg_tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("segwal-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn stage_entry(w: &mut SegmentedWal, i: u64) {
        let e = entry(i);
        w.stage(i, &mut |buf| e.encode(buf));
    }

    #[test]
    fn segmented_wal_rolls_replays_and_prunes() {
        let dir = seg_tmp("roll");
        {
            let mut w = SegmentedWal::open(&dir, SyncPolicy::OsDecides, 4).unwrap();
            for i in 0..10 {
                stage_entry(&mut w, i);
            }
            DecidedLog::commit(&mut w).unwrap();
            // 10 records at 4 per segment: 3 segments.
            assert_eq!(SegmentedWal::segments(&dir).len(), 3);
            let replayed: Vec<(u64, AcceptedEntry)> = SegmentedWal::replay(&dir).unwrap();
            assert_eq!(replayed.len(), 10);
            assert_eq!(replayed[7].0, 7);
            assert_eq!(replayed[7].1, entry(7));

            // A checkpoint at 8 retires the two closed all-below segments
            // ([0..4), [4..8)) but never the active one.
            assert_eq!(w.prune_below(8).unwrap(), 2);
            assert_eq!(SegmentedWal::segments(&dir).len(), 1);
            let replayed: Vec<(u64, AcceptedEntry)> = SegmentedWal::replay(&dir).unwrap();
            assert_eq!(replayed.first().map(|(p, _)| *p), Some(8));

            // A cursor below the surviving segment's records deletes
            // nothing.
            assert_eq!(w.prune_below(9).unwrap(), 0);
        }
        // Restart over the rotated directory: replay sees the suffix,
        // and new appends land in a fresh segment.
        {
            let mut w = SegmentedWal::open(&dir, SyncPolicy::OsDecides, 4).unwrap();
            assert_eq!(
                SegmentedWal::replay::<AcceptedEntry>(&dir).unwrap().len(),
                2
            );
            stage_entry(&mut w, 10);
            DecidedLog::commit(&mut w).unwrap();
            let replayed: Vec<(u64, AcceptedEntry)> = SegmentedWal::replay(&dir).unwrap();
            assert_eq!(replayed.len(), 3);
            assert_eq!(replayed.last().map(|(p, _)| *p), Some(10));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bumped_active_segment_survives_prune() {
        // A reopened log staging a position that collides with an
        // existing segment name bumps the new file's name past it; a
        // prune must guard the file actually open — not the file the
        // un-bumped position would name — or it deletes the live log.
        let dir = seg_tmp("bump");
        {
            let mut w = SegmentedWal::open(&dir, SyncPolicy::OsDecides, 2).unwrap();
            for i in 0..3 {
                stage_entry(&mut w, i); // seg-0 (0,1) + seg-2 (2)
            }
            DecidedLog::commit(&mut w).unwrap();
        }
        {
            let mut w = SegmentedWal::open(&dir, SyncPolicy::OsDecides, 2).unwrap();
            stage_entry(&mut w, 2); // collides with seg-2: bumped file name
            DecidedLog::commit(&mut w).unwrap();
            assert_eq!(SegmentedWal::segments(&dir).len(), 3);
            // Cursor above everything: the immutable segments go, the
            // open (bumped) one must survive.
            w.prune_below(100).unwrap();
            stage_entry(&mut w, 5);
            DecidedLog::commit(&mut w).unwrap();
            let replayed: Vec<(u64, AcceptedEntry)> = SegmentedWal::replay(&dir).unwrap();
            assert_eq!(
                replayed.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
                vec![2, 5],
                "the active segment's records survived the prune"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segmented_wal_dir_lock_excludes_second_writer() {
        let dir = seg_tmp("lock");
        let w = SegmentedWal::open(&dir, SyncPolicy::OsDecides, 4).unwrap();
        assert!(SegmentedWal::dir_lock_path(&dir).exists());
        match SegmentedWal::open(&dir, SyncPolicy::OsDecides, 4) {
            Err(Error::Storage(msg)) => assert!(msg.contains("locked"), "{msg}"),
            other => panic!("second open must fail with Storage, got {other:?}"),
        }
        drop(w);
        assert!(!SegmentedWal::dir_lock_path(&dir).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_wal_decided_log_ignores_prune() {
        let path = tmp("plainlog");
        let mut wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
        let e = entry(1);
        DecidedLog::stage(&mut wal, 1, &mut |buf| e.encode(buf));
        DecidedLog::commit(&mut wal).unwrap();
        assert_eq!(wal.prune_below(100).unwrap(), 0);
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![entry(1)]);
        drop(wal);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = tmp("reopen");
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            wal.append(&entry(0)).unwrap();
        }
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            wal.append(&entry(1)).unwrap();
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
