//! A real-file write-ahead log for the live runtime.
//!
//! Frames are length-delimited [`Wire`] records (the same framing the TCP
//! transport uses), appended to a single file with optional fsync. This is
//! the stand-in for the paper's Berkeley DB JE storage.

use bytes::BytesMut;
use common::error::{Error, Result};
use common::wire::{frame, Wire};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Whether appends force data to the platter before returning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every append (the paper's synchronous mode).
    EveryWrite,
    /// Let the OS page cache decide (asynchronous mode).
    OsDecides,
}

/// An append-only, length-framed log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    appended: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened for append.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(Wal {
            file,
            path,
            policy,
            appended: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; with [`SyncPolicy::EveryWrite`] the record is
    /// durable when this returns.
    pub fn append<T: Wire>(&mut self, record: &T) -> Result<()> {
        let mut buf = BytesMut::new();
        frame::write(&mut buf, record);
        self.file.write_all(&buf)?;
        if self.policy == SyncPolicy::EveryWrite {
            self.file.sync_data()?;
        }
        self.appended += 1;
        Ok(())
    }

    /// Forces buffered data to disk.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The file path backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads every record currently in the file (crash recovery replay).
    /// A torn final frame (partial write during a crash) is ignored, as a
    /// real recovery would.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if a *complete* frame fails to decode.
    pub fn replay<T: Wire>(path: impl AsRef<Path>) -> Result<Vec<T>> {
        let mut file = File::open(path.as_ref())?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut buf = BytesMut::from(&raw[..]);
        let mut out = Vec::new();
        loop {
            match frame::try_read::<T>(&mut buf) {
                Ok(Some(rec)) => out.push(rec),
                Ok(None) => break, // torn tail or clean EOF
                Err(e) => return Err(Error::Wire(e)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::ids::{InstanceId, NodeId};
    use common::msg::AcceptedEntry;
    use common::value::Value;
    use common::Ballot;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wal-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn entry(i: u64) -> AcceptedEntry {
        AcceptedEntry {
            inst: InstanceId::new(i),
            vballot: Ballot::new(1, NodeId::new(1)),
            value: Value::app(NodeId::new(1), i, bytes::Bytes::from_static(b"payload")),
        }
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("append");
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            for i in 0..10 {
                wal.append(&entry(i)).unwrap();
            }
            assert_eq!(wal.appended(), 10);
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[9], entry(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_ignores_torn_tail() {
        let path = tmp("torn");
        {
            let mut wal = Wal::open(&path, SyncPolicy::OsDecides).unwrap();
            wal.append(&entry(0)).unwrap();
            wal.append(&entry(1)).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn write: chop a few bytes off the end.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();

        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], entry(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = tmp("reopen");
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            wal.append(&entry(0)).unwrap();
        }
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryWrite).unwrap();
            wal.append(&entry(1)).unwrap();
        }
        let records: Vec<AcceptedEntry> = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
