//! Property tests for the acceptor log: trim/replay invariants and
//! crash-durability consistency under arbitrary operation sequences.

use bytes::Bytes;
use common::ids::{Ballot, InstanceId, NodeId};
use common::value::Value;
use common::SimTime;
use proptest::prelude::*;
use storage::{AcceptorLog, DiskProfile, StorageMode};

#[derive(Clone, Debug)]
enum OpKind {
    Accept { inst: u16, payload: u8 },
    Decide { inst: u16 },
    Trim { upto: u16 },
}

fn arb_ops() -> impl Strategy<Value = Vec<OpKind>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (any::<u16>(), any::<u8>()).prop_map(|(inst, payload)| OpKind::Accept {
                inst: inst % 200,
                payload
            }),
            2 => any::<u16>().prop_map(|inst| OpKind::Decide { inst: inst % 200 }),
            1 => any::<u16>().prop_map(|upto| OpKind::Trim { upto: upto % 200 }),
        ],
        0..120,
    )
}

fn value(node: u32, payload: u8) -> Value {
    Value::app(
        NodeId::new(node),
        u64::from(payload),
        Bytes::from(vec![payload; 8]),
    )
}

proptest! {
    /// The trim floor only moves forward, and no retained entry is ever
    /// below it.
    #[test]
    fn trim_floor_is_monotone_and_respected(ops in arb_ops()) {
        let mut log = AcceptorLog::new(StorageMode::InMemory);
        let ballot = Ballot::new(1, NodeId::new(1));
        log.promise(ballot, SimTime::ZERO);
        let mut floor = InstanceId::ZERO;
        for op in ops {
            match op {
                OpKind::Accept { inst, payload } => {
                    let inst = InstanceId::new(u64::from(inst));
                    if inst >= log.trim_floor() {
                        log.accept(inst, ballot, value(1, payload), SimTime::ZERO);
                    }
                }
                OpKind::Decide { inst } => {
                    let inst = InstanceId::new(u64::from(inst));
                    log.mark_decided(inst, value(1, 0), SimTime::ZERO);
                }
                OpKind::Trim { upto } => {
                    log.trim(InstanceId::new(u64::from(upto)));
                }
            }
            prop_assert!(log.trim_floor() >= floor, "trim floor moved backwards");
            floor = log.trim_floor();
            let all = log.entries_in_range(InstanceId::ZERO, InstanceId::new(u64::MAX));
            for e in &all {
                prop_assert!(e.inst >= floor, "entry {} below floor {}", e.inst, floor);
            }
            // decided_in_range ⊆ entries_in_range.
            let decided = log.decided_in_range(InstanceId::ZERO, InstanceId::new(u64::MAX));
            prop_assert!(decided.len() <= all.len());
        }
    }

    /// Crashing a sync-mode log never loses acknowledged entries; an
    /// in-memory log always loses everything.
    #[test]
    fn crash_durability_matches_mode(ops in arb_ops(), crash_at_ms in 0u64..100) {
        let ballot = Ballot::new(1, NodeId::new(1));
        let crash_time = SimTime::from_millis(crash_at_ms);

        let mut sync_log = AcceptorLog::new(StorageMode::Sync(DiskProfile::ssd()));
        sync_log.promise(ballot, SimTime::ZERO);
        let mut acked_by_crash: Vec<InstanceId> = Vec::new();
        let mut now = SimTime::ZERO;
        for op in &ops {
            if let OpKind::Accept { inst, payload } = op {
                let inst = InstanceId::new(u64::from(*inst));
                if inst < sync_log.trim_floor() {
                    continue;
                }
                let receipt = sync_log.accept(inst, ballot, value(1, *payload), now);
                if receipt.ack_at <= crash_time {
                    acked_by_crash.push(inst);
                }
                now += std::time::Duration::from_micros(100);
            }
        }
        sync_log.crash(crash_time);
        for inst in acked_by_crash {
            prop_assert!(
                sync_log.accepted(inst).is_some(),
                "sync-acknowledged entry {inst} lost in crash"
            );
        }

        let mut mem_log = AcceptorLog::new(StorageMode::InMemory);
        mem_log.promise(ballot, SimTime::ZERO);
        for op in &ops {
            if let OpKind::Accept { inst, payload } = op {
                mem_log.accept(
                    InstanceId::new(u64::from(*inst)),
                    ballot,
                    value(1, *payload),
                    SimTime::ZERO,
                );
            }
        }
        mem_log.crash(crash_time);
        prop_assert!(mem_log.is_empty(), "in-memory log survived a crash");
    }

    /// Replay windows: decided_in_range(from, to) returns exactly the
    /// decided, retained instances in [from, to), in order.
    #[test]
    fn decided_range_is_sorted_and_bounded(
        ops in arb_ops(),
        from in 0u64..200,
        to in 0u64..200,
    ) {
        let ballot = Ballot::new(1, NodeId::new(1));
        let mut log = AcceptorLog::new(StorageMode::InMemory);
        log.promise(ballot, SimTime::ZERO);
        for op in ops {
            match op {
                OpKind::Accept { inst, payload } => {
                    let inst = InstanceId::new(u64::from(inst));
                    if inst >= log.trim_floor() {
                        log.accept(inst, ballot, value(1, payload), SimTime::ZERO);
                    }
                }
                OpKind::Decide { inst } => {
                    log.mark_decided(InstanceId::new(u64::from(inst)), value(1, 0), SimTime::ZERO)
                }
                OpKind::Trim { upto } => log.trim(InstanceId::new(u64::from(upto))),
            }
        }
        let (from, to) = (InstanceId::new(from), InstanceId::new(to));
        let decided = log.decided_in_range(from, to);
        for w in decided.windows(2) {
            prop_assert!(w[0].inst < w[1].inst, "range not sorted");
        }
        for e in &decided {
            prop_assert!(e.inst >= from && e.inst < to, "out of bounds");
            prop_assert!(e.inst >= log.trim_floor());
            prop_assert!(log.is_decided(e.inst));
        }
    }
}
