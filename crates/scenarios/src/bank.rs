//! Fault-tolerant bank/ATM: exactly-once money movement under a replica
//! kill and a region partition.
//!
//! One account store (1 partition, one replica per paper region) takes
//! concurrent transfers from tellers in two regions. A transfer is two
//! non-idempotent counter bumps — `debit-<a> += amt`, `credit-<b> +=
//! amt` — sent through the exactly-once session layer, so a teller's
//! re-sends during failover must land each bump exactly once. Mid-run
//! the us-east-1 replica is SIGKILLed and restarted, then us-west-2 is
//! cut off by a netem region partition and healed. Afterwards every
//! server-side counter must equal the tellers' own tally, and credits
//! must balance debits to the cent: a double-executed or lost re-send
//! breaks one of those immediately.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::ids::{ClientId, NodeId};
use liverun::{ClientOptions, Deployment, DeploymentConfig, StoreClient};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::configs::bank_doc;
use crate::report::Outcome;

/// Bank scenario parameters.
pub struct BankParams {
    /// First port of the deployment's port block (6 ports).
    pub base_port: u16,
    /// WAN delay scale (`wan_delay_scale_pct`).
    pub scale_pct: u64,
    /// Pause between fault-schedule steps.
    pub phase: Duration,
}

const ACCOUNTS: u32 = 8;

struct TellerResult {
    transfers: u64,
    volume: u64,
    debit: Vec<u64>,
    credit: Vec<u64>,
}

fn teller(
    config: DeploymentConfig,
    id: u32,
    stop: Arc<AtomicBool>,
) -> Result<TellerResult, String> {
    let mut client = StoreClient::connect(
        &config,
        ClientId::new(id),
        ClientOptions {
            timeout: Duration::from_secs(60),
            retry_every: Duration::from_millis(750),
            ..ClientOptions::default()
        },
    )
    .map_err(|e| format!("teller {id}: connect: {e}"))?;
    let mut rng = StdRng::seed_from_u64(42 + u64::from(id));
    let mut out = TellerResult {
        transfers: 0,
        volume: 0,
        debit: vec![0; ACCOUNTS as usize],
        credit: vec![0; ACCOUNTS as usize],
    };
    // Stop is only checked between transfers: both halves of a started
    // transfer are pushed to completion, so the books can balance.
    while !stop.load(Ordering::SeqCst) {
        let a = rng.random_range(0u32..ACCOUNTS);
        let b = (a + rng.random_range(1u32..ACCOUNTS)) % ACCOUNTS;
        let amt = u64::from(rng.random_range(1u32..100));
        client
            .add(&format!("debit-{a}"), amt)
            .map_err(|e| format!("teller {id}: debit: {e}"))?;
        out.debit[a as usize] += amt;
        client
            .add(&format!("credit-{b}"), amt)
            .map_err(|e| format!("teller {id}: credit: {e}"))?;
        out.credit[b as usize] += amt;
        out.transfers += 1;
        out.volume += amt;
    }
    Ok(out)
}

fn read_counter(client: &mut StoreClient, key: &str) -> Result<u64, String> {
    Ok(client
        .read(key)
        .map_err(|e| format!("read {key}: {e}"))?
        .map(|b| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&b);
            u64::from_le_bytes(raw)
        })
        .unwrap_or(0))
}

/// Runs the bank and checks conservation + exactly-once invariants.
pub fn run(params: &BankParams) -> Outcome {
    let fail = |detail: String| Outcome {
        name: "bank",
        passed: false,
        detail,
        json: "{}".into(),
    };
    let doc = bank_doc(params.base_port, params.scale_pct);
    let config = match DeploymentConfig::parse(&doc) {
        Ok(c) => c,
        Err(e) => return fail(format!("parse: {e}")),
    };
    let mut deployment = match Deployment::launch(config) {
        Ok(d) => d,
        Err(e) => return fail(format!("launch: {e}")),
    };
    let netem = deployment.netem().expect("geo deployment has netem");

    // Tellers in the two regions that stay in the majority throughout.
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for (i, region) in ["eu-west-1", "us-east-1"].iter().enumerate() {
        let cfg = match deployment.config_from(region) {
            Ok(c) => c,
            Err(e) => return fail(format!("config_from {region}: {e}")),
        };
        let stop = Arc::clone(&stop);
        let id = 9300 + i as u32;
        handles.push(std::thread::spawn(move || teller(cfg, id, stop)));
    }

    // The fault schedule: a replica dies and comes back, then a whole
    // region drops off the map and returns.
    let phase = params.phase;
    std::thread::sleep(phase);
    if let Err(e) = deployment.kill(NodeId::new(1)) {
        return fail(format!("kill node 1: {e}"));
    }
    std::thread::sleep(phase);
    if let Err(e) = deployment.restart(NodeId::new(1)) {
        return fail(format!("restart node 1: {e}"));
    }
    std::thread::sleep(phase);
    netem.partition("us-west-2");
    std::thread::sleep(phase);
    netem.heal("us-west-2");
    std::thread::sleep(phase);
    stop.store(true, Ordering::SeqCst);

    let mut tellers = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok(t)) => tellers.push(t),
            Ok(Err(e)) => return fail(e),
            Err(_) => return fail("teller panicked".into()),
        }
    }

    // The books, audited from a fresh client in eu-west-1 — node 0 was
    // in the surviving majority of both faults, so its replica state is
    // complete.
    let verify_config = match deployment.config_from("eu-west-1") {
        Ok(c) => c,
        Err(e) => return fail(format!("verify config: {e}")),
    };
    let mut auditor = match StoreClient::connect(
        &verify_config,
        ClientId::new(9390),
        ClientOptions {
            timeout: Duration::from_secs(30),
            ..ClientOptions::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => return fail(format!("auditor connect: {e}")),
    };
    let mut violations = Vec::new();
    let mut total_debit = 0u64;
    let mut total_credit = 0u64;
    for a in 0..ACCOUNTS as usize {
        let expect_debit: u64 = tellers.iter().map(|t| t.debit[a]).sum();
        let expect_credit: u64 = tellers.iter().map(|t| t.credit[a]).sum();
        let debit = match read_counter(&mut auditor, &format!("debit-{a}")) {
            Ok(v) => v,
            Err(e) => return fail(e),
        };
        let credit = match read_counter(&mut auditor, &format!("credit-{a}")) {
            Ok(v) => v,
            Err(e) => return fail(e),
        };
        if debit != expect_debit {
            violations.push(format!("debit-{a}: server {debit} vs acked {expect_debit}"));
        }
        if credit != expect_credit {
            violations.push(format!(
                "credit-{a}: server {credit} vs acked {expect_credit}"
            ));
        }
        total_debit += debit;
        total_credit += credit;
    }
    if total_debit != total_credit {
        violations.push(format!(
            "conservation broken: {total_debit} debited vs {total_credit} credited"
        ));
    }
    deployment.shutdown();

    let transfers: u64 = tellers.iter().map(|t| t.transfers).sum();
    let volume: u64 = tellers.iter().map(|t| t.volume).sum();
    let passed = violations.is_empty() && transfers > 0;
    let detail = if passed {
        format!("{transfers} transfers, {volume} moved, books balanced through kill + partition")
    } else if transfers == 0 {
        "no transfers completed".into()
    } else {
        violations.join("; ")
    };
    let json = format!(
        "{{\"transfers\": {transfers}, \"volume\": {volume}, \"accounts\": {ACCOUNTS}, \
         \"total_debited\": {total_debit}, \"total_credited\": {total_credit}, \
         \"violations\": {}}}",
        violations.len()
    );
    Outcome {
        name: "bank",
        passed,
        detail,
        json,
    }
}
