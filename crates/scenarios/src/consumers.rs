//! dLog consumer groups with replicated offsets.
//!
//! Producers in two regions append records round-robin across three
//! shared data logs; two consumers with a static assignment read them
//! back and commit their progress into a fourth log — the *offsets*
//! log, replicated through the same atomic multicast as the data, so a
//! consumer's position survives anything the data survives. Mid-run the
//! deployment takes the full fault schedule (replica kill + restart,
//! region partition + heal), and one consumer additionally crashes:
//! it throws away every piece of local state and resumes from its last
//! committed offset, re-reading the uncommitted tail (at-least-once by
//! construction, counted as `duplicates`). Afterwards every produced
//! record must have been consumed at its acked position, every log's
//! positions must be dense — a duplicated append would leave an extra
//! record past the expected tail — and the tail past the last produced
//! record must be empty.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use common::ids::{ClientId, NodeId};
use liverun::{ClientOptions, Deployment, DeploymentConfig, LogClient};

use crate::configs::{dlog_doc, offsets_log};
use crate::report::Outcome;

/// Consumer-group scenario parameters.
pub struct ConsumerParams {
    /// First port of the deployment's port block (6 ports).
    pub base_port: u16,
    /// WAN delay scale (`wan_delay_scale_pct`).
    pub scale_pct: u64,
    /// Records each producer appends.
    pub per_producer: u64,
    /// Pause between fault-schedule steps.
    pub phase: Duration,
}

const DATA_LOGS: u16 = 3;
const COMMIT_EVERY: u64 = 5;

type Ledger = Arc<Mutex<Vec<(u16, u64, String)>>>;
type Targets = Arc<Mutex<Option<HashMap<u16, u64>>>>;

fn opts() -> ClientOptions {
    ClientOptions {
        timeout: Duration::from_secs(60),
        retry_every: Duration::from_millis(750),
        ..ClientOptions::default()
    }
}

fn producer(config: DeploymentConfig, pid: u64, count: u64, ledger: Ledger) -> Result<(), String> {
    let mut client = LogClient::connect(&config, ClientId::new(9500 + pid as u32), opts())
        .map_err(|e| format!("producer {pid}: connect: {e}"))?;
    for seq in 0..count {
        let log = ((pid + seq) % u64::from(DATA_LOGS)) as u16;
        let value = format!("p{pid}-{seq:05}");
        let pos = client
            .append(log, Bytes::from(value.clone().into_bytes()))
            .map_err(|e| format!("producer {pid}: append: {e}"))?;
        ledger.lock().unwrap().push((log, pos, value));
    }
    Ok(())
}

/// Replays the offsets log and returns the group's last committed
/// position per assigned log (0 where it never committed).
fn recover_offsets(
    client: &mut LogClient,
    group: &str,
    logs: &[u16],
) -> Result<HashMap<u16, u64>, String> {
    let mut next: HashMap<u16, u64> = logs.iter().map(|l| (*l, 0)).collect();
    let mut pos = 0u64;
    while let Some(raw) = client
        .read(offsets_log(DATA_LOGS), pos)
        .map_err(|e| format!("offsets read: {e}"))?
    {
        let entry = String::from_utf8_lossy(&raw).into_owned();
        let mut parts = entry.split(',');
        if let (Some(g), Some(l), Some(n)) = (parts.next(), parts.next(), parts.next()) {
            if g == group {
                if let (Ok(l), Ok(n)) = (l.parse::<u16>(), n.parse::<u64>()) {
                    if logs.contains(&l) {
                        next.insert(l, n);
                    }
                }
            }
        }
        pos += 1;
    }
    Ok(next)
}

struct ConsumerOut {
    consumed: Vec<(u16, u64, String)>,
    commits: u64,
    duplicates: u64,
    crashed: bool,
    tail_clear: bool,
}

#[allow(clippy::too_many_arguments)]
fn consumer(
    config: DeploymentConfig,
    base_id: u32,
    group: String,
    logs: Vec<u16>,
    targets: Targets,
    crash_after: Option<u64>,
    deadline: Instant,
) -> Result<ConsumerOut, String> {
    let connect = |id: u32| {
        LogClient::connect(&config, ClientId::new(id), opts())
            .map_err(|e| format!("{group}: connect: {e}"))
    };
    let mut client = connect(base_id)?;
    let mut next: HashMap<u16, u64> = logs.iter().map(|l| (*l, 0)).collect();
    let mut since_commit: HashMap<u16, u64> = logs.iter().map(|l| (*l, 0)).collect();
    let mut seen: HashSet<(u16, u64)> = HashSet::new();
    let mut out = ConsumerOut {
        consumed: Vec::new(),
        commits: 0,
        duplicates: 0,
        crashed: false,
        tail_clear: false,
    };
    loop {
        if Instant::now() > deadline {
            return Err(format!(
                "{group}: deadline with {} consumed",
                out.consumed.len()
            ));
        }
        // The scripted crash: once it has committed something, the
        // consumer forgets everything it knows — client session,
        // positions, commit cadence — and rebuilds from the offsets log.
        if let Some(after) = crash_after {
            if !out.crashed && out.commits >= 1 && out.consumed.len() as u64 >= after {
                out.crashed = true;
                client = connect(base_id + 1)?;
                next = recover_offsets(&mut client, &group, &logs)?;
                for v in since_commit.values_mut() {
                    *v = 0;
                }
            }
        }
        let mut progressed = false;
        for &log in &logs {
            let pos = next[&log];
            let Some(raw) = client
                .read(log, pos)
                .map_err(|e| format!("{group}: read {log}@{pos}: {e}"))?
            else {
                continue;
            };
            let value = String::from_utf8_lossy(&raw).into_owned();
            if !seen.insert((log, pos)) {
                out.duplicates += 1;
            }
            out.consumed.push((log, pos, value));
            next.insert(log, pos + 1);
            progressed = true;
            let due = {
                let c = since_commit.get_mut(&log).expect("assigned log");
                *c += 1;
                *c >= COMMIT_EVERY
            };
            if due {
                client
                    .append(
                        offsets_log(DATA_LOGS),
                        Bytes::from(format!("{group},{log},{}", pos + 1).into_bytes()),
                    )
                    .map_err(|e| format!("{group}: commit: {e}"))?;
                out.commits += 1;
                since_commit.insert(log, 0);
            }
        }
        if progressed {
            continue;
        }
        let done = targets
            .lock()
            .unwrap()
            .as_ref()
            .is_some_and(|t| logs.iter().all(|l| next[l] >= t[l]));
        if done {
            // Nothing may live past the produced tail: an extra record
            // there is a re-executed (duplicated) append.
            let t = targets.lock().unwrap().clone().expect("checked above");
            out.tail_clear = logs
                .iter()
                .all(|l| matches!(client.read(*l, t[l]), Ok(None)));
            return Ok(out);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs producers, consumers and the fault schedule, then audits the
/// streams end to end.
pub fn run(params: &ConsumerParams) -> Outcome {
    let fail = |detail: String| Outcome {
        name: "consumer_groups",
        passed: false,
        detail,
        json: "{}".into(),
    };
    let doc = dlog_doc(params.base_port, DATA_LOGS, params.scale_pct);
    let config = match DeploymentConfig::parse(&doc) {
        Ok(c) => c,
        Err(e) => return fail(format!("parse: {e}")),
    };
    let mut deployment = match Deployment::launch(config) {
        Ok(d) => d,
        Err(e) => return fail(format!("launch: {e}")),
    };
    let netem = deployment.netem().expect("geo deployment has netem");

    let ledger: Ledger = Arc::new(Mutex::new(Vec::new()));
    let targets: Targets = Arc::new(Mutex::new(None));
    let deadline = Instant::now() + Duration::from_secs(120);

    // Producers and consumers all live in the two majority regions;
    // us-west-2 only hosts the replica the partition takes away.
    let mut producers = Vec::new();
    for (pid, region) in ["eu-west-1", "us-east-1"].iter().enumerate() {
        let cfg = match deployment.config_from(region) {
            Ok(c) => c,
            Err(e) => return fail(format!("config_from {region}: {e}")),
        };
        let ledger = Arc::clone(&ledger);
        let count = params.per_producer;
        producers.push(std::thread::spawn(move || {
            producer(cfg, pid as u64, count, ledger)
        }));
    }
    let mut consumers = Vec::new();
    for (region, base_id, group, logs, crash_after) in [
        ("us-east-1", 9510u32, "g0", vec![0u16], None),
        ("eu-west-1", 9520u32, "g1", vec![1u16, 2u16], Some(12)),
    ] {
        let cfg = match deployment.config_from(region) {
            Ok(c) => c,
            Err(e) => return fail(format!("config_from {region}: {e}")),
        };
        let targets = Arc::clone(&targets);
        let group = group.to_string();
        consumers.push(std::thread::spawn(move || {
            consumer(cfg, base_id, group, logs, targets, crash_after, deadline)
        }));
    }

    // The fault schedule runs while both sides are in full flight.
    let phase = params.phase;
    std::thread::sleep(phase);
    if let Err(e) = deployment.kill(NodeId::new(1)) {
        return fail(format!("kill node 1: {e}"));
    }
    std::thread::sleep(phase);
    if let Err(e) = deployment.restart(NodeId::new(1)) {
        return fail(format!("restart node 1: {e}"));
    }
    std::thread::sleep(phase);
    netem.partition("us-west-2");
    std::thread::sleep(phase);
    netem.heal("us-west-2");

    for (pid, h) in producers.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return fail(e),
            Err(_) => return fail(format!("producer {pid} panicked")),
        }
    }
    // Producers done: publish the per-log record counts the consumers
    // must reach before they may stop.
    {
        let ledger = ledger.lock().unwrap();
        let mut counts: HashMap<u16, u64> = (0..DATA_LOGS).map(|l| (l, 0)).collect();
        for (log, _, _) in ledger.iter() {
            *counts.get_mut(log).expect("data log") += 1;
        }
        *targets.lock().unwrap() = Some(counts);
    }
    let mut outs = Vec::new();
    for h in consumers {
        match h.join() {
            Ok(Ok(o)) => outs.push(o),
            Ok(Err(e)) => return fail(e),
            Err(_) => return fail("consumer panicked".into()),
        }
    }
    deployment.shutdown();

    // Audit: every acked append must be consumed at its acked position
    // with its exact payload; per-log coverage must be dense.
    let ledger = Arc::try_unwrap(ledger)
        .expect("all producers joined")
        .into_inner()
        .unwrap();
    let mut consumed_at: HashMap<(u16, u64), String> = HashMap::new();
    let mut violations = Vec::new();
    for o in &outs {
        for (log, pos, value) in &o.consumed {
            if let Some(prev) = consumed_at.insert((*log, *pos), value.clone()) {
                if prev != *value {
                    violations.push(format!("{log}@{pos}: read {prev:?} then {value:?}"));
                }
            }
        }
    }
    for (log, pos, value) in &ledger {
        match consumed_at.get(&(*log, *pos)) {
            Some(got) if got == value => {}
            Some(got) => violations.push(format!("{log}@{pos}: produced {value:?}, read {got:?}")),
            None => violations.push(format!("{log}@{pos}: produced {value:?} never consumed")),
        }
    }
    for log in 0..DATA_LOGS {
        let produced = ledger.iter().filter(|(l, _, _)| *l == log).count() as u64;
        let covered = consumed_at.keys().filter(|(l, _)| *l == log).count() as u64;
        if covered != produced {
            violations.push(format!(
                "log {log}: {covered} positions consumed of {produced} produced"
            ));
        }
    }
    if !outs[1].crashed {
        violations.push("consumer g1 never exercised its crash-recovery".into());
    }
    for (o, group) in outs.iter().zip(["g0", "g1"]) {
        if o.commits == 0 {
            violations.push(format!("{group} committed no offsets"));
        }
        if !o.tail_clear {
            violations.push(format!(
                "{group}: a record exists past the produced tail (duplicated append)"
            ));
        }
    }

    let produced = ledger.len() as u64;
    let consumed_unique = consumed_at.len() as u64;
    let duplicates: u64 = outs.iter().map(|o| o.duplicates).sum();
    let commits: u64 = outs.iter().map(|o| o.commits).sum();
    let passed = violations.is_empty() && produced > 0;
    let detail = if passed {
        format!(
            "{produced} produced, {consumed_unique} consumed ({duplicates} replayed after crash), \
             {commits} offset commits, streams dense through kill + partition"
        )
    } else {
        violations.join("; ")
    };
    let json = format!(
        "{{\"produced\": {produced}, \"consumed_unique\": {consumed_unique}, \
         \"duplicates_after_crash\": {duplicates}, \"offset_commits\": {commits}, \
         \"violations\": {}}}",
        violations.len()
    );
    Outcome {
        name: "consumer_groups",
        passed,
        detail,
        json,
    }
}
