//! Deployment-document builders for the WAN scenarios.
//!
//! Every scenario runs on the paper's three evaluation regions
//! ([`Region::PAPER_THREE`]) under the `ec2-2014` WAN profile, scaled by
//! `wan_delay_scale_pct` so the same documents serve both the CI smoke
//! form (fractional delays, seconds of wall clock) and the full form
//! (real WAN delays, minutes).

use common::geo::Region;
use mrpstore::Partitioning;
use std::fmt::Write as _;

/// The paper's three regions, in partition order: partition `p` of a
/// placement deployment lives in `paper_regions()[p]`.
pub fn paper_regions() -> [&'static str; 3] {
    let [a, b, c] = Region::PAPER_THREE;
    [a.name(), b.name(), c.name()]
}

fn push_geo(out: &mut String, scale_pct: u64) {
    let _ = write!(
        out,
        "wan_profile = \"ec2-2014\"\nwan_delay_scale_pct = {scale_pct}\n"
    );
}

fn push_regions(out: &mut String, placement: &[(&str, Vec<u16>)]) {
    for (name, nodes) in placement {
        let ids = nodes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(out, "\n[[region]]\nname = \"{name}\"\nnodes = [{ids}]\n");
    }
}

fn ids(list: impl IntoIterator<Item = u16>) -> String {
    list.into_iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// A 3-partition, 2-replicas-per-partition MRP-Store across the three
/// paper regions — the placement A/B deployment. Partition `p`'s
/// replicas (nodes `2p`, `2p+1`) live in region `p`.
///
/// * `spanning = false` (the *local* arm): each partition ring contains
///   only the partition's own replicas — ordering for single-key
///   commands stays inside one region, exactly the paper's geo-local
///   placement. The shared ring still spans all six nodes.
/// * `spanning = true` (the *global* arm): every partition ring's
///   members and acceptors are widened to all six nodes, so even
///   single-key commands circulate the globe before delivery — the
///   paper's baseline of a single world-spanning ring. Subscriptions
///   are unchanged (delivery still happens at the partition's own
///   replicas), and each ring's member list is rotated to start at the
///   partition's replicas so clients reach a subscriber first.
pub fn placement_doc(base_port: u16, spanning: bool, scale_pct: u64) -> String {
    const PARTITIONS: u16 = 3;
    const REPLICAS: u16 = 2;
    let n = PARTITIONS * REPLICAS;
    let mut out = String::from("[deployment]\nservice = \"mrpstore\"\n");
    let _ = writeln!(out, "partitions = {PARTITIONS}");
    out.push_str("batch_max = 64\nbatch_delay_ms = 1\ncheckpoint_ms = 500\n");
    push_geo(&mut out, scale_pct);
    let mut port = base_port;
    for id in 0..n {
        let _ = writeln!(out, "\n[[node]]\nid = {id}");
        let _ = writeln!(out, "peer_addr = \"127.0.0.1:{port}\"");
        let _ = writeln!(out, "client_addr = \"127.0.0.1:{}\"", port + 1);
        let _ = writeln!(out, "partition = {}", id / REPLICAS);
        port += 2;
    }
    for p in 0..PARTITIONS {
        let members = if spanning {
            // All six nodes, rotated so the partition's own replicas
            // lead the list (they are the ring's proposers of record
            // and the only subscribers).
            ids((0..n).map(|i| (p * REPLICAS + i) % n))
        } else {
            ids(p * REPLICAS..(p + 1) * REPLICAS)
        };
        let _ = writeln!(
            out,
            "\n[[ring]]\nid = {p}\nmembers = [{members}]\nacceptors = [{members}]"
        );
    }
    let all = ids(0..n);
    let _ = writeln!(
        out,
        "\n[[ring]]\nid = {PARTITIONS}\nmembers = [{all}]\nacceptors = [{all}]"
    );
    for p in 0..PARTITIONS {
        let replicas = ids(p * REPLICAS..(p + 1) * REPLICAS);
        let _ = writeln!(
            out,
            "\n[[partition]]\nid = {p}\nrings = [{p}, {PARTITIONS}]\nreplicas = [{replicas}]"
        );
    }
    let placement: Vec<(&str, Vec<u16>)> = paper_regions()
        .iter()
        .enumerate()
        .map(|(p, name)| {
            let p = p as u16;
            (*name, (p * REPLICAS..(p + 1) * REPLICAS).collect())
        })
        .collect();
    push_regions(&mut out, &placement);
    out
}

/// A 1-partition, 3-replica MRP-Store with one replica per paper region
/// — the bank/ATM deployment. Any two regions form a majority, so the
/// service must survive a replica kill *and* a region partition.
pub fn bank_doc(base_port: u16, scale_pct: u64) -> String {
    let base = liverun::config::generate_localhost_mrpstore(1, 3, base_port, None);
    let [eu, use1, usw2] = paper_regions();
    liverun::config::with_geo(&base, &[(eu, &[0]), (use1, &[1]), (usw2, &[2])], scale_pct)
}

/// A 3-replica dLog with `data_logs` shared data logs plus one offsets
/// log, one replica per paper region. Ring `l` orders log `l`, the
/// highest ring is the shared multi-append ring; every replica
/// subscribes to everything, so any replica answers reads.
pub fn dlog_doc(base_port: u16, data_logs: u16, scale_pct: u64) -> String {
    let logs = data_logs + 1; // + the consumer-offsets log
    let mut out = String::from("[deployment]\nservice = \"dlog\"\n");
    let _ = writeln!(out, "logs = {logs}");
    out.push_str("batch_max = 64\nbatch_delay_ms = 1\ncheckpoint_ms = 500\n");
    push_geo(&mut out, scale_pct);
    let mut port = base_port;
    for id in 0..3 {
        let _ = writeln!(out, "\n[[node]]\nid = {id}");
        let _ = writeln!(out, "peer_addr = \"127.0.0.1:{port}\"");
        let _ = writeln!(out, "client_addr = \"127.0.0.1:{}\"", port + 1);
        out.push_str("partition = 0\n");
        port += 2;
    }
    let all = ids(0..3);
    for ring in 0..=logs {
        let _ = writeln!(
            out,
            "\n[[ring]]\nid = {ring}\nmembers = [{all}]\nacceptors = [{all}]"
        );
    }
    let rings = ids(0..=logs);
    let _ = writeln!(
        out,
        "\n[[partition]]\nid = 0\nrings = [{rings}]\nreplicas = [{all}]"
    );
    let [eu, use1, usw2] = paper_regions();
    push_regions(&mut out, &[(eu, vec![0]), (use1, vec![1]), (usw2, vec![2])]);
    out
}

/// The offsets log of a [`dlog_doc`] deployment with `data_logs` data
/// logs (the last log).
pub fn offsets_log(data_logs: u16) -> u16 {
    data_logs
}

/// `count` keys that hash to partition `p` under `scheme` — the
/// placement workload pins each region's client to its region-local
/// partition with these.
pub fn keys_of_partition(scheme: &Partitioning, p: u16, count: usize) -> Vec<String> {
    let mut keys = Vec::with_capacity(count);
    let mut i = 0u64;
    while keys.len() < count {
        let key = format!("k{i:06}");
        if scheme.partition_of(&key).raw() == p {
            keys.push(key);
        }
        i += 1;
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use liverun::DeploymentConfig;

    #[test]
    fn placement_docs_parse_and_differ_only_in_ring_membership() {
        let local = DeploymentConfig::parse(&placement_doc(18000, false, 10)).unwrap();
        let global = DeploymentConfig::parse(&placement_doc(18000, true, 10)).unwrap();
        assert_eq!(local.nodes.len(), 6);
        assert_eq!(global.nodes.len(), 6);
        // Local arm: partition rings stay regional; global arm: they span.
        assert_eq!(local.rings[1].members.len(), 2);
        assert_eq!(global.rings[1].members.len(), 6);
        // The spanning ring leads with the partition's own replicas so
        // clients reach a subscriber (a delivering replica) first.
        assert_eq!(global.rings[1].members[0].raw(), 2);
        assert_eq!(global.rings[1].members[1].raw(), 3);
        // Both arms share the same geo placement and shaped links.
        for cfg in [&local, &global] {
            let geo = cfg.geo.as_ref().unwrap();
            assert_eq!(
                geo.region_of(common::ids::NodeId::new(4)),
                Some("us-west-2")
            );
            assert!(geo.max_one_way() > std::time::Duration::ZERO);
        }
        // Subscriptions are identical: delivery stays at the partition.
        for node in 0..6u32 {
            let node = common::ids::NodeId::new(node);
            assert_eq!(local.subscribe_to(node), global.subscribe_to(node));
        }
    }

    #[test]
    fn bank_and_dlog_docs_parse() {
        let bank = DeploymentConfig::parse(&bank_doc(18100, 10)).unwrap();
        assert_eq!(bank.nodes.len(), 3);
        assert!(bank.geo.is_some());
        let dlog = DeploymentConfig::parse(&dlog_doc(18200, 3, 10)).unwrap();
        assert_eq!(dlog.rings.len(), 5); // 3 data + offsets + multi-append
        assert_eq!(dlog.global_ring().raw(), 4);
        // Every replica subscribes to every log ring: any node answers
        // reads for any log.
        for node in 0..3u32 {
            assert_eq!(dlog.subscribe_to(common::ids::NodeId::new(node)).len(), 5);
        }
    }

    #[test]
    fn keys_pin_to_their_partition() {
        let scheme = Partitioning::Hash { partitions: 3 };
        for p in 0..3 {
            let keys = keys_of_partition(&scheme, p, 16);
            assert_eq!(keys.len(), 16);
            for k in &keys {
                assert_eq!(scheme.partition_of(k).raw(), p);
            }
        }
    }
}
