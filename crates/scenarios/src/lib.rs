//! `scenarios` — the WAN scenario harness (§7, §8 of the paper, live).
//!
//! Everything below `liverun` orders commands; everything here asks the
//! deployed system the paper's questions. Each scenario boots a real
//! multi-process-shaped deployment ([`liverun::Deployment`]) across the
//! paper's three EC2 regions with per-link netem shaping
//! ([`liverun::netem`]), drives an application workload against it,
//! injects faults (replica SIGKILL, region partition) mid-run, and
//! checks application-level invariants afterwards:
//!
//! * [`placement`] — global vs geo-local ring placement A/B: the same
//!   six nodes, single-key latency per region, measured under regional
//!   partition rings vs one world-spanning ring.
//! * [`bank`] — a fault-tolerant bank/ATM on exactly-once sessions:
//!   balances must be conserved through a replica kill and a region
//!   partition.
//! * [`consumers`] — dLog consumer groups committing their offsets into
//!   a replicated log; a crashed consumer resumes from its commits.
//!
//! The `amcast-scenario` binary runs the zoo: `--smoke` is the cheap CI
//! form (scaled-down WAN delays, seconds per scenario), the default
//! heavy form runs the full `ec2-2014` delay matrix and writes
//! `BENCH_scenarios.json`.

pub mod bank;
pub mod configs;
pub mod consumers;
pub mod placement;
pub mod report;

pub use report::{report_json, LatencySummary, Outcome};
