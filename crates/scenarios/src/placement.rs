//! Placement A/B: geo-local partition rings vs one globe-spanning ring.
//!
//! The paper's core argument (§2, §7): a partitioned service whose
//! partition rings stay inside one region answers single-partition
//! commands at regional latency, while a deployment that orders
//! everything on a world-spanning ring pays a full WAN circulation per
//! command. Both arms here run the *same* six nodes, the same paper
//! regions and the same shaped links; only ring membership differs
//! ([`crate::configs::placement_doc`]). One client per region hammers
//! keys of its region-local partition and reports p50/p99 per region.

use std::time::{Duration, Instant};

use common::hist::Histogram;
use common::ids::ClientId;
use liverun::{ClientOptions, Deployment, DeploymentConfig, StoreClient};

use crate::configs::{keys_of_partition, paper_regions, placement_doc};
use crate::report::{LatencySummary, Outcome};

/// Placement A/B parameters.
pub struct PlacementParams {
    /// First port of the arm's port block (each arm uses 12 ports,
    /// the global arm starts at `base_port + 50`).
    pub base_port: u16,
    /// WAN delay scale (`wan_delay_scale_pct`).
    pub scale_pct: u64,
    /// Measured time per arm (after warmup).
    pub duration: Duration,
}

struct ArmStats {
    per_region: Vec<(String, LatencySummary)>,
    overall: LatencySummary,
}

fn client_opts() -> ClientOptions {
    ClientOptions {
        timeout: Duration::from_secs(30),
        retry_every: Duration::from_secs(2),
        ..ClientOptions::default()
    }
}

fn run_arm(doc: &str, duration: Duration, id_base: u32) -> Result<ArmStats, String> {
    let config = DeploymentConfig::parse(doc).map_err(|e| format!("parse: {e}"))?;
    let deployment = Deployment::launch(config).map_err(|e| format!("launch: {e}"))?;
    let regions = paper_regions();
    let mut handles = Vec::new();
    for (ri, region) in regions.iter().enumerate() {
        let client_config = deployment
            .config_from(region)
            .map_err(|e| format!("config_from {region}: {e}"))?;
        let region = region.to_string();
        let id = id_base + ri as u32;
        handles.push(std::thread::spawn(move || -> Result<_, String> {
            let mut client = StoreClient::connect(&client_config, ClientId::new(id), client_opts())
                .map_err(|e| format!("{region}: connect: {e}"))?;
            let keys = keys_of_partition(client.scheme(), ri as u16, 16);
            // Warm up: open the session, populate the keys, let the
            // deployment settle — excluded from the measurement.
            for key in &keys {
                client
                    .add(key, 1)
                    .map_err(|e| format!("{region}: warmup: {e}"))?;
            }
            let mut hist = Histogram::new();
            let deadline = Instant::now() + duration;
            let mut i = 0usize;
            while Instant::now() < deadline {
                let at = Instant::now();
                client
                    .add(&keys[i % keys.len()], 1)
                    .map_err(|e| format!("{region}: add: {e}"))?;
                hist.record_duration(at.elapsed());
                i += 1;
            }
            Ok((region, hist))
        }));
    }
    let mut per_region = Vec::new();
    let mut merged = Histogram::new();
    let mut failures = Vec::new();
    for h in handles {
        match h.join().map_err(|_| "worker panicked".to_string())? {
            Ok((region, hist)) => {
                merged.merge(&hist);
                per_region.push((region, LatencySummary::of(&hist)));
            }
            Err(e) => failures.push(e),
        }
    }
    deployment.shutdown();
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(ArmStats {
        per_region,
        overall: LatencySummary::of(&merged),
    })
}

fn arm_json(arm: &ArmStats) -> String {
    let regions = arm
        .per_region
        .iter()
        .map(|(name, s)| format!("\"{name}\": {}", s.to_json()))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"overall\": {}, \"regions\": {{{regions}}}}}",
        arm.overall.to_json()
    )
}

/// Runs both arms and checks the paper's claim: region-local placement
/// must put p50 *materially* below the spanning-ring arm (here: at most
/// 75% of it, and in practice far less).
pub fn run(params: &PlacementParams) -> Outcome {
    let arms = [
        (
            "local",
            placement_doc(params.base_port, false, params.scale_pct),
        ),
        (
            "global",
            placement_doc(params.base_port + 50, true, params.scale_pct),
        ),
    ];
    let mut stats = Vec::new();
    for (i, (name, doc)) in arms.iter().enumerate() {
        match run_arm(doc, params.duration, 9100 + 100 * i as u32) {
            Ok(s) => stats.push((*name, s)),
            Err(e) => {
                return Outcome {
                    name: "placement_ab",
                    passed: false,
                    detail: format!("{name} arm failed: {e}"),
                    json: "{}".into(),
                }
            }
        }
    }
    let local = &stats[0].1;
    let global = &stats[1].1;
    let ratio = local.overall.p50_ns as f64 / (global.overall.p50_ns.max(1)) as f64;
    let all_measured = stats
        .iter()
        .all(|(_, s)| s.per_region.iter().all(|(_, r)| r.ops > 0));
    let passed = all_measured && local.overall.p50_ns * 4 <= global.overall.p50_ns * 3;
    let detail = format!(
        "local p50 {:.1} ms vs global p50 {:.1} ms (ratio {:.2})",
        local.overall.p50_ns as f64 / 1e6,
        global.overall.p50_ns as f64 / 1e6,
        ratio,
    );
    let json = format!(
        "{{\"local\": {}, \"global\": {}, \"local_vs_global_p50\": {:.3}}}",
        arm_json(local),
        arm_json(global),
        ratio,
    );
    Outcome {
        name: "placement_ab",
        passed,
        detail,
        json,
    }
}
