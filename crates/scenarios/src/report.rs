//! Scenario outcomes and the hand-rolled JSON report
//! (`BENCH_scenarios.json`) the heavy form writes.

use common::hist::Histogram;

/// Latency summary of one workload stream, in nanoseconds (rendered
/// as milliseconds in the report).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Completed operations.
    pub ops: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Mean latency.
    pub mean_ns: f64,
}

impl LatencySummary {
    /// Summarizes a histogram of nanosecond samples.
    pub fn of(h: &Histogram) -> Self {
        LatencySummary {
            ops: h.count(),
            p50_ns: h.quantile(0.50),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
            mean_ns: h.mean(),
        }
    }

    /// The summary as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ops\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}}}",
            self.ops,
            self.p50_ns as f64 / 1e6,
            self.p95_ns as f64 / 1e6,
            self.p99_ns as f64 / 1e6,
            self.mean_ns / 1e6,
        )
    }
}

/// What one scenario produced: a pass/fail verdict, a human line, and
/// its JSON fragment for the report.
#[derive(Debug)]
pub struct Outcome {
    /// Scenario name (the report key).
    pub name: &'static str,
    /// Did every invariant hold?
    pub passed: bool,
    /// One-line human summary (failures list what broke).
    pub detail: String,
    /// The scenario's JSON object for the report.
    pub json: String,
}

/// Assembles the full `BENCH_scenarios.json` document.
pub fn report_json(mode: &str, scale_pct: u64, outcomes: &[Outcome]) -> String {
    let mut body = String::new();
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    \"{}\": {{\"passed\": {}, \"detail\": \"{}\", \"results\": {}}}",
            o.name,
            o.passed,
            escape(&o.detail),
            o.json
        ));
    }
    format!(
        "{{\n  \"suite\": \"wan_scenarios\",\n  \"mode\": \"{mode}\",\n  \
         \"wan_delay_scale_pct\": {scale_pct},\n  \"scenarios\": {{\n{body}\n  }}\n}}\n"
    )
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_shape() {
        let mut h = Histogram::new();
        for v in [100, 200, 300] {
            h.record(v);
        }
        let s = LatencySummary::of(&h);
        assert_eq!(s.ops, 3);
        let out = Outcome {
            name: "placement_ab",
            passed: true,
            detail: "local p50 \"materially\" below global".into(),
            json: format!("{{\"overall\": {}}}", s.to_json()),
        };
        let doc = report_json("smoke", 40, &[out]);
        assert!(doc.contains("\"wan_delay_scale_pct\": 40"));
        assert!(doc.contains("\\\"materially\\\""));
        assert!(doc.contains("\"placement_ab\""));
    }
}
