//! `amcast-scenario` — runs the WAN scenario zoo against shaped live
//! deployments.
//!
//! ```text
//! amcast-scenario [--smoke] [--only NAME] [--out PATH] [--base-port N] [--scale PCT]
//! ```
//!
//! * `--smoke` — the CI form: WAN delays scaled to 40%, seconds per
//!   scenario, same topologies, same fault schedules, same invariants.
//! * `--only NAME` — run one scenario (`placement`, `bank`, `consumers`).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_scenarios.json`).
//! * `--base-port N` — first port of the harness's port blocks
//!   (default 17000; uses up to ~400 ports above it).
//! * `--scale PCT` — override the WAN delay scale.
//!
//! Exit status is non-zero if any scenario's invariants failed.

use std::time::Duration;

use scenarios::bank::{self, BankParams};
use scenarios::consumers::{self, ConsumerParams};
use scenarios::placement::{self, PlacementParams};
use scenarios::report::{report_json, Outcome};

struct Args {
    smoke: bool,
    only: Option<String>,
    out: String,
    base_port: u16,
    scale: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        only: None,
        out: "BENCH_scenarios.json".into(),
        base_port: 17000,
        scale: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--only" => args.only = Some(value("--only")?),
            "--out" => args.out = value("--out")?,
            "--base-port" => {
                args.base_port = value("--base-port")?
                    .parse()
                    .map_err(|e| format!("--base-port: {e}"))?
            }
            "--scale" => {
                args.scale = Some(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("amcast-scenario: {e}");
            std::process::exit(2);
        }
    };
    let mode = if args.smoke { "smoke" } else { "full" };
    // Smoke scales the WAN to 40% — still tens of milliseconds between
    // regions, so placement effects stay measurable, but fault phases
    // and timeouts fit a CI budget.
    let scale = args.scale.unwrap_or(if args.smoke { 40 } else { 100 });
    let wants = |name: &str| args.only.as_deref().is_none_or(|only| only == name);

    println!("amcast-scenario: mode={mode} wan_delay_scale_pct={scale}");
    let mut outcomes: Vec<Outcome> = Vec::new();
    if wants("placement") {
        let params = PlacementParams {
            base_port: args.base_port,
            scale_pct: scale,
            duration: if args.smoke {
                Duration::from_millis(2500)
            } else {
                Duration::from_secs(8)
            },
        };
        outcomes.push(placement::run(&params));
        report_progress(outcomes.last().expect("just pushed"));
    }
    if wants("bank") {
        let params = BankParams {
            base_port: args.base_port + 200,
            scale_pct: scale,
            phase: if args.smoke {
                Duration::from_millis(1000)
            } else {
                Duration::from_millis(2000)
            },
        };
        outcomes.push(bank::run(&params));
        report_progress(outcomes.last().expect("just pushed"));
    }
    if wants("consumers") {
        let params = ConsumerParams {
            base_port: args.base_port + 300,
            scale_pct: scale,
            per_producer: if args.smoke { 45 } else { 120 },
            phase: if args.smoke {
                Duration::from_millis(900)
            } else {
                Duration::from_millis(2000)
            },
        };
        outcomes.push(consumers::run(&params));
        report_progress(outcomes.last().expect("just pushed"));
    }
    if outcomes.is_empty() {
        eprintln!("amcast-scenario: nothing selected (--only placement|bank|consumers)");
        std::process::exit(2);
    }

    let doc = report_json(mode, scale, &outcomes);
    if let Err(e) = std::fs::write(&args.out, &doc) {
        eprintln!("amcast-scenario: writing {}: {e}", args.out);
        std::process::exit(2);
    }
    println!("report written to {}", args.out);
    if outcomes.iter().any(|o| !o.passed) {
        std::process::exit(1);
    }
}

fn report_progress(o: &Outcome) {
    println!(
        "  {} {}: {}",
        if o.passed { "PASS" } else { "FAIL" },
        o.name,
        o.detail
    );
}
