//! Comparison baselines for the paper's evaluation (§8.3.2, §8.3.3).
//!
//! * [`eventual`] — a Cassandra-like eventually consistent replicated
//!   store: no request ordering, answers from any replica.
//! * [`single_node`] — a MySQL-like single-server store.
//! * [`ensemble_log`] — a Bookkeeper-like replicated log with aggressive
//!   time-based write batching.

pub mod ensemble_log;
pub mod eventual;
pub mod single_node;
