//! A Bookkeeper-like replicated log with aggressive write batching.
//!
//! The paper's Figure 5 compares dLog against Apache Bookkeeper and
//! attributes Bookkeeper's high latency to "its aggressive batching
//! mechanism, which attempts to maximize disk use by writing in large
//! chunks". This stand-in reproduces that architecture: a client writes
//! each entry to an ensemble of storage nodes ("bookies") and waits for
//! an acknowledgement quorum; each bookie accumulates entries and flushes
//! them to a sync disk either when the batch is large or on a periodic
//! timer, acknowledging only after the flush.

use bytes::{BufMut, Bytes, BytesMut};
use common::error::WireError;
use common::ids::NodeId;
use common::msg::Msg;
use common::wire::{get_bytes, get_tag, get_varint, put_bytes, put_varint, Wire};
use simnet::{Ctx, Process, Timer};
use std::time::Duration;
use storage::{DiskProfile, DiskTimeline, StorageMode};

/// `Msg::Custom` tag for the ensemble-log protocol.
pub const TAG_ENSEMBLE: u16 = 102;

/// Ensemble-log messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BkMsg {
    /// Client append to a bookie.
    Append {
        /// Entry id (client-scoped).
        entry: u64,
        /// Payload.
        value: Bytes,
    },
    /// Bookie acknowledgement after its batch flushed.
    Acked {
        /// The entry id.
        entry: u64,
    },
}

impl Wire for BkMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BkMsg::Append { entry, value } => {
                buf.put_u8(0);
                put_varint(buf, *entry);
                put_bytes(buf, value);
            }
            BkMsg::Acked { entry } => {
                buf.put_u8(1);
                put_varint(buf, *entry);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_tag(buf, "ensemble msg")? {
            0 => BkMsg::Append {
                entry: get_varint(buf)?,
                value: get_bytes(buf)?,
            },
            1 => BkMsg::Acked {
                entry: get_varint(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    context: "ensemble msg",
                    tag,
                })
            }
        })
    }
}

/// Wraps into the simulator envelope.
pub fn wrap(m: &BkMsg) -> Msg {
    Msg::Custom(TAG_ENSEMBLE, m.to_bytes())
}

/// Unwraps from the simulator envelope.
pub fn unwrap(msg: &Msg) -> Option<BkMsg> {
    match msg {
        Msg::Custom(TAG_ENSEMBLE, raw) => BkMsg::decode(&mut raw.clone()).ok(),
        _ => None,
    }
}

/// Batching policy of a bookie.
#[derive(Clone, Copy, Debug)]
pub struct BookieConfig {
    /// Flush when this many bytes are pending (Bookkeeper's journal
    /// writes in large pre-allocated chunks).
    pub flush_bytes: usize,
    /// Flush a non-empty batch after this long regardless.
    pub flush_interval: Duration,
    /// The journal disk.
    pub disk: DiskProfile,
}

impl Default for BookieConfig {
    fn default() -> Self {
        // Calibrated to the paper's observation: Bookkeeper's journal
        // "attempts to maximize disk use by writing in large chunks",
        // producing 150-250 ms append latencies (Figure 5 bottom).
        BookieConfig {
            flush_bytes: 4 * 1024 * 1024,
            flush_interval: Duration::from_millis(100),
            disk: DiskProfile::hdd(),
        }
    }
}

const TIMER_FLUSH: u32 = 40;
const TIMER_ACK: u32 = 41;

/// One storage node.
pub struct Bookie {
    cfg: BookieConfig,
    disk: DiskTimeline,
    /// Entries awaiting the next flush: `(client, entry id, bytes)`.
    pending: Vec<(NodeId, u64, usize)>,
    pending_bytes: usize,
    timer_armed: bool,
    flushed_entries: u64,
}

impl Bookie {
    /// A bookie with `cfg`.
    pub fn new(cfg: BookieConfig) -> Self {
        Bookie {
            disk: DiskTimeline::new(StorageMode::Sync(cfg.disk)),
            cfg,
            pending: Vec::new(),
            pending_bytes: 0,
            timer_armed: false,
            flushed_entries: 0,
        }
    }

    /// Entries flushed so far (diagnostics).
    pub fn flushed_entries(&self) -> u64 {
        self.flushed_entries
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending.is_empty() {
            return;
        }
        let now = ctx.now();
        let receipt = self.disk.write(self.pending_bytes, now);
        let batch = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        self.flushed_entries += batch.len() as u64;
        // Acks go out when the (single, large) sync write completes.
        for (client, entry, _) in batch {
            ctx.schedule_at(
                receipt.ack_at,
                Timer::with2(TIMER_ACK, u64::from(client.raw()), entry),
            );
        }
    }
}

impl Process for Bookie {
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_>) {
        let Some(BkMsg::Append { entry, value }) = unwrap(&msg) else {
            return;
        };
        self.pending_bytes += value.len() + 16;
        self.pending.push((from, entry, value.len()));
        if self.pending_bytes >= self.cfg.flush_bytes {
            self.flush(ctx);
        } else if !self.timer_armed {
            self.timer_armed = true;
            ctx.schedule(self.cfg.flush_interval, Timer::of_kind(TIMER_FLUSH));
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Ctx<'_>) {
        match timer.kind {
            TIMER_FLUSH => {
                self.timer_armed = false;
                self.flush(ctx);
            }
            TIMER_ACK => {
                let to = NodeId::new(timer.a as u32);
                ctx.send(to, wrap(&BkMsg::Acked { entry: timer.b }));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msgs_round_trip() {
        for m in [
            BkMsg::Append {
                entry: 7,
                value: Bytes::from_static(b"entry"),
            },
            BkMsg::Acked { entry: 7 },
        ] {
            assert_eq!(unwrap(&wrap(&m)).unwrap(), m);
        }
    }

    #[test]
    fn default_config_batches_large() {
        let cfg = BookieConfig::default();
        assert!(cfg.flush_bytes >= 1024 * 1024);
        assert!(cfg.flush_interval >= Duration::from_millis(50));
    }
}
