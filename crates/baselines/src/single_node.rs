//! A MySQL-like single-server store.
//!
//! One process owns the whole database: no replication, no ordering
//! protocol, a write-ahead log on local disk. Figure 4's MySQL column —
//! the paper notes MRP-Store "compares similarly to MySQL" while only
//! MRP-Store can scale out.

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};
use common::error::WireError;
use common::ids::NodeId;
use common::msg::Msg;
use common::wire::{get_bytes, get_tag, get_varint, put_bytes, put_varint, Wire};
use simnet::{Ctx, Process, Timer};
use storage::{DiskTimeline, StorageMode};

/// `Msg::Custom` tag for the single-node protocol.
pub const TAG_SINGLE: u16 = 101;

/// Client/server messages of the single-node store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnMsg {
    /// Write `key`.
    Put {
        /// Request id.
        req: u64,
        /// Key.
        key: String,
        /// Value.
        value: Bytes,
    },
    /// Read `key`.
    Get {
        /// Request id.
        req: u64,
        /// Key.
        key: String,
    },
    /// Scan `n` entries from `key`.
    Scan {
        /// Request id.
        req: u64,
        /// Start key.
        key: String,
        /// Max entries.
        n: u64,
    },
    /// Server response.
    Reply {
        /// Echoed request id.
        req: u64,
        /// Payload (value or entry count marker).
        value: Option<Bytes>,
    },
}

impl Wire for SnMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SnMsg::Put { req, key, value } => {
                buf.put_u8(0);
                put_varint(buf, *req);
                key.encode(buf);
                put_bytes(buf, value);
            }
            SnMsg::Get { req, key } => {
                buf.put_u8(1);
                put_varint(buf, *req);
                key.encode(buf);
            }
            SnMsg::Scan { req, key, n } => {
                buf.put_u8(2);
                put_varint(buf, *req);
                key.encode(buf);
                put_varint(buf, *n);
            }
            SnMsg::Reply { req, value } => {
                buf.put_u8(3);
                put_varint(buf, *req);
                value.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_tag(buf, "single-node msg")? {
            0 => SnMsg::Put {
                req: get_varint(buf)?,
                key: String::decode(buf)?,
                value: get_bytes(buf)?,
            },
            1 => SnMsg::Get {
                req: get_varint(buf)?,
                key: String::decode(buf)?,
            },
            2 => SnMsg::Scan {
                req: get_varint(buf)?,
                key: String::decode(buf)?,
                n: get_varint(buf)?,
            },
            3 => SnMsg::Reply {
                req: get_varint(buf)?,
                value: Option::<Bytes>::decode(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    context: "single-node msg",
                    tag,
                })
            }
        })
    }
}

/// Wraps into the simulator envelope.
pub fn wrap(m: &SnMsg) -> Msg {
    Msg::Custom(TAG_SINGLE, m.to_bytes())
}

/// Unwraps from the simulator envelope.
pub fn unwrap(msg: &Msg) -> Option<SnMsg> {
    match msg {
        Msg::Custom(TAG_SINGLE, raw) => SnMsg::decode(&mut raw.clone()).ok(),
        _ => None,
    }
}

/// The single server.
pub struct SingleNodeStore {
    data: BTreeMap<String, Bytes>,
    wal: DiskTimeline,
}

impl SingleNodeStore {
    /// A server persisting through `storage`.
    pub fn new(storage: StorageMode) -> Self {
        SingleNodeStore {
            data: BTreeMap::new(),
            wal: DiskTimeline::new(storage),
        }
    }

    /// Pre-loads an entry (database initialization before the run).
    pub fn preload(&mut self, key: String, value: Bytes) {
        self.data.insert(key, value);
    }

    /// Entries stored (diagnostics).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Process for SingleNodeStore {
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_>) {
        let Some(m) = unwrap(&msg) else { return };
        match m {
            SnMsg::Put { req, key, value } => {
                let now = ctx.now();
                let receipt = self.wal.write(value.len() + key.len() + 16, now);
                self.data.insert(key, value);
                // Reply once the WAL write is acknowledged; for async
                // storage that is immediate, for sync it waits the flush.
                // Timer indirection is unnecessary here because the reply
                // latency is what we model: send at ack via scheduled self
                // delivery would complicate things; instead we rely on the
                // disk timeline already serializing writes, and delay the
                // reply by scheduling when needed.
                if receipt.ack_at <= now {
                    ctx.send(from, wrap(&SnMsg::Reply { req, value: None }));
                } else {
                    // Encode the reply target in the timer payload.
                    ctx.schedule_at(
                        receipt.ack_at,
                        Timer::with2(TIMER_REPLY, u64::from(from.raw()), req),
                    );
                }
            }
            SnMsg::Get { req, key } => {
                let value = self.data.get(&key).cloned();
                ctx.send(from, wrap(&SnMsg::Reply { req, value }));
            }
            SnMsg::Scan { req, key, n } => {
                // Serve the scan; the reply size models the data volume.
                let total: usize = self
                    .data
                    .range(key..)
                    .take(n as usize)
                    .map(|(_, v)| v.len())
                    .sum();
                let blob = Bytes::from(vec![0u8; total.min(1 << 20)]);
                ctx.send(
                    from,
                    wrap(&SnMsg::Reply {
                        req,
                        value: Some(blob),
                    }),
                );
            }
            SnMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Ctx<'_>) {
        if timer.kind == TIMER_REPLY {
            let to = NodeId::new(timer.a as u32);
            ctx.send(
                to,
                wrap(&SnMsg::Reply {
                    req: timer.b,
                    value: None,
                }),
            );
        }
    }
}

const TIMER_REPLY: u32 = 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msgs_round_trip() {
        for m in [
            SnMsg::Put {
                req: 1,
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
            SnMsg::Get {
                req: 2,
                key: "k".into(),
            },
            SnMsg::Scan {
                req: 3,
                key: "a".into(),
                n: 10,
            },
            SnMsg::Reply {
                req: 1,
                value: None,
            },
        ] {
            assert_eq!(unwrap(&wrap(&m)).unwrap(), m);
        }
    }
}
