//! A Cassandra-like eventually consistent replicated store.
//!
//! The paper compares MRP-Store against Cassandra configured with three
//! partitions and replication factor three (§8.3.2). What matters for the
//! comparison is Cassandra's *consistency level ONE* fast path: a
//! coordinator replica applies a write locally, acknowledges immediately,
//! and propagates to the other replicas in the background; reads are
//! answered from the local copy. No ordering protocol runs, so requests
//! cost one client round-trip plus background gossip — the throughput
//! ceiling the paper's Figure 4 shows Cassandra enjoying.

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};
use common::error::WireError;
use common::ids::NodeId;
use common::msg::Msg;
use common::time::SimTime;
use common::wire::{get_bytes, get_tag, get_varint, put_bytes, put_varint, Wire};
use simnet::{Ctx, Process, Timer};
use std::time::Duration;
use storage::{DiskTimeline, StorageMode};

/// `Msg::Custom` tag for the eventual-store protocol.
pub const TAG_EVENTUAL: u16 = 100;

/// Client/replica messages of the eventual store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvMsg {
    /// Client write.
    Put {
        /// Request id for matching the ack.
        req: u64,
        /// Key.
        key: String,
        /// Value.
        value: Bytes,
        /// Timestamp for last-writer-wins.
        ts: u64,
    },
    /// Client read.
    Get {
        /// Request id.
        req: u64,
        /// Key.
        key: String,
    },
    /// Client range scan: `n` records from `key`. The reply's payload size
    /// models the transferred data volume.
    Scan {
        /// Request id.
        req: u64,
        /// Start key.
        key: String,
        /// Records wanted.
        n: u64,
    },
    /// Replica acknowledgement to the client.
    Ack {
        /// Echoed request id.
        req: u64,
        /// Value for reads.
        value: Option<Bytes>,
    },
    /// Background replication of a write.
    Gossip {
        /// Key.
        key: String,
        /// Value.
        value: Bytes,
        /// Last-writer-wins timestamp.
        ts: u64,
    },
}

impl Wire for EvMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            EvMsg::Put {
                req,
                key,
                value,
                ts,
            } => {
                buf.put_u8(0);
                put_varint(buf, *req);
                key.encode(buf);
                put_bytes(buf, value);
                put_varint(buf, *ts);
            }
            EvMsg::Get { req, key } => {
                buf.put_u8(1);
                put_varint(buf, *req);
                key.encode(buf);
            }
            EvMsg::Ack { req, value } => {
                buf.put_u8(2);
                put_varint(buf, *req);
                value.encode(buf);
            }
            EvMsg::Gossip { key, value, ts } => {
                buf.put_u8(3);
                key.encode(buf);
                put_bytes(buf, value);
                put_varint(buf, *ts);
            }
            EvMsg::Scan { req, key, n } => {
                buf.put_u8(4);
                put_varint(buf, *req);
                key.encode(buf);
                put_varint(buf, *n);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_tag(buf, "eventual msg")? {
            0 => EvMsg::Put {
                req: get_varint(buf)?,
                key: String::decode(buf)?,
                value: get_bytes(buf)?,
                ts: get_varint(buf)?,
            },
            1 => EvMsg::Get {
                req: get_varint(buf)?,
                key: String::decode(buf)?,
            },
            2 => EvMsg::Ack {
                req: get_varint(buf)?,
                value: Option::<Bytes>::decode(buf)?,
            },
            3 => EvMsg::Gossip {
                key: String::decode(buf)?,
                value: get_bytes(buf)?,
                ts: get_varint(buf)?,
            },
            4 => EvMsg::Scan {
                req: get_varint(buf)?,
                key: String::decode(buf)?,
                n: get_varint(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    context: "eventual msg",
                    tag,
                })
            }
        })
    }
}

/// Wraps an [`EvMsg`] into the simulator envelope.
pub fn wrap(m: &EvMsg) -> Msg {
    Msg::Custom(TAG_EVENTUAL, m.to_bytes())
}

/// Unwraps an [`EvMsg`].
pub fn unwrap(msg: &Msg) -> Option<EvMsg> {
    match msg {
        Msg::Custom(TAG_EVENTUAL, raw) => EvMsg::decode(&mut raw.clone()).ok(),
        _ => None,
    }
}

const TIMER_SCAN_REPLY: u32 = 60;
/// Modeled per-row cost of a Cassandra-1.x style range scan (SSTable
/// seeks, tombstone checks): the paper's workload-E collapse comes from
/// this overhead, which its random partitioner cannot amortize.
const SCAN_ROW_COST: Duration = Duration::from_micros(5);

/// One replica of the eventual store.
pub struct EventualReplica {
    peers: Vec<NodeId>,
    data: BTreeMap<String, (u64, Bytes)>,
    disk: DiskTimeline,
    /// Scans serialize on the replica (range reads are not index hits).
    scan_busy: SimTime,
    pending_scans: Vec<(SimTime, NodeId, u64, usize)>,
}

impl EventualReplica {
    /// A replica gossiping writes to `peers`.
    pub fn new(peers: Vec<NodeId>, storage: StorageMode) -> Self {
        EventualReplica {
            peers,
            data: BTreeMap::new(),
            disk: DiskTimeline::new(storage),
            scan_busy: SimTime::ZERO,
            pending_scans: Vec::new(),
        }
    }

    /// Pre-loads an entry (database initialization before the run).
    pub fn preload(&mut self, key: String, value: Bytes) {
        self.data.insert(key, (0, value));
    }

    /// Entries currently stored (diagnostics).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn lww_apply(&mut self, key: String, value: Bytes, ts: u64, now: SimTime) {
        self.disk.write(value.len() + 24, now);
        let slot = self.data.entry(key).or_insert((0, Bytes::new()));
        if ts >= slot.0 {
            *slot = (ts, value);
        }
    }
}

impl Process for EventualReplica {
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_>) {
        let Some(m) = unwrap(&msg) else { return };
        match m {
            EvMsg::Put {
                req,
                key,
                value,
                ts,
            } => {
                let now = ctx.now();
                self.lww_apply(key.clone(), value.clone(), ts, now);
                // Ack immediately (consistency level ONE)...
                ctx.send(from, wrap(&EvMsg::Ack { req, value: None }));
                // ...and replicate in the background.
                for peer in self.peers.clone() {
                    if peer != ctx.me() {
                        ctx.send(
                            peer,
                            wrap(&EvMsg::Gossip {
                                key: key.clone(),
                                value: value.clone(),
                                ts,
                            }),
                        );
                    }
                }
            }
            EvMsg::Get { req, key } => {
                let value = self.data.get(&key).map(|(_, v)| v.clone());
                ctx.send(from, wrap(&EvMsg::Ack { req, value }));
            }
            EvMsg::Gossip { key, value, ts } => {
                let now = ctx.now();
                self.lww_apply(key, value, ts, now);
            }
            EvMsg::Scan { req, key, n } => {
                // Serve the range. Rows cost SCAN_ROW_COST each and scans
                // serialize on the replica — range scans are Cassandra
                // 1.x's weak spot (paper §8.3.2, workload E).
                let total: usize = self
                    .data
                    .range(key..)
                    .take(n as usize)
                    .map(|(_, (_, v))| v.len())
                    .sum();
                let now = ctx.now();
                let serve_at = self.scan_busy.max(now) + SCAN_ROW_COST * (n as u32);
                self.scan_busy = serve_at;
                self.pending_scans
                    .push((serve_at, from, req, total.min(1 << 20)));
                ctx.schedule_at(serve_at, Timer::of_kind(TIMER_SCAN_REPLY));
            }
            EvMsg::Ack { .. } => {}
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Ctx<'_>) {
        if timer.kind != TIMER_SCAN_REPLY {
            return;
        }
        let now = ctx.now();
        let mut due = Vec::new();
        self.pending_scans.retain(|(at, from, req, bytes)| {
            if *at <= now {
                due.push((*from, *req, *bytes));
                false
            } else {
                true
            }
        });
        for (from, req, bytes) in due {
            ctx.send(
                from,
                wrap(&EvMsg::Ack {
                    req,
                    value: Some(Bytes::from(vec![0u8; bytes])),
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msgs_round_trip() {
        for m in [
            EvMsg::Put {
                req: 1,
                key: "k".into(),
                value: Bytes::from_static(b"v"),
                ts: 9,
            },
            EvMsg::Get {
                req: 2,
                key: "k".into(),
            },
            EvMsg::Ack {
                req: 1,
                value: Some(Bytes::from_static(b"v")),
            },
            EvMsg::Gossip {
                key: "k".into(),
                value: Bytes::new(),
                ts: 3,
            },
        ] {
            let msg = wrap(&m);
            assert_eq!(unwrap(&msg).unwrap(), m);
        }
    }

    #[test]
    fn last_writer_wins() {
        let mut r = EventualReplica::new(vec![], StorageMode::InMemory);
        r.lww_apply("k".into(), Bytes::from_static(b"old"), 5, SimTime::ZERO);
        r.lww_apply("k".into(), Bytes::from_static(b"stale"), 3, SimTime::ZERO);
        assert_eq!(r.data["k"].1, Bytes::from_static(b"old"));
        r.lww_apply("k".into(), Bytes::from_static(b"new"), 7, SimTime::ZERO);
        assert_eq!(r.data["k"].1, Bytes::from_static(b"new"));
    }
}
