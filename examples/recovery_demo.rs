//! Crash recovery walkthrough (paper §5): checkpoints, log trimming, and
//! a replica restart that installs a peer checkpoint and replays from the
//! acceptors.
//!
//! Run: `cargo run --example recovery_demo`

use std::collections::HashMap;
use std::time::Duration;

use atomic_multicast::common::ids::{ClientId, NodeId, PartitionId, RingId};
use atomic_multicast::common::SimTime;
use atomic_multicast::coord::{PartitionInfo, Registry, RingConfig};
use atomic_multicast::multiring::client::{ClosedLoopClient, CommandSpec};
use atomic_multicast::multiring::{EchoApp, HostOptions, MultiRingHost};
use atomic_multicast::ringpaxos::options::RingOptions;
use atomic_multicast::simnet::{CpuModel, Sim, Topology};
use atomic_multicast::storage::{DiskProfile, StorageMode};
use bytes::Bytes;

fn main() {
    let mut topo = Topology::lan();
    topo.set_jitter_frac(0.01);
    let mut sim = Sim::with_topology(11, topo);
    let registry = Registry::new();

    let ring = RingId::new(0);
    let members: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    registry
        .register_ring(RingConfig::new(ring, members.clone(), members.clone()).unwrap())
        .unwrap();
    registry
        .register_partition(
            PartitionId::new(0),
            PartitionInfo {
                rings: vec![ring],
                replicas: members.clone(),
            },
        )
        .unwrap();

    let host_opts = HostOptions {
        ring: RingOptions {
            storage: StorageMode::Async(DiskProfile::ssd()),
            heartbeat_interval: Duration::from_millis(20),
            failure_timeout: Duration::from_millis(300),
            ..RingOptions::default()
        },
        checkpoint_interval: Some(Duration::from_millis(500)),
        trim_interval: Some(Duration::from_millis(800)),
        checkpoint_storage: StorageMode::Sync(DiskProfile::ssd()),
        ..HostOptions::default()
    };
    for m in &members {
        let host = MultiRingHost::new(
            *m,
            registry.clone(),
            &[ring],
            &[ring],
            Some(PartitionId::new(0)),
            Box::new(EchoApp::new()),
            host_opts.clone(),
        );
        sim.add_node_with_cpu(0, host, CpuModel::server());
    }
    let client = ClosedLoopClient::new(
        ClientId::new(1),
        registry.clone(),
        HashMap::from([(ring, members[0])]),
        move |_rng: &mut rand::rngs::StdRng| {
            CommandSpec::simple(ring, Bytes::from_static(b"work"), vec![PartitionId::new(0)])
        },
        4,
    );
    let stats = client.stats();
    sim.add_node_with_cpu(0, client, CpuModel::free());

    let victim = members[2];
    println!("t=2s : replica {victim} crashes (ring reconfigures around it)");
    println!("t=5s : replica {victim} restarts (fetches a peer checkpoint, replays the rest)");
    sim.schedule_crash(victim, SimTime::from_secs(2));
    sim.schedule_restart(victim, SimTime::from_secs(5));

    let mut last = 0u64;
    for sec in 1..=8u64 {
        sim.run_until(SimTime::from_secs(sec));
        let c = stats.borrow().completed;
        println!("t={sec}s : {:>6} ops/s", c - last);
        last = c;
    }

    let m = sim.metrics();
    println!(
        "\ncrashes={} restarts={} (service stayed available on the 2-node majority)",
        m.borrow().counter("node.crashes"),
        m.borrow().counter("node.restarts")
    );
    assert_eq!(m.borrow().counter("node.restarts"), 1);
}
