//! Quickstart: atomic broadcast on a live in-process ring.
//!
//! Three nodes form one Ring Paxos ring (real threads, real channels —
//! not the simulator). We propose a handful of values from different
//! nodes and show that every node delivers the identical totally-ordered
//! stream.
//!
//! Run: `cargo run --example quickstart`

use std::time::Duration;

use atomic_multicast::common::ids::NodeId;
use atomic_multicast::common::value::{Value, ValueId, ValueKind};
use atomic_multicast::ringpaxos::live::LiveRing;
use atomic_multicast::ringpaxos::options::RingOptions;
use bytes::Bytes;

fn main() {
    // Start three nodes; every node is proposer + acceptor + learner, and
    // the first acceptor coordinates (paper §8.3.1's smallest deployment).
    let ring = LiveRing::in_process(3, RingOptions::crash_free()).expect("start ring");

    // Propose ten values, alternating the proposing node.
    for seq in 0..10u64 {
        let node = (seq % 3) as usize;
        let value = Value {
            id: ValueId::new(NodeId::new(node as u32), seq),
            kind: ValueKind::App(Bytes::from(format!("value-{seq} from node {node}"))),
        };
        ring.node(node).propose(value).expect("propose");
    }

    // Every node delivers the same stream, in the same order.
    let mut streams = Vec::new();
    for (i, node) in ring.nodes().iter().enumerate() {
        let mut got = Vec::new();
        while got.len() < 10 {
            let d = node
                .recv_delivery(Duration::from_secs(5))
                .expect("delivery within 5s");
            got.push(d);
        }
        println!("node {i} delivered {} values", got.len());
        streams.push(got);
    }

    assert_eq!(streams[0], streams[1]);
    assert_eq!(streams[1], streams[2]);
    println!("\ntotal order on every node:");
    for d in &streams[0] {
        let text = match &d.value.kind {
            ValueKind::App(b) => String::from_utf8_lossy(b).into_owned(),
            other => format!("{other:?}"),
        };
        println!("  instance {:>3} -> {text}", d.inst.raw());
    }

    ring.shutdown();
    println!("\nok: all three nodes delivered the identical sequence");
}
