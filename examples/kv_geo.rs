//! A geo-replicated key-value store in the simulator.
//!
//! Recreates the paper's global deployment in miniature: two EC2 regions,
//! each with its own partition (ring), plus a global ring ordering
//! cross-partition scans. A client in each region updates local keys; a
//! scan spanning both partitions is ordered against all of them by the
//! deterministic merge.
//!
//! Run: `cargo run --example kv_geo`

use std::collections::HashMap;

use atomic_multicast::common::ids::{ClientId, PartitionId};
use atomic_multicast::common::ids::{NodeId, RingId};
use atomic_multicast::common::wire::Wire;
use atomic_multicast::common::SimTime;
use atomic_multicast::coord::{PartitionInfo, Registry, RingConfig};
use atomic_multicast::mrpstore::{KvApp, KvCommand, Partitioning};
use atomic_multicast::multiring::client::{ClosedLoopClient, CommandSpec};
use atomic_multicast::multiring::{HostOptions, MultiRingHost};
use atomic_multicast::ringpaxos::options::{BatchPolicy, RateLeveling, RingOptions};
use atomic_multicast::simnet::{CpuModel, Region, Sim, Topology};
use atomic_multicast::storage::StorageMode;
use bytes::Bytes;

fn main() {
    let mut sim = Sim::with_topology(7, Topology::ec2());
    let registry = Registry::new();

    // Partition 0 in eu-west-1, partition 1 in us-west-2, plus a global
    // ring joining all six replicas.
    let scheme = Partitioning::Hash { partitions: 2 };
    scheme.publish(&registry);
    let rings = [RingId::new(0), RingId::new(1)];
    let global = RingId::new(2);
    let sites = [
        Topology::site_of_region(Region::EuWest1),
        Topology::site_of_region(Region::UsWest2),
    ];

    let mut replicas: Vec<Vec<NodeId>> = vec![Vec::new(); 2];
    for p in 0..2u32 {
        for r in 0..3u32 {
            replicas[p as usize].push(NodeId::new(p * 3 + r));
        }
    }
    for (p, ring) in rings.iter().enumerate() {
        registry
            .register_ring(
                RingConfig::new(*ring, replicas[p].clone(), replicas[p].clone()).unwrap(),
            )
            .unwrap();
    }
    let all: Vec<NodeId> = replicas.iter().flatten().copied().collect();
    registry
        .register_ring(RingConfig::new(global, all.clone(), all).unwrap())
        .unwrap();
    for p in 0..2usize {
        registry
            .register_partition(
                PartitionId::new(p as u16),
                PartitionInfo {
                    rings: vec![rings[p], global],
                    replicas: replicas[p].clone(),
                },
            )
            .unwrap();
    }

    let host_opts = HostOptions {
        ring: RingOptions {
            storage: StorageMode::InMemory,
            batching: Some(BatchPolicy::default()),
            rate_leveling: Some(RateLeveling::wan()),
            ..RingOptions::crash_free()
        },
        ..HostOptions::default()
    };
    for (p, nodes) in replicas.iter().enumerate() {
        for node in nodes {
            let host = MultiRingHost::new(
                *node,
                registry.clone(),
                &[rings[p], global],
                &[rings[p], global],
                Some(PartitionId::new(p as u16)),
                Box::new(KvApp::new(PartitionId::new(p as u16), scheme.clone())),
                host_opts.clone(),
            );
            let id = sim.add_node_with_cpu(sites[p], host, CpuModel::server());
            assert_eq!(id, *node);
        }
    }

    // One client per region inserting region-local keys, plus an
    // occasional global scan.
    let mut stats = Vec::new();
    for p in 0..2usize {
        let ring = rings[p];
        let scheme2 = scheme.clone();
        let mut seq = 0u64;
        let client = ClosedLoopClient::new(
            ClientId::new(100 + p as u32),
            registry.clone(),
            HashMap::from([(ring, replicas[p][0]), (global, replicas[p][0])]),
            move |_rng: &mut rand::rngs::StdRng| {
                seq += 1;
                if seq.is_multiple_of(20) {
                    // A cross-partition scan, atomically ordered via the
                    // global ring.
                    let cmd = KvCommand::Scan {
                        from: "k".into(),
                        to: String::new(),
                    };
                    CommandSpec::simple(
                        global,
                        cmd.to_bytes(),
                        vec![PartitionId::new(0), PartitionId::new(1)],
                    )
                    .labeled("scan")
                } else {
                    // A region-local insert.
                    let mut k = seq;
                    let key = loop {
                        let key = format!("k{k:08}");
                        if scheme2.partition_of(&key) == PartitionId::new(p as u16) {
                            break key;
                        }
                        k += 1;
                    };
                    seq = k;
                    let cmd = KvCommand::Insert {
                        key,
                        value: Bytes::from_static(b"geo-value"),
                    };
                    CommandSpec::simple(ring, cmd.to_bytes(), vec![PartitionId::new(p as u16)])
                        .labeled("insert")
                }
            },
            4,
        );
        stats.push(client.stats());
        sim.add_node_with_cpu(sites[p], client, CpuModel::free());
    }

    sim.run_until(SimTime::from_secs(20));

    for (p, s) in stats.iter().enumerate() {
        let s = s.borrow();
        let region = [Region::EuWest1, Region::UsWest2][p];
        println!(
            "region {:<10}: {:>6} ops completed, mean latency {:>7.1} ms",
            region.name(),
            s.completed,
            s.latency.mean() / 1e6
        );
        for (label, h) in &s.latency_by {
            println!(
                "    {label:<7} mean {:>7.1} ms  p99 {:>7.1} ms",
                h.mean() / 1e6,
                h.quantile(0.99) as f64 / 1e6
            );
        }
    }
    println!("\nok: both regions make steady progress; every operation's delivery waits for");
    println!("its global-ring merge turn (one WAN circulation) — the price of totally");
    println!("ordering cross-partition scans against local writes (paper fig. 7 CDF)");
}
