//! dLog: atomic appends to multiple shared logs.
//!
//! Two logs, each its own multicast group, plus a shared group for
//! `multi-append`. Every replica assigns identical positions because the
//! deterministic merge orders the shared group against each log's own
//! appends (paper §6.2, Table 2).
//!
//! Run: `cargo run --example shared_log`

use std::collections::HashMap;
use std::time::Duration;

use atomic_multicast::common::ids::{ClientId, NodeId, PartitionId, RingId};
use atomic_multicast::common::wire::Wire;
use atomic_multicast::common::SimTime;
use atomic_multicast::coord::{PartitionInfo, Registry, RingConfig};
use atomic_multicast::dlog::{DlogApp, LogCommand};
use atomic_multicast::multiring::client::{ClosedLoopClient, CommandSpec};
use atomic_multicast::multiring::{HostOptions, MultiRingHost};
use atomic_multicast::ringpaxos::options::{RateLeveling, RingOptions};
use atomic_multicast::simnet::{CpuModel, Sim, Topology};
use atomic_multicast::storage::StorageMode;
use bytes::Bytes;

fn main() {
    let mut topo = Topology::lan();
    topo.set_jitter_frac(0.01);
    let mut sim = Sim::with_topology(3, topo);
    let registry = Registry::new();

    // Three replicas host logs 0 and 1; ring 0 = log 0, ring 1 = log 1,
    // ring 2 = the shared multi-append group.
    let members: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let rings = [RingId::new(0), RingId::new(1), RingId::new(2)];
    for r in rings {
        registry
            .register_ring(RingConfig::new(r, members.clone(), members.clone()).unwrap())
            .unwrap();
    }
    registry
        .register_partition(
            PartitionId::new(0),
            PartitionInfo {
                rings: rings.to_vec(),
                replicas: members.clone(),
            },
        )
        .unwrap();

    let host_opts = HostOptions {
        ring: RingOptions {
            storage: StorageMode::InMemory,
            rate_leveling: Some(RateLeveling::datacenter()),
            ..RingOptions::crash_free()
        },
        ..HostOptions::default()
    };
    for m in &members {
        let host = MultiRingHost::new(
            *m,
            registry.clone(),
            &rings,
            &rings,
            Some(PartitionId::new(0)),
            Box::new(DlogApp::new(&[0, 1])),
            host_opts.clone(),
        );
        sim.add_node_with_cpu(0, host, CpuModel::server());
    }

    // A writer appending to log 0, log 1, and atomically to both.
    let mut seq = 0u64;
    let client = ClosedLoopClient::new(
        ClientId::new(9),
        registry.clone(),
        HashMap::from([
            (rings[0], members[0]),
            (rings[1], members[1]),
            (rings[2], members[2]),
        ]),
        move |_rng: &mut rand::rngs::StdRng| {
            seq += 1;
            let p0 = PartitionId::new(0);
            match seq % 3 {
                0 => CommandSpec::simple(
                    rings[2],
                    LogCommand::MultiAppend {
                        logs: vec![0, 1],
                        value: Bytes::from(format!("both-{seq}")),
                    }
                    .to_bytes(),
                    vec![p0],
                )
                .labeled("multi-append"),
                1 => CommandSpec::simple(
                    rings[0],
                    LogCommand::Append {
                        log: 0,
                        value: Bytes::from(format!("solo0-{seq}")),
                    }
                    .to_bytes(),
                    vec![p0],
                )
                .labeled("append"),
                _ => CommandSpec::simple(
                    rings[1],
                    LogCommand::Append {
                        log: 1,
                        value: Bytes::from(format!("solo1-{seq}")),
                    }
                    .to_bytes(),
                    vec![p0],
                )
                .labeled("append"),
            }
        },
        2,
    );
    let stats = client.stats();
    sim.add_node_with_cpu(0, client, CpuModel::free());

    sim.run_until(SimTime::from_secs(5));

    let s = stats.borrow();
    println!("appends completed: {}", s.completed);
    for (label, h) in &s.latency_by {
        println!(
            "  {label:<12} count {:>6}  mean {:>6.2} ms",
            h.count(),
            h.mean() / 1e6
        );
    }
    assert!(s.completed > 100, "the log should make steady progress");
    println!("\nok: single appends and atomic multi-appends share one total order");
    let _ = Duration::from_secs(0);
}
