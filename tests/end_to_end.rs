//! Workspace-level integration tests: whole services running end-to-end
//! through the facade crate, in the simulator and on the live runtime.

use std::collections::HashMap;
use std::time::Duration;

use atomic_multicast::common::ids::{ClientId, NodeId, PartitionId, RingId};
use atomic_multicast::common::wire::Wire;
use atomic_multicast::common::SimTime;
use atomic_multicast::coord::{PartitionInfo, Registry, RingConfig};
use atomic_multicast::dlog::{DlogApp, LogCommand};
use atomic_multicast::mrpstore::{KvApp, KvCommand, Partitioning};
use atomic_multicast::multiring::client::{ClosedLoopClient, CommandSpec};
use atomic_multicast::multiring::{HostOptions, MultiRingHost};
use atomic_multicast::ringpaxos::live::LiveRing;
use atomic_multicast::ringpaxos::options::{RateLeveling, RingOptions};
use atomic_multicast::simnet::{CpuModel, Region, Sim, Topology};
use atomic_multicast::storage::StorageMode;
use bytes::Bytes;

fn in_memory_opts() -> HostOptions {
    HostOptions {
        ring: RingOptions {
            storage: StorageMode::InMemory,
            rate_leveling: Some(RateLeveling::datacenter()),
            ..RingOptions::crash_free()
        },
        ..HostOptions::default()
    }
}

/// Full MRP-Store over two partitions plus a global ring: inserts then a
/// cross-partition scan, checking sequential consistency of the results.
#[test]
fn kv_store_cross_partition_scan() {
    let mut topo = Topology::lan();
    topo.set_jitter_frac(0.0);
    let mut sim = Sim::with_topology(21, topo);
    let registry = Registry::new();
    let scheme = Partitioning::Hash { partitions: 2 };
    scheme.publish(&registry);

    let rings = [RingId::new(0), RingId::new(1)];
    let global = RingId::new(2);
    let replicas = [
        vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        vec![NodeId::new(3), NodeId::new(4), NodeId::new(5)],
    ];
    for (p, r) in rings.iter().enumerate() {
        registry
            .register_ring(RingConfig::new(*r, replicas[p].clone(), replicas[p].clone()).unwrap())
            .unwrap();
    }
    let all: Vec<NodeId> = replicas.iter().flatten().copied().collect();
    registry
        .register_ring(RingConfig::new(global, all.clone(), all).unwrap())
        .unwrap();
    for p in 0..2usize {
        registry
            .register_partition(
                PartitionId::new(p as u16),
                PartitionInfo {
                    rings: vec![rings[p], global],
                    replicas: replicas[p].clone(),
                },
            )
            .unwrap();
    }
    for (p, nodes) in replicas.iter().enumerate() {
        for node in nodes {
            let host = MultiRingHost::new(
                *node,
                registry.clone(),
                &[rings[p], global],
                &[rings[p], global],
                Some(PartitionId::new(p as u16)),
                Box::new(KvApp::new(PartitionId::new(p as u16), scheme.clone())),
                in_memory_opts(),
            );
            sim.add_node_with_cpu(0, host, CpuModel::free());
        }
    }

    // Insert 40 keys (hash-routed to both partitions), then scan all.
    let scheme2 = scheme.clone();
    let mut step = 0u64;
    let client = ClosedLoopClient::new(
        ClientId::new(1),
        registry.clone(),
        HashMap::from([
            (rings[0], NodeId::new(0)),
            (rings[1], NodeId::new(3)),
            (global, NodeId::new(0)),
        ]),
        move |_rng: &mut rand::rngs::StdRng| {
            step += 1;
            if step <= 40 {
                let key = format!("key{step:04}");
                let p = scheme2.partition_of(&key);
                CommandSpec::simple(
                    rings[p.raw() as usize],
                    KvCommand::Insert {
                        key,
                        value: Bytes::from_static(b"v"),
                    }
                    .to_bytes(),
                    vec![p],
                )
            } else {
                CommandSpec::simple(
                    global,
                    KvCommand::Scan {
                        from: "key".into(),
                        to: String::new(),
                    }
                    .to_bytes(),
                    vec![PartitionId::new(0), PartitionId::new(1)],
                )
                .labeled("scan")
            }
        },
        1, // strictly sequential so all inserts precede the scans
    );
    let stats = client.stats();
    sim.add_node_with_cpu(0, client, CpuModel::free());

    sim.run_until(SimTime::from_secs(5));
    let s = stats.borrow();
    assert!(
        s.completed > 45,
        "inserts + scans completed: {}",
        s.completed
    );
    let scans = s.latency_by.get("scan").map(|h| h.count()).unwrap_or(0);
    assert!(scans > 0, "at least one scan completed");
}

/// dLog multi-append positions agree across replicas even with
/// single-log appends racing on other rings.
#[test]
fn dlog_multi_append_is_atomic() {
    let mut topo = Topology::lan();
    topo.set_jitter_frac(0.0);
    let mut sim = Sim::with_topology(22, topo);
    let registry = Registry::new();
    let members: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let rings = [RingId::new(0), RingId::new(1), RingId::new(2)];
    for r in rings {
        registry
            .register_ring(RingConfig::new(r, members.clone(), members.clone()).unwrap())
            .unwrap();
    }
    registry
        .register_partition(
            PartitionId::new(0),
            PartitionInfo {
                rings: rings.to_vec(),
                replicas: members.clone(),
            },
        )
        .unwrap();
    for m in &members {
        let host = MultiRingHost::new(
            *m,
            registry.clone(),
            &rings,
            &rings,
            Some(PartitionId::new(0)),
            Box::new(DlogApp::new(&[0, 1])),
            in_memory_opts(),
        );
        sim.add_node_with_cpu(0, host, CpuModel::free());
    }
    let mut seq = 0u64;
    let client = ClosedLoopClient::new(
        ClientId::new(2),
        registry.clone(),
        HashMap::from([
            (rings[0], members[0]),
            (rings[1], members[1]),
            (rings[2], members[2]),
        ]),
        move |_rng: &mut rand::rngs::StdRng| {
            seq += 1;
            let p0 = PartitionId::new(0);
            match seq % 3 {
                0 => CommandSpec::simple(
                    rings[2],
                    LogCommand::MultiAppend {
                        logs: vec![0, 1],
                        value: Bytes::from_static(b"m"),
                    }
                    .to_bytes(),
                    vec![p0],
                ),
                1 => CommandSpec::simple(
                    rings[0],
                    LogCommand::Append {
                        log: 0,
                        value: Bytes::from_static(b"a"),
                    }
                    .to_bytes(),
                    vec![p0],
                ),
                _ => CommandSpec::simple(
                    rings[1],
                    LogCommand::Append {
                        log: 1,
                        value: Bytes::from_static(b"b"),
                    }
                    .to_bytes(),
                    vec![p0],
                ),
            }
        },
        3,
    );
    let stats = client.stats();
    sim.add_node_with_cpu(0, client, CpuModel::free());

    sim.run_until(SimTime::from_secs(3));
    assert!(stats.borrow().completed > 100);
}

/// The same protocol code runs over real sockets.
#[test]
fn live_tcp_ring_small_smoke() {
    let base = 43100 + (std::process::id() % 500) as u16;
    let addrs: Vec<std::net::SocketAddr> = (0..3)
        .map(|i| format!("127.0.0.1:{}", base + i).parse().unwrap())
        .collect();
    let ring = LiveRing::tcp(&addrs, RingOptions::crash_free(), None).unwrap();
    for seq in 0..3u64 {
        ring.node(0)
            .propose(atomic_multicast::common::value::Value::app(
                NodeId::new(0),
                seq,
                Bytes::from_static(b"smoke"),
            ))
            .unwrap();
    }
    let d = ring.node(2).recv_delivery(Duration::from_secs(10)).unwrap();
    assert_eq!(d.inst.raw(), 0);
    ring.shutdown();
}

/// The live deployment runtime end-to-end: a 2-partition MRP-Store (one
/// ring per partition plus the global scan ring) served over localhost
/// TCP by `liverun`, driven by concurrent closed-loop network clients,
/// with one replica killed and restarted mid-run. After recovery the
/// restarted replica itself must answer reads with the latest written
/// values — reads are ordered through consensus after the writes, so
/// anything stale would violate linearizability.
#[test]
fn live_mrpstore_survives_replica_restart_with_closed_loop_clients() {
    use atomic_multicast::liverun::config::generate_localhost_mrpstore;
    use atomic_multicast::liverun::{ClientOptions, Deployment, DeploymentConfig, StoreClient};
    use atomic_multicast::mrpstore::{KvCommand, KvResponse, Partitioning};

    // Ports 28000..32400 — disjoint from crates/liverun's test range
    // (20000..26000) and capped below the Linux ephemeral range (32768+)
    // so parallel test binaries and outgoing source ports never collide.
    let base = 28000 + (std::process::id() % 110) as u16 * 40;
    let text = generate_localhost_mrpstore(2, 3, base, None);
    let config = DeploymentConfig::parse(&text).unwrap();
    let mut deployment = Deployment::launch(config.clone()).unwrap();

    let opts = || ClientOptions {
        timeout: Duration::from_secs(30),
        retry_every: Duration::from_secs(2),
        ..ClientOptions::default()
    };

    // Closed-loop writer clients on their own threads: each writes its
    // own key range, read-checks its own writes, and keeps running
    // through the kill and the restart below.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut workers = Vec::new();
    for w in 0..2u32 {
        let config = config.clone();
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || -> u64 {
            let mut client = StoreClient::connect(&config, ClientId::new(100 + w), opts()).unwrap();
            let mut completed = 0u64;
            for round in 0.. {
                if stop.load(std::sync::atomic::Ordering::SeqCst) {
                    break;
                }
                let key = format!("w{w}-{round:04}");
                let value = Bytes::from(format!("r{round}"));
                assert_eq!(
                    client.insert(&key, value.clone()).unwrap(),
                    KvResponse::Ok,
                    "closed-loop insert {key}"
                );
                // Read-your-writes through consensus.
                assert_eq!(
                    client.read(&key).unwrap(),
                    Some(value),
                    "closed-loop read {key}"
                );
                completed += 1;
            }
            completed
        }));
    }

    // A control client for the fault injection and the final checks.
    let mut control = StoreClient::connect(&config, ClientId::new(1), opts()).unwrap();
    let scheme = Partitioning::Hash { partitions: 2 };
    let probe_key: String = (0..)
        .map(|i| format!("probe{i}"))
        .find(|k| scheme.partition_of(k).raw() == 0)
        .unwrap();
    assert_eq!(
        control
            .insert(&probe_key, Bytes::from_static(b"before"))
            .unwrap(),
        KvResponse::Ok
    );

    // Kill a replica of partition 0 while the workers keep going, write
    // through the outage, then restart it.
    let victim = NodeId::new(2);
    deployment.kill(victim).unwrap();
    assert_eq!(
        control
            .update(&probe_key, Bytes::from_static(b"during"))
            .unwrap(),
        KvResponse::Ok,
        "service must stay available during the outage"
    );
    deployment.restart(victim).unwrap();
    control.raw().reconnect(victim).unwrap();

    // The recovered replica answers with the value written while it was
    // down (checkpoint fetch from partition peers + acceptor catch-up).
    let raw = control
        .raw()
        .request_from(
            RingId::new(0),
            KvCommand::Read {
                key: probe_key.clone(),
            }
            .to_bytes(),
            victim,
        )
        .unwrap();
    let mut raw = raw.clone();
    assert_eq!(
        KvResponse::decode(&mut raw).unwrap(),
        KvResponse::Value(Some(Bytes::from_static(b"during"))),
        "recovered replica must serve the post-crash write"
    );

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut total = 0;
    for worker in workers {
        total += worker.join().expect("worker thread must not panic");
    }
    assert!(total > 0, "closed-loop clients made progress");

    // Cross-partition scan sees every worker write plus the probe key.
    let entries = control.scan("", "").unwrap();
    assert_eq!(entries.len() as u64, total + 1, "scan covers all writes");

    deployment.shutdown();
}

/// The amcoord-backed deployment end-to-end: the same liverun stack, but
/// every node bootstraps from a replicated `amcoordd` ensemble instead of
/// a shared in-process registry — the paper's Zookeeper deployment shape
/// (§7.1). Kill and restart flow through the coordination service: the
/// survivor's failure report is a replicated CAS, the restarted node
/// rejoins with a fresh session, and its WAL lock must have been released
/// deterministically for the restart-in-place to succeed.
#[test]
fn live_mrpstore_reconfigures_through_amcoord_ensemble() {
    use atomic_multicast::coord::{CoordClientOptions, Registry};
    use atomic_multicast::liverun::config::{generate_localhost_mrpstore, with_coord};
    use atomic_multicast::liverun::coordsvc::{start_coord_server, CoordServerConfig};
    use atomic_multicast::liverun::{ClientOptions, Deployment, DeploymentConfig, StoreClient};
    use atomic_multicast::mrpstore::{KvCommand, KvResponse};

    // Ports 15200..20000 with stride 32 — below the Linux ephemeral range
    // (32768+, where an outgoing connection's source port can steal a
    // listener bind) and disjoint from the other live test ranges.
    let base = 15200 + (std::process::id() % 150) as u16 * 32;
    let mut coord_handles = Vec::new();
    for id in 0..3u32 {
        coord_handles.push(start_coord_server(CoordServerConfig::localhost(id, 3, base)).unwrap());
    }
    let coord_serve: Vec<std::net::SocketAddr> =
        coord_handles.iter().map(|h| h.client_addr()).collect();

    let wal_dir = std::env::temp_dir().join(format!("amcoord-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let text = with_coord(
        &generate_localhost_mrpstore(1, 3, base + 8, wal_dir.to_str()),
        &coord_serve,
        Duration::from_millis(1500),
    );
    let config = DeploymentConfig::parse(&text).unwrap();
    assert_eq!(config.coord_addrs, coord_serve);
    let mut deployment = Deployment::launch(config.clone()).unwrap();

    let mut control = StoreClient::connect(
        &config,
        ClientId::new(1),
        ClientOptions {
            timeout: Duration::from_secs(30),
            retry_every: Duration::from_secs(2),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        control.insert("k", Bytes::from_static(b"before")).unwrap(),
        KvResponse::Ok
    );
    assert_eq!(
        control.read("k").unwrap(),
        Some(Bytes::from_static(b"before"))
    );

    // Kill the ring coordinator. The membership change must land in the
    // *coordination service* (not any process-local registry).
    let observer = Registry::connect(&coord_serve, CoordClientOptions::default()).unwrap();
    deployment.kill(NodeId::new(0)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let cfg = observer.ring(RingId::new(0)).unwrap();
        if !cfg.contains(NodeId::new(0)) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "amcoord never learned of the coordinator's death"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Linearizable operation through the reconfigured ring.
    assert_eq!(
        control.update("k", Bytes::from_static(b"during")).unwrap(),
        KvResponse::Ok
    );
    assert_eq!(
        control.read("k").unwrap(),
        Some(Bytes::from_static(b"during"))
    );

    // Restart in place (same WAL dir — kill verified the lock release).
    deployment.restart(NodeId::new(0)).unwrap();
    control.raw().reconnect(NodeId::new(0)).unwrap();
    let raw = control
        .raw()
        .request_from(
            RingId::new(0),
            KvCommand::Read { key: "k".into() }.to_bytes(),
            NodeId::new(0),
        )
        .unwrap();
    let mut raw = raw.clone();
    assert_eq!(
        KvResponse::decode(&mut raw).unwrap(),
        KvResponse::Value(Some(Bytes::from_static(b"during"))),
        "recovered replica must serve the post-crash write"
    );

    deployment.shutdown();
    drop(observer);
    for h in coord_handles {
        h.shutdown();
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Geo topology sanity: a WAN deployment commits at WAN latency while a
/// LAN one commits sub-millisecond.
#[test]
fn wan_latency_dominates_geo_commits() {
    let lat = |topology: Topology, sites: [usize; 3]| -> f64 {
        let mut sim = Sim::with_topology(23, topology);
        let registry = Registry::new();
        let members: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let ring = RingId::new(0);
        registry
            .register_ring(RingConfig::new(ring, members.clone(), members.clone()).unwrap())
            .unwrap();
        registry
            .register_partition(
                PartitionId::new(0),
                PartitionInfo {
                    rings: vec![ring],
                    replicas: members.clone(),
                },
            )
            .unwrap();
        for (i, m) in members.iter().enumerate() {
            let host = MultiRingHost::new(
                *m,
                registry.clone(),
                &[ring],
                &[ring],
                Some(PartitionId::new(0)),
                Box::new(atomic_multicast::multiring::EchoApp::new()),
                in_memory_opts(),
            );
            sim.add_node_with_cpu(sites[i], host, CpuModel::free());
        }
        let client = ClosedLoopClient::new(
            ClientId::new(3),
            registry.clone(),
            HashMap::from([(ring, members[0])]),
            move |_rng: &mut rand::rngs::StdRng| {
                CommandSpec::simple(ring, Bytes::from_static(b"x"), vec![PartitionId::new(0)])
            },
            1,
        );
        let stats = client.stats();
        sim.add_node_with_cpu(sites[0], client, CpuModel::free());
        sim.run_until(SimTime::from_secs(20));
        let s = stats.borrow();
        assert!(s.completed > 10, "completed {}", s.completed);
        s.latency.mean() / 1e6
    };

    let lan_ms = lat(Topology::lan(), [0, 0, 0]);
    let eu = Topology::site_of_region(Region::EuWest1);
    let use1 = Topology::site_of_region(Region::UsEast1);
    let usw2 = Topology::site_of_region(Region::UsWest2);
    let wan_ms = lat(Topology::ec2(), [eu, use1, usw2]);

    assert!(lan_ms < 2.0, "LAN commit should be sub-2ms, got {lan_ms}");
    // One-way eu→us-east is 40 ms; a commit needs at least one majority
    // circulation, so anything above ~40 ms proves WAN rounds are paid
    // (measured ≈ 80 ms: proposal + majority + decision circulation).
    assert!(
        wan_ms > 40.0,
        "geo commit must pay WAN round trips, got {wan_ms}"
    );
}
