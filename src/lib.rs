//! Facade crate: re-exports the public surface of the atomic multicast
//! workspace so downstream users can depend on a single crate.
//!
//! See [`multiring`] for the paper's primary contribution (Multi-Ring
//! Paxos), [`mrpstore`] and [`dlog`] for the two services built on it.

pub use baselines;
pub use common;
pub use coord;
pub use dlog;
pub use liverun;
pub use mrpstore;
pub use multiring;
pub use ringpaxos;
pub use simnet;
pub use storage;
pub use workloads;
