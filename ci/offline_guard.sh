#!/usr/bin/env bash
# Offline-build guard: the container this workspace builds in has no
# crates.io access, so every dependency must resolve to a path inside the
# repository (the `vendor/` stubs or the workspace crates). This script
# fails the build if anything ever reintroduces a registry or git
# dependency — encoding the constraint the build already relies on.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# 1. The lockfile must not reference any external source. Path
#    dependencies carry no `source`/`checksum` fields; registry and git
#    dependencies do.
if grep -nE '^(source|checksum) *=' Cargo.lock; then
    echo "offline guard: Cargo.lock references a non-vendored source" >&2
    fail=1
fi

# 2. No manifest may declare a version-only (registry) dependency:
#    every dependency line must route through `workspace = true` or an
#    explicit `path = ...`.
while IFS= read -r manifest; do
    if awk '
        /^\[(dev-|build-)?dependencies/ { in_deps = 1; next }
        /^\[/ { in_deps = 0 }
        in_deps && NF && $0 !~ /^#/ \
            && $0 !~ /workspace *= *true/ && $0 !~ /path *= */ {
            print FILENAME ":" FNR ": " $0; found = 1
        }
        END { exit found }
    ' "$manifest"; then :; else
        echo "offline guard: $manifest declares a registry dependency" >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')

if [ "$fail" -ne 0 ]; then
    echo "offline guard: FAILED — the no-network build would break" >&2
    exit 1
fi
echo "offline guard: ok (all dependencies are workspace/vendor paths)"
