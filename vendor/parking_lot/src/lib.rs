//! Workspace-local stand-in for `parking_lot`: thin non-poisoning wrappers
//! over the std synchronization primitives with the same call shape
//! (`lock()` / `read()` / `write()` return guards directly).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
