//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`, [`Just`],
//! `any::<T>()`, ranges and tuples as strategies, weighted
//! [`prop_oneof!`], [`collection::vec`], and the [`proptest!`] test macro
//! with `prop_assert!`/`prop_assert_eq!`. Inputs are generated from a
//! deterministic per-test seed; shrinking is not implemented (failures
//! report the generated case number so a seed can be replayed).

use rand::rngs::StdRng;

pub mod strategy {
    //! Strategy combinators.

    use super::StdRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking; a strategy is just a
    /// cloneable generator.
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy {
                gen: Arc::new(move |rng| inner.generate(rng)),
            }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O + Clone> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        pub(crate) gen: Arc<dyn Fn(&mut StdRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Arc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Chooses among weighted alternatives (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        pub(crate) options: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// A union over `(weight, strategy)` alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty or all weights are zero.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof requires positive total weight");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::RngExt;
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.random_range(0..total);
            for (w, s) in &self.options {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights exhausted")
        }
    }
}

use strategy::Strategy;

/// Always generates a clone of the wrapped value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Marker for uniformly generatable types (backs [`any`]).
#[derive(Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The strategy generating uniformly random values of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: rand::Standard + Clone> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::RngExt;
        rng.random()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        use rand::RngExt;
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::StdRng;

    /// A strategy generating `Vec`s with length drawn from `len` and
    /// elements from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::RngExt;
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic execution of property-test cases.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cases generated per property (overridable via `PROPTEST_CASES`).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// A deterministic per-test generator, derived from the test name.
    pub fn rng_for(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case) << 32))
    }
}

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{any, Just};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each property over generated cases; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            for case in 0..$crate::test_runner::cases() {
                let mut __proptest_rng = $crate::test_runner::rng_for(stringify!($name), case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);
                )*
                $body
            }
        }
        $crate::proptest!{$($rest)*}
    };
}

/// `assert!` under a property (no shrinking in the vendored version).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Chooses among strategies, optionally weighted; mirrors
/// `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        A(u8),
        B,
    }

    proptest! {
        #[test]
        fn tuples_and_maps_generate(v in (any::<u32>(), 0u64..10).prop_map(|(a, b)| (a, b))) {
            prop_assert!(v.1 < 10);
        }

        #[test]
        fn oneof_weighted(k in prop_oneof![
            3 => (1u8..5).prop_map(Kind::A),
            1 => Just(Kind::B),
        ]) {
            if let Kind::A(x) = k {
                prop_assert!((1..5).contains(&x));
            }
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 0..8);
        let mut r1 = crate::test_runner::rng_for("x", 3);
        let mut r2 = crate::test_runner::rng_for("x", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
