//! Workspace-local stand-in for `rand`.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) with the rand 0.9-style API surface the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`RngExt::random`] and
//! [`RngExt::random_range`]. Determinism matters more than distribution
//! subtleties here: the simulator derives every random choice from one
//! seeded generator so runs replay identically.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy (wall clock + address entropy in
    /// this vendored version; only used by non-deterministic callers).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t ^ (std::process::id() as u64).rotate_left(32))
    }
}

/// Types producible uniformly at random.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u8 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for usize {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $ty)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty random_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $ty; // full domain
                }
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                start.wrapping_add(v as $ty)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = f64::draw(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (rand 0.9 naming).
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// True with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for call sites written against rand 0.8 naming.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }
}
