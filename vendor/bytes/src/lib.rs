//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the handful of external
//! crates the workspace uses are vendored as minimal, behaviorally faithful
//! implementations. This one provides [`Bytes`], [`BytesMut`] and the
//! [`Buf`]/[`BufMut`] traits with the subset of the real crate's API the
//! workspace relies on. Cheap clones and zero-copy `split_to` are preserved
//! via a shared `Arc<[u8]>` backing buffer.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
///
/// Backed by `Arc<Vec<u8>>` so that converting an owned `Vec<u8>` (or a
/// frozen [`BytesMut`]) into `Bytes` moves the allocation instead of
/// copying it — the zero-copy decode path relies on this.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice. (The vendored version copies; semantics are
    /// identical, only the allocation behaviour differs.)
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Copies `b` into a fresh `Bytes`.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them. Zero-copy: both halves share the backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-slice as a new `Bytes` sharing the backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// By-value iteration yields the bytes, matching the real crate.
impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = BytesIter;
    fn into_iter(self) -> BytesIter {
        BytesIter {
            inner: self,
            pos: 0,
        }
    }
}

/// Iterator over a `Bytes` by value.
pub struct BytesIter {
    inner: Bytes,
    pos: usize,
}

impl Iterator for BytesIter {
    type Item = u8;
    fn next(&mut self) -> Option<u8> {
        let b = self.inner.as_slice().get(self.pos).copied()?;
        self.pos += 1;
        Some(b)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer with an efficiently consumable front.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Consumed prefix; everything before this index is logically gone.
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Length of the unconsumed contents.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, b: &[u8]) {
        self.data.extend_from_slice(b);
    }

    /// Freezes into an immutable `Bytes`. O(1): the backing allocation is
    /// moved, not copied; a consumed prefix becomes a view offset.
    pub fn freeze(self) -> Bytes {
        let end = self.data.len();
        Bytes {
            start: self.start,
            end,
            data: Arc::new(self.data),
        }
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        self.compact();
        BytesMut {
            data: head,
            start: 0,
        }
    }

    /// Clears all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Drop the consumed prefix when it dominates the buffer, keeping
    /// long-lived socket read buffers from growing without bound.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.data[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(b: &[u8]) -> Self {
        BytesMut {
            data: b.to_vec(),
            start: 0,
        }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > remaining`.
    fn advance(&mut self, n: usize);

    /// A view of the remaining bytes.
    fn chunk(&self) -> &[u8];

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing.
    ///
    /// # Panics
    ///
    /// Panics on an empty cursor.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian u32, advancing.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian u64, advancing.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
        self.compact();
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, b: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_is_zero_copy_and_correct() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.extend_from_slice(&[8, 9]);
        assert_eq!(m.len(), 3);
        let split = m.split_to(1);
        assert_eq!(&split[..], &[7]);
        let frozen = m.freeze();
        assert_eq!(&frozen[..], &[8, 9]);
    }

    #[test]
    fn iteration_by_value() {
        let b = Bytes::from(vec![1, 2, 3]);
        let got: Vec<u8> = b.into_iter().collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn advance_and_get() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b.get_u8(), 9);
        b.advance(1);
        assert_eq!(b.get_u8(), 7);
        assert!(!b.has_remaining());
    }
}
