//! Workspace-local stand-in for `crossbeam`: MPMC channels built on a
//! mutex + condvar queue, with the `crossbeam-channel` API surface the
//! workspace uses (`bounded`, `unbounded`, timeouts, `try_iter`).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        readable: Condvar,
        writable: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Fails when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.writable.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            self.shared.readable.notify_one();
            Ok(())
        }

        /// Sends without blocking.
        ///
        /// # Errors
        ///
        /// Fails when the channel is full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if state.items.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.items.push_back(value);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a value or disconnection.
        ///
        /// # Errors
        ///
        /// Fails when the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.readable.wait(state).unwrap();
            }
        }

        /// Receives, blocking up to `timeout`.
        ///
        /// # Errors
        ///
        /// Fails with `Timeout` or `Disconnected`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .shared
                    .readable
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
                if timed_out.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// Fails with `Empty` or `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(v) = state.items.pop_front() {
                self.shared.writable.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Iterates over values currently queued without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded MPMC channel holding at most `cap` values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_send_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2]);
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            drop(rx);
            assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
        }

        #[test]
        fn recv_timeout_times_out_and_disconnects() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = 0;
            while got < 100 {
                rx.recv_timeout(Duration::from_secs(5)).unwrap();
                got += 1;
            }
            h.join().unwrap();
        }
    }
}
